file(REMOVE_RECURSE
  "CMakeFiles/discover_util.dir/bytes.cpp.o"
  "CMakeFiles/discover_util.dir/bytes.cpp.o.d"
  "CMakeFiles/discover_util.dir/log.cpp.o"
  "CMakeFiles/discover_util.dir/log.cpp.o.d"
  "CMakeFiles/discover_util.dir/result.cpp.o"
  "CMakeFiles/discover_util.dir/result.cpp.o.d"
  "CMakeFiles/discover_util.dir/stats.cpp.o"
  "CMakeFiles/discover_util.dir/stats.cpp.o.d"
  "libdiscover_util.a"
  "libdiscover_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
