file(REMOVE_RECURSE
  "libdiscover_util.a"
)
