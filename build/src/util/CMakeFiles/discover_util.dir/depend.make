# Empty dependencies file for discover_util.
# This may be replaced when dependencies are built.
