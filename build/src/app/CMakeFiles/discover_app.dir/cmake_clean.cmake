file(REMOVE_RECURSE
  "CMakeFiles/discover_app.dir/control_network.cpp.o"
  "CMakeFiles/discover_app.dir/control_network.cpp.o.d"
  "CMakeFiles/discover_app.dir/heat2d.cpp.o"
  "CMakeFiles/discover_app.dir/heat2d.cpp.o.d"
  "CMakeFiles/discover_app.dir/inspiral.cpp.o"
  "CMakeFiles/discover_app.dir/inspiral.cpp.o.d"
  "CMakeFiles/discover_app.dir/reservoir.cpp.o"
  "CMakeFiles/discover_app.dir/reservoir.cpp.o.d"
  "CMakeFiles/discover_app.dir/steerable_app.cpp.o"
  "CMakeFiles/discover_app.dir/steerable_app.cpp.o.d"
  "CMakeFiles/discover_app.dir/synthetic.cpp.o"
  "CMakeFiles/discover_app.dir/synthetic.cpp.o.d"
  "CMakeFiles/discover_app.dir/wave1d.cpp.o"
  "CMakeFiles/discover_app.dir/wave1d.cpp.o.d"
  "libdiscover_app.a"
  "libdiscover_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
