
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/control_network.cpp" "src/app/CMakeFiles/discover_app.dir/control_network.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/control_network.cpp.o.d"
  "/root/repo/src/app/heat2d.cpp" "src/app/CMakeFiles/discover_app.dir/heat2d.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/heat2d.cpp.o.d"
  "/root/repo/src/app/inspiral.cpp" "src/app/CMakeFiles/discover_app.dir/inspiral.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/inspiral.cpp.o.d"
  "/root/repo/src/app/reservoir.cpp" "src/app/CMakeFiles/discover_app.dir/reservoir.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/reservoir.cpp.o.d"
  "/root/repo/src/app/steerable_app.cpp" "src/app/CMakeFiles/discover_app.dir/steerable_app.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/steerable_app.cpp.o.d"
  "/root/repo/src/app/synthetic.cpp" "src/app/CMakeFiles/discover_app.dir/synthetic.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/synthetic.cpp.o.d"
  "/root/repo/src/app/wave1d.cpp" "src/app/CMakeFiles/discover_app.dir/wave1d.cpp.o" "gcc" "src/app/CMakeFiles/discover_app.dir/wave1d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/discover_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/discover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/discover_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/discover_security.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
