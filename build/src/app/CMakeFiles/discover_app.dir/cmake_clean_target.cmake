file(REMOVE_RECURSE
  "libdiscover_app.a"
)
