# Empty dependencies file for discover_app.
# This may be replaced when dependencies are built.
