
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/http_client.cpp" "src/http/CMakeFiles/discover_http.dir/http_client.cpp.o" "gcc" "src/http/CMakeFiles/discover_http.dir/http_client.cpp.o.d"
  "/root/repo/src/http/http_message.cpp" "src/http/CMakeFiles/discover_http.dir/http_message.cpp.o" "gcc" "src/http/CMakeFiles/discover_http.dir/http_message.cpp.o.d"
  "/root/repo/src/http/servlet_container.cpp" "src/http/CMakeFiles/discover_http.dir/servlet_container.cpp.o" "gcc" "src/http/CMakeFiles/discover_http.dir/servlet_container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/discover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
