file(REMOVE_RECURSE
  "libdiscover_http.a"
)
