# Empty compiler generated dependencies file for discover_http.
# This may be replaced when dependencies are built.
