file(REMOVE_RECURSE
  "CMakeFiles/discover_http.dir/http_client.cpp.o"
  "CMakeFiles/discover_http.dir/http_client.cpp.o.d"
  "CMakeFiles/discover_http.dir/http_message.cpp.o"
  "CMakeFiles/discover_http.dir/http_message.cpp.o.d"
  "CMakeFiles/discover_http.dir/servlet_container.cpp.o"
  "CMakeFiles/discover_http.dir/servlet_container.cpp.o.d"
  "libdiscover_http.a"
  "libdiscover_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
