file(REMOVE_RECURSE
  "libdiscover_security.a"
)
