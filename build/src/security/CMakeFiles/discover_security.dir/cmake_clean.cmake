file(REMOVE_RECURSE
  "CMakeFiles/discover_security.dir/acl.cpp.o"
  "CMakeFiles/discover_security.dir/acl.cpp.o.d"
  "CMakeFiles/discover_security.dir/rate_limit.cpp.o"
  "CMakeFiles/discover_security.dir/rate_limit.cpp.o.d"
  "CMakeFiles/discover_security.dir/token.cpp.o"
  "CMakeFiles/discover_security.dir/token.cpp.o.d"
  "libdiscover_security.a"
  "libdiscover_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
