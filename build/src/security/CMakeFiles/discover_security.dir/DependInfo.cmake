
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/acl.cpp" "src/security/CMakeFiles/discover_security.dir/acl.cpp.o" "gcc" "src/security/CMakeFiles/discover_security.dir/acl.cpp.o.d"
  "/root/repo/src/security/rate_limit.cpp" "src/security/CMakeFiles/discover_security.dir/rate_limit.cpp.o" "gcc" "src/security/CMakeFiles/discover_security.dir/rate_limit.cpp.o.d"
  "/root/repo/src/security/token.cpp" "src/security/CMakeFiles/discover_security.dir/token.cpp.o" "gcc" "src/security/CMakeFiles/discover_security.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
