# Empty compiler generated dependencies file for discover_security.
# This may be replaced when dependencies are built.
