file(REMOVE_RECURSE
  "CMakeFiles/discover_workload.dir/drivers.cpp.o"
  "CMakeFiles/discover_workload.dir/drivers.cpp.o.d"
  "CMakeFiles/discover_workload.dir/report.cpp.o"
  "CMakeFiles/discover_workload.dir/report.cpp.o.d"
  "CMakeFiles/discover_workload.dir/scenario.cpp.o"
  "CMakeFiles/discover_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/discover_workload.dir/sync_ops.cpp.o"
  "CMakeFiles/discover_workload.dir/sync_ops.cpp.o.d"
  "CMakeFiles/discover_workload.dir/thread_scenario.cpp.o"
  "CMakeFiles/discover_workload.dir/thread_scenario.cpp.o.d"
  "libdiscover_workload.a"
  "libdiscover_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
