file(REMOVE_RECURSE
  "libdiscover_workload.a"
)
