# Empty compiler generated dependencies file for discover_workload.
# This may be replaced when dependencies are built.
