# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("wire")
subdirs("net")
subdirs("http")
subdirs("orb")
subdirs("security")
subdirs("proto")
subdirs("db")
subdirs("app")
subdirs("grid")
subdirs("core")
subdirs("workload")
