file(REMOVE_RECURSE
  "libdiscover_proto.a"
)
