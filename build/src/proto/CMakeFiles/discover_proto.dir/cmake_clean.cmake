file(REMOVE_RECURSE
  "CMakeFiles/discover_proto.dir/messages.cpp.o"
  "CMakeFiles/discover_proto.dir/messages.cpp.o.d"
  "CMakeFiles/discover_proto.dir/types.cpp.o"
  "CMakeFiles/discover_proto.dir/types.cpp.o.d"
  "libdiscover_proto.a"
  "libdiscover_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
