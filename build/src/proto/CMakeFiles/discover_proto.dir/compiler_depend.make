# Empty compiler generated dependencies file for discover_proto.
# This may be replaced when dependencies are built.
