file(REMOVE_RECURSE
  "CMakeFiles/discover_core.dir/client.cpp.o"
  "CMakeFiles/discover_core.dir/client.cpp.o.d"
  "CMakeFiles/discover_core.dir/lock_manager.cpp.o"
  "CMakeFiles/discover_core.dir/lock_manager.cpp.o.d"
  "CMakeFiles/discover_core.dir/server.cpp.o"
  "CMakeFiles/discover_core.dir/server.cpp.o.d"
  "CMakeFiles/discover_core.dir/server_remote.cpp.o"
  "CMakeFiles/discover_core.dir/server_remote.cpp.o.d"
  "CMakeFiles/discover_core.dir/server_servlets.cpp.o"
  "CMakeFiles/discover_core.dir/server_servlets.cpp.o.d"
  "CMakeFiles/discover_core.dir/service_host.cpp.o"
  "CMakeFiles/discover_core.dir/service_host.cpp.o.d"
  "CMakeFiles/discover_core.dir/session_archive.cpp.o"
  "CMakeFiles/discover_core.dir/session_archive.cpp.o.d"
  "libdiscover_core.a"
  "libdiscover_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
