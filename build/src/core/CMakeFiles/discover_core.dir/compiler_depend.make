# Empty compiler generated dependencies file for discover_core.
# This may be replaced when dependencies are built.
