
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/discover_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/client.cpp.o.d"
  "/root/repo/src/core/lock_manager.cpp" "src/core/CMakeFiles/discover_core.dir/lock_manager.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/lock_manager.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/discover_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/server.cpp.o.d"
  "/root/repo/src/core/server_remote.cpp" "src/core/CMakeFiles/discover_core.dir/server_remote.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/server_remote.cpp.o.d"
  "/root/repo/src/core/server_servlets.cpp" "src/core/CMakeFiles/discover_core.dir/server_servlets.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/server_servlets.cpp.o.d"
  "/root/repo/src/core/service_host.cpp" "src/core/CMakeFiles/discover_core.dir/service_host.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/service_host.cpp.o.d"
  "/root/repo/src/core/session_archive.cpp" "src/core/CMakeFiles/discover_core.dir/session_archive.cpp.o" "gcc" "src/core/CMakeFiles/discover_core.dir/session_archive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/discover_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/discover_http.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/discover_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/discover_db.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/discover_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/discover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/discover_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
