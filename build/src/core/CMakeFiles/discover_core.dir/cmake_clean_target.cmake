file(REMOVE_RECURSE
  "libdiscover_core.a"
)
