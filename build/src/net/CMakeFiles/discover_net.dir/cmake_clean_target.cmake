file(REMOVE_RECURSE
  "libdiscover_net.a"
)
