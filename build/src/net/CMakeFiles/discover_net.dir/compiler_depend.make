# Empty compiler generated dependencies file for discover_net.
# This may be replaced when dependencies are built.
