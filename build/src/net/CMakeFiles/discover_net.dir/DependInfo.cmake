
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/sim_network.cpp" "src/net/CMakeFiles/discover_net.dir/sim_network.cpp.o" "gcc" "src/net/CMakeFiles/discover_net.dir/sim_network.cpp.o.d"
  "/root/repo/src/net/thread_network.cpp" "src/net/CMakeFiles/discover_net.dir/thread_network.cpp.o" "gcc" "src/net/CMakeFiles/discover_net.dir/thread_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
