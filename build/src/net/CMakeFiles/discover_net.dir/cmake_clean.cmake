file(REMOVE_RECURSE
  "CMakeFiles/discover_net.dir/sim_network.cpp.o"
  "CMakeFiles/discover_net.dir/sim_network.cpp.o.d"
  "CMakeFiles/discover_net.dir/thread_network.cpp.o"
  "CMakeFiles/discover_net.dir/thread_network.cpp.o.d"
  "libdiscover_net.a"
  "libdiscover_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
