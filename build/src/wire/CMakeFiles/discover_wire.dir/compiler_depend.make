# Empty compiler generated dependencies file for discover_wire.
# This may be replaced when dependencies are built.
