file(REMOVE_RECURSE
  "CMakeFiles/discover_wire.dir/cdr.cpp.o"
  "CMakeFiles/discover_wire.dir/cdr.cpp.o.d"
  "libdiscover_wire.a"
  "libdiscover_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
