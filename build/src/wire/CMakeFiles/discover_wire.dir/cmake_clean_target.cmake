file(REMOVE_RECURSE
  "libdiscover_wire.a"
)
