# Empty dependencies file for discover_db.
# This may be replaced when dependencies are built.
