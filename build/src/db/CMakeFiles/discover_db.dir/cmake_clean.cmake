file(REMOVE_RECURSE
  "CMakeFiles/discover_db.dir/record_store.cpp.o"
  "CMakeFiles/discover_db.dir/record_store.cpp.o.d"
  "libdiscover_db.a"
  "libdiscover_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
