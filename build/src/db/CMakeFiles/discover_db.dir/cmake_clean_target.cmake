file(REMOVE_RECURSE
  "libdiscover_db.a"
)
