file(REMOVE_RECURSE
  "libdiscover_grid.a"
)
