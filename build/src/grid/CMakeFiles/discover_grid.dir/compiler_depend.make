# Empty compiler generated dependencies file for discover_grid.
# This may be replaced when dependencies are built.
