file(REMOVE_RECURSE
  "CMakeFiles/discover_grid.dir/cog.cpp.o"
  "CMakeFiles/discover_grid.dir/cog.cpp.o.d"
  "CMakeFiles/discover_grid.dir/gis.cpp.o"
  "CMakeFiles/discover_grid.dir/gis.cpp.o.d"
  "CMakeFiles/discover_grid.dir/resource.cpp.o"
  "CMakeFiles/discover_grid.dir/resource.cpp.o.d"
  "libdiscover_grid.a"
  "libdiscover_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
