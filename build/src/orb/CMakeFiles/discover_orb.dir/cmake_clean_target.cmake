file(REMOVE_RECURSE
  "libdiscover_orb.a"
)
