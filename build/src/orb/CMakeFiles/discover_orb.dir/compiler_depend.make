# Empty compiler generated dependencies file for discover_orb.
# This may be replaced when dependencies are built.
