file(REMOVE_RECURSE
  "CMakeFiles/discover_orb.dir/naming.cpp.o"
  "CMakeFiles/discover_orb.dir/naming.cpp.o.d"
  "CMakeFiles/discover_orb.dir/orb.cpp.o"
  "CMakeFiles/discover_orb.dir/orb.cpp.o.d"
  "CMakeFiles/discover_orb.dir/trader.cpp.o"
  "CMakeFiles/discover_orb.dir/trader.cpp.o.d"
  "libdiscover_orb.a"
  "libdiscover_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
