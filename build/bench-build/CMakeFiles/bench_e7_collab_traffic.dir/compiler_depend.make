# Empty compiler generated dependencies file for bench_e7_collab_traffic.
# This may be replaced when dependencies are built.
