file(REMOVE_RECURSE
  "../bench/bench_e7_collab_traffic"
  "../bench/bench_e7_collab_traffic.pdb"
  "CMakeFiles/bench_e7_collab_traffic.dir/bench_e7_collab_traffic.cpp.o"
  "CMakeFiles/bench_e7_collab_traffic.dir/bench_e7_collab_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_collab_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
