# Empty dependencies file for bench_a1_orb_vs_socket.
# This may be replaced when dependencies are built.
