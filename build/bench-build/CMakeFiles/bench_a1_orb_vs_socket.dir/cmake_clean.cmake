file(REMOVE_RECURSE
  "../bench/bench_a1_orb_vs_socket"
  "../bench/bench_a1_orb_vs_socket.pdb"
  "CMakeFiles/bench_a1_orb_vs_socket.dir/bench_a1_orb_vs_socket.cpp.o"
  "CMakeFiles/bench_a1_orb_vs_socket.dir/bench_a1_orb_vs_socket.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_orb_vs_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
