file(REMOVE_RECURSE
  "../bench/bench_e5_discovery"
  "../bench/bench_e5_discovery.pdb"
  "CMakeFiles/bench_e5_discovery.dir/bench_e5_discovery.cpp.o"
  "CMakeFiles/bench_e5_discovery.dir/bench_e5_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
