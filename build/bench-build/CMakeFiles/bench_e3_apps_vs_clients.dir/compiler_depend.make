# Empty compiler generated dependencies file for bench_e3_apps_vs_clients.
# This may be replaced when dependencies are built.
