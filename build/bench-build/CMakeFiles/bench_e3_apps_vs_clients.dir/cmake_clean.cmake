file(REMOVE_RECURSE
  "../bench/bench_e3_apps_vs_clients"
  "../bench/bench_e3_apps_vs_clients.pdb"
  "CMakeFiles/bench_e3_apps_vs_clients.dir/bench_e3_apps_vs_clients.cpp.o"
  "CMakeFiles/bench_e3_apps_vs_clients.dir/bench_e3_apps_vs_clients.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_apps_vs_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
