# Empty compiler generated dependencies file for bench_e1_app_scalability.
# This may be replaced when dependencies are built.
