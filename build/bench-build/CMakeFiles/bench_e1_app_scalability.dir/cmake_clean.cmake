file(REMOVE_RECURSE
  "../bench/bench_e1_app_scalability"
  "../bench/bench_e1_app_scalability.pdb"
  "CMakeFiles/bench_e1_app_scalability.dir/bench_e1_app_scalability.cpp.o"
  "CMakeFiles/bench_e1_app_scalability.dir/bench_e1_app_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_app_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
