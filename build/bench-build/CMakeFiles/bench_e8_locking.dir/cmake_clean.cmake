file(REMOVE_RECURSE
  "../bench/bench_e8_locking"
  "../bench/bench_e8_locking.pdb"
  "CMakeFiles/bench_e8_locking.dir/bench_e8_locking.cpp.o"
  "CMakeFiles/bench_e8_locking.dir/bench_e8_locking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
