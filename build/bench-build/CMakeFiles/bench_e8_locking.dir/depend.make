# Empty dependencies file for bench_e8_locking.
# This may be replaced when dependencies are built.
