file(REMOVE_RECURSE
  "../bench/bench_a3_remote_update_modes"
  "../bench/bench_a3_remote_update_modes.pdb"
  "CMakeFiles/bench_a3_remote_update_modes.dir/bench_a3_remote_update_modes.cpp.o"
  "CMakeFiles/bench_a3_remote_update_modes.dir/bench_a3_remote_update_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_remote_update_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
