# Empty dependencies file for bench_a3_remote_update_modes.
# This may be replaced when dependencies are built.
