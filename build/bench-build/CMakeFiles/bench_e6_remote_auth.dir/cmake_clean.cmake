file(REMOVE_RECURSE
  "../bench/bench_e6_remote_auth"
  "../bench/bench_e6_remote_auth.pdb"
  "CMakeFiles/bench_e6_remote_auth.dir/bench_e6_remote_auth.cpp.o"
  "CMakeFiles/bench_e6_remote_auth.dir/bench_e6_remote_auth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_remote_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
