# Empty dependencies file for bench_e6_remote_auth.
# This may be replaced when dependencies are built.
