# Empty compiler generated dependencies file for bench_e2_client_scalability.
# This may be replaced when dependencies are built.
