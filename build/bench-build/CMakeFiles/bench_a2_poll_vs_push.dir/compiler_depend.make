# Empty compiler generated dependencies file for bench_a2_poll_vs_push.
# This may be replaced when dependencies are built.
