file(REMOVE_RECURSE
  "../bench/bench_a2_poll_vs_push"
  "../bench/bench_a2_poll_vs_push.pdb"
  "CMakeFiles/bench_a2_poll_vs_push.dir/bench_a2_poll_vs_push.cpp.o"
  "CMakeFiles/bench_a2_poll_vs_push.dir/bench_a2_poll_vs_push.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_poll_vs_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
