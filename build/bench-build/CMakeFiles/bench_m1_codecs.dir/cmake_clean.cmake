file(REMOVE_RECURSE
  "../bench/bench_m1_codecs"
  "../bench/bench_m1_codecs.pdb"
  "CMakeFiles/bench_m1_codecs.dir/bench_m1_codecs.cpp.o"
  "CMakeFiles/bench_m1_codecs.dir/bench_m1_codecs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
