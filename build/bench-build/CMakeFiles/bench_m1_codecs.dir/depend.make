# Empty dependencies file for bench_m1_codecs.
# This may be replaced when dependencies are built.
