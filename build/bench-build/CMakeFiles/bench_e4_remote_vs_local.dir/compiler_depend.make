# Empty compiler generated dependencies file for bench_e4_remote_vs_local.
# This may be replaced when dependencies are built.
