file(REMOVE_RECURSE
  "../bench/bench_e4_remote_vs_local"
  "../bench/bench_e4_remote_vs_local.pdb"
  "CMakeFiles/bench_e4_remote_vs_local.dir/bench_e4_remote_vs_local.cpp.o"
  "CMakeFiles/bench_e4_remote_vs_local.dir/bench_e4_remote_vs_local.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_remote_vs_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
