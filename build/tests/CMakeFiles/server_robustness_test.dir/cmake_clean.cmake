file(REMOVE_RECURSE
  "CMakeFiles/server_robustness_test.dir/server_robustness_test.cpp.o"
  "CMakeFiles/server_robustness_test.dir/server_robustness_test.cpp.o.d"
  "server_robustness_test"
  "server_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
