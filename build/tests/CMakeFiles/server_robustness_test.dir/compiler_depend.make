# Empty compiler generated dependencies file for server_robustness_test.
# This may be replaced when dependencies are built.
