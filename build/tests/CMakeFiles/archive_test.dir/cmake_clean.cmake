file(REMOVE_RECURSE
  "CMakeFiles/archive_test.dir/archive_test.cpp.o"
  "CMakeFiles/archive_test.dir/archive_test.cpp.o.d"
  "archive_test"
  "archive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
