file(REMOVE_RECURSE
  "CMakeFiles/http_test.dir/http_test.cpp.o"
  "CMakeFiles/http_test.dir/http_test.cpp.o.d"
  "http_test"
  "http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
