file(REMOVE_RECURSE
  "CMakeFiles/integration_thread_test.dir/integration_thread_test.cpp.o"
  "CMakeFiles/integration_thread_test.dir/integration_thread_test.cpp.o.d"
  "integration_thread_test"
  "integration_thread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
