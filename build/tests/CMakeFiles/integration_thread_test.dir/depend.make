# Empty dependencies file for integration_thread_test.
# This may be replaced when dependencies are built.
