file(REMOVE_RECURSE
  "CMakeFiles/security_property_test.dir/security_property_test.cpp.o"
  "CMakeFiles/security_property_test.dir/security_property_test.cpp.o.d"
  "security_property_test"
  "security_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
