# Empty dependencies file for security_property_test.
# This may be replaced when dependencies are built.
