
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/retry_policy_test.cpp" "tests/CMakeFiles/retry_policy_test.dir/retry_policy_test.cpp.o" "gcc" "tests/CMakeFiles/retry_policy_test.dir/retry_policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/discover_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/discover_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/discover_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/discover_app.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/discover_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/discover_http.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/discover_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/discover_db.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/discover_security.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/discover_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/discover_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/discover_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
