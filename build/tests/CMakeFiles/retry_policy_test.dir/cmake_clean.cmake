file(REMOVE_RECURSE
  "CMakeFiles/retry_policy_test.dir/retry_policy_test.cpp.o"
  "CMakeFiles/retry_policy_test.dir/retry_policy_test.cpp.o.d"
  "retry_policy_test"
  "retry_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retry_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
