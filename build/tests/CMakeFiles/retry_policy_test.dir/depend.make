# Empty dependencies file for retry_policy_test.
# This may be replaced when dependencies are built.
