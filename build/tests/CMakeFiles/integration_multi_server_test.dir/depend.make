# Empty dependencies file for integration_multi_server_test.
# This may be replaced when dependencies are built.
