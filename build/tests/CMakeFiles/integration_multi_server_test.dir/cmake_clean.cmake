file(REMOVE_RECURSE
  "CMakeFiles/integration_multi_server_test.dir/integration_multi_server_test.cpp.o"
  "CMakeFiles/integration_multi_server_test.dir/integration_multi_server_test.cpp.o.d"
  "integration_multi_server_test"
  "integration_multi_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multi_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
