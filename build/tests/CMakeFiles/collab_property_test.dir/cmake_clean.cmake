file(REMOVE_RECURSE
  "CMakeFiles/collab_property_test.dir/collab_property_test.cpp.o"
  "CMakeFiles/collab_property_test.dir/collab_property_test.cpp.o.d"
  "collab_property_test"
  "collab_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collab_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
