# Empty compiler generated dependencies file for collab_property_test.
# This may be replaced when dependencies are built.
