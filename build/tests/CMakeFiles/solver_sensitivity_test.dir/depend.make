# Empty dependencies file for solver_sensitivity_test.
# This may be replaced when dependencies are built.
