file(REMOVE_RECURSE
  "CMakeFiles/solver_sensitivity_test.dir/solver_sensitivity_test.cpp.o"
  "CMakeFiles/solver_sensitivity_test.dir/solver_sensitivity_test.cpp.o.d"
  "solver_sensitivity_test"
  "solver_sensitivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
