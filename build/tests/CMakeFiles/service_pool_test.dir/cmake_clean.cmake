file(REMOVE_RECURSE
  "CMakeFiles/service_pool_test.dir/service_pool_test.cpp.o"
  "CMakeFiles/service_pool_test.dir/service_pool_test.cpp.o.d"
  "service_pool_test"
  "service_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
