file(REMOVE_RECURSE
  "CMakeFiles/integration_single_server_test.dir/integration_single_server_test.cpp.o"
  "CMakeFiles/integration_single_server_test.dir/integration_single_server_test.cpp.o.d"
  "integration_single_server_test"
  "integration_single_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_single_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
