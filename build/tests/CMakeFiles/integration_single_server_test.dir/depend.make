# Empty dependencies file for integration_single_server_test.
# This may be replaced when dependencies are built.
