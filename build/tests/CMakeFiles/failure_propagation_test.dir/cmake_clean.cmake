file(REMOVE_RECURSE
  "CMakeFiles/failure_propagation_test.dir/failure_propagation_test.cpp.o"
  "CMakeFiles/failure_propagation_test.dir/failure_propagation_test.cpp.o.d"
  "failure_propagation_test"
  "failure_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
