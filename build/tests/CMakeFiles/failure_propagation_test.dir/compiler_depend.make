# Empty compiler generated dependencies file for failure_propagation_test.
# This may be replaced when dependencies are built.
