file(REMOVE_RECURSE
  "CMakeFiles/integration_collab_test.dir/integration_collab_test.cpp.o"
  "CMakeFiles/integration_collab_test.dir/integration_collab_test.cpp.o.d"
  "integration_collab_test"
  "integration_collab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_collab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
