# Empty dependencies file for integration_collab_test.
# This may be replaced when dependencies are built.
