# Empty dependencies file for oil_reservoir_steering.
# This may be replaced when dependencies are built.
