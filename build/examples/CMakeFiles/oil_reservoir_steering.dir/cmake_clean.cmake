file(REMOVE_RECURSE
  "CMakeFiles/oil_reservoir_steering.dir/oil_reservoir_steering.cpp.o"
  "CMakeFiles/oil_reservoir_steering.dir/oil_reservoir_steering.cpp.o.d"
  "oil_reservoir_steering"
  "oil_reservoir_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oil_reservoir_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
