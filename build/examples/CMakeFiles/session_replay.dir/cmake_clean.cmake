file(REMOVE_RECURSE
  "CMakeFiles/session_replay.dir/session_replay.cpp.o"
  "CMakeFiles/session_replay.dir/session_replay.cpp.o.d"
  "session_replay"
  "session_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
