# Empty compiler generated dependencies file for multi_site_collaboratory.
# This may be replaced when dependencies are built.
