file(REMOVE_RECURSE
  "CMakeFiles/multi_site_collaboratory.dir/multi_site_collaboratory.cpp.o"
  "CMakeFiles/multi_site_collaboratory.dir/multi_site_collaboratory.cpp.o.d"
  "multi_site_collaboratory"
  "multi_site_collaboratory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_site_collaboratory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
