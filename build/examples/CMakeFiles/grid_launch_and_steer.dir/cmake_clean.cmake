file(REMOVE_RECURSE
  "CMakeFiles/grid_launch_and_steer.dir/grid_launch_and_steer.cpp.o"
  "CMakeFiles/grid_launch_and_steer.dir/grid_launch_and_steer.cpp.o.d"
  "grid_launch_and_steer"
  "grid_launch_and_steer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_launch_and_steer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
