# Empty compiler generated dependencies file for grid_launch_and_steer.
# This may be replaced when dependencies are built.
