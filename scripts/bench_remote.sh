#!/usr/bin/env bash
# Peer-batching sweep: runs the A4 outbox bench ({1,4,8} peer sites, legacy
# per-event vs coalesced flushes) plus the versioned-directory refresh
# sweep with google-benchmark's JSON reporter and merges both into
# BENCH_remote.json at the repo root.  The checked-in JSON is the evidence
# for the perf targets in DESIGN.md ("Peer outbox & directory deltas"):
# >=5x fewer forward-path ORB invocations per delivered event at 4 peers,
# and delta refreshes a fraction of full-snapshot bytes.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_remote.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_a4_peer_batching

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$BUILD_DIR"/bench/bench_a4_peer_batching \
  --benchmark_format=json --benchmark_out="$tmp" \
  --benchmark_out_format=json

python3 - "$tmp" "$OUT" <<'PY'
import json, sys

src, out = sys.argv[1:3]
with open(src) as f:
    data = json.load(f)

rows = []
for b in data.get("benchmarks", []):
    row = {"name": b["name"]}
    for k in ("fwd_calls", "events_rx", "calls_per_evt", "wan_bytes",
              "p50_ms", "dir_bytes", "dir_fulls"):
        if k in b:
            row[k] = b[k]
    rows.append(row)

def arg(name, key):
    for part in name.split("/"):
        if part.startswith(key + ":"):
            return int(part.split(":")[1])
    return None

# Headline ratios: forward-path ORB invocations per delivered event,
# legacy over batched, per peer count.
reductions = {}
by_peers = {}
for r in rows:
    peers, flush = arg(r["name"], "peers"), arg(r["name"], "flush_ms")
    if peers is None or flush is None:
        continue
    by_peers.setdefault(peers, {})[flush] = r
for peers, arms in sorted(by_peers.items()):
    if 0 in arms and 5 in arms:
        legacy = arms[0].get("calls_per_evt", 0)
        batched = arms[5].get("calls_per_evt", 0)
        if batched:
            reductions[f"peers{peers}_orb_calls_per_event_legacy_over_batched"] = \
                round(legacy / batched, 2)
        lb, bb = arms[0].get("wan_bytes", 0), arms[5].get("wan_bytes", 0)
        if bb:
            reductions[f"peers{peers}_wan_bytes_legacy_over_batched"] = \
                round(lb / bb, 2)

# Directory refresh: full-every-round bytes over delta bytes.
dirs = {}
for r in rows:
    d = arg(r["name"], "deltas")
    if d is not None:
        dirs[d] = r
if 0 in dirs and 1 in dirs and dirs[1].get("dir_bytes"):
    reductions["dir_refresh_bytes_full_over_deltas"] = \
        round(dirs[0]["dir_bytes"] / dirs[1]["dir_bytes"], 2)

ctx = data.get("context", {})
result = {
    "experiment": "peer_outbox_batching",
    "context": {k: ctx.get(k) for k in
                ("date", "host_name", "num_cpus", "mhz_per_cpu",
                 "library_build_type") if k in ctx},
    "benchmarks": rows,
    "reduction": reductions,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out}")
for k, v in reductions.items():
    print(f"  {k}: {v}x")
PY
