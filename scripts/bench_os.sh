#!/usr/bin/env bash
# Transport A/B sweep: runs bench_os (one-way stream throughput, payload
# sizes 64B / 4KiB / 64KiB, ThreadNetwork vs OsNetwork over 127.0.0.1)
# with google-benchmark's JSON reporter and writes BENCH_os.json at the
# repo root.  The checked-in JSON records loopback-TCP events/sec alongside
# the in-process ThreadNetwork baseline, plus the os-over-thread ratio per
# payload size (EXPERIMENTS.md E13 describes the methodology and schema).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_os.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_os

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$BUILD_DIR"/bench/bench_os \
  --benchmark_filter=BM_Transport \
  --benchmark_format=json --benchmark_out="$tmp" \
  --benchmark_out_format=json

python3 - "$tmp" "$OUT" <<'PY'
import json, sys

src, out = sys.argv[1:3]
with open(src) as f:
    data = json.load(f)

def arg(name, key):
    for part in name.split("/"):
        if part.startswith(key + ":"):
            return int(part.split(":")[1])
    return None

rows = []
by_key = {}
for b in data.get("benchmarks", []):
    os_flag = arg(b["name"], "os")
    size = arg(b["name"], "bytes")
    if os_flag is None or size is None:
        continue
    row = {
        "name": b["name"],
        "backend": "os" if os_flag else "thread",
        "payload_bytes": size,
    }
    for k in ("events_per_sec", "mb_per_sec"):
        if k in b:
            row[k] = b[k]
    rows.append(row)
    by_key[(os_flag, size)] = row

# Headline ratios: loopback-TCP throughput relative to in-process, per
# payload size (< 1.0 is expected — the socket path pays for realism).
ratio = {}
for size in sorted({s for (_, s) in by_key}):
    base = by_key.get((0, size), {}).get("events_per_sec", 0)
    osr = by_key.get((1, size), {}).get("events_per_sec", 0)
    if base:
        ratio[f"os_over_thread_events_per_sec_{size}B"] = round(osr / base, 3)

ctx = data.get("context", {})
result = {
    "experiment": "transport_ab_os_vs_thread",
    "context": {k: ctx.get(k) for k in
                ("date", "host_name", "num_cpus", "mhz_per_cpu",
                 "library_build_type") if k in ctx},
    "transports": rows,
    "ratio": ratio,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out}")
for k, v in ratio.items():
    print(f"  {k}: {v}x")
PY
