#!/usr/bin/env bash
# Fan-out sweep: runs the encode-once fan-out benches (SimNetwork sweep in
# bench_e7, ThreadNetwork push case in bench_e2) with google-benchmark's
# JSON reporter and merges both into BENCH_fanout.json at the repo root.
# The checked-in JSON is the evidence for the perf targets in DESIGN.md
# ("Fan-out fast path"): >=5x push-mode throughput at 512 subscribers and
# flat per-delivery allocation in poll mode.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_fanout.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_e7_collab_traffic bench_e2_client_scalability

tmp_sim=$(mktemp) tmp_thread=$(mktemp)
trap 'rm -f "$tmp_sim" "$tmp_thread"' EXIT

"$BUILD_DIR"/bench/bench_e7_collab_traffic \
  --benchmark_filter=BM_E7_Fanout \
  --benchmark_format=json --benchmark_out="$tmp_sim" \
  --benchmark_out_format=json
"$BUILD_DIR"/bench/bench_e2_client_scalability \
  --benchmark_filter=BM_E2_PushFanout \
  --benchmark_format=json --benchmark_out="$tmp_thread" \
  --benchmark_out_format=json

python3 - "$tmp_sim" "$tmp_thread" "$OUT" <<'PY'
import json, sys

sim, thread, out = sys.argv[1:4]

def load(path):
    with open(path) as f:
        data = json.load(f)
    rows = []
    for b in data.get("benchmarks", []):
        row = {"name": b["name"]}
        for k, v in b.items():
            if k.startswith(("events_per_sec", "allocs_per_delivery",
                             "alloc_bytes_per_delivery", "delivered",
                             "deliveries_per_sec")):
                row[k] = v
        rows.append(row)
    return data.get("context", {}), rows

sim_ctx, sim_rows = load(sim)
_, thread_rows = load(thread)

def arg(name, key):
    for part in name.split("/"):
        if part.startswith(key + ":"):
            return int(part.split(":")[1])
    return None

# Headline ratios: fast-path speedup over the legacy scan per sweep point.
speedups = {}
by_point = {}
for r in sim_rows:
    subs, push, fast = (arg(r["name"], k) for k in ("subs", "push", "fast"))
    if subs is None:
        continue
    by_point.setdefault((subs, push), {})[fast] = r
for (subs, push), paths in sorted(by_point.items()):
    if 0 in paths and 1 in paths:
        legacy = paths[0].get("events_per_sec", 0)
        fastv = paths[1].get("events_per_sec", 0)
        if legacy:
            mode = "push" if push else "poll"
            speedups[f"sim_{mode}_subs{subs}_events_per_sec_fast_over_legacy"] = \
                round(fastv / legacy, 2)

result = {
    "experiment": "fanout_fast_path",
    "context": {k: sim_ctx.get(k) for k in
                ("date", "host_name", "num_cpus", "mhz_per_cpu",
                 "library_build_type") if k in sim_ctx},
    "sim_network": sim_rows,
    "thread_network": thread_rows,
    "speedup": speedups,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out}")
for k, v in speedups.items():
    print(f"  {k}: {v}x")
PY
