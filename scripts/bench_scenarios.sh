#!/usr/bin/env bash
# Scenario-suite sweep: runs the four canned scenarios (flash crowd, churn
# storm, slow-poll swarm, partition mix) at full 10k-client scale on the
# SimNetwork and writes BENCH_scenarios.json at the repo root.  The runs
# are deterministic discrete-event simulations: the same CLIENTS/SEED pair
# reproduces the checked-in JSON byte-for-byte on any machine (only wall
# time varies).  See EXPERIMENTS.md "E9: scenario suite" for how to read
# the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_scenarios.json}"
CLIENTS="${CLIENTS:-10000}"
SEED="${SEED:-1}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target scenario_runner

"$BUILD_DIR"/bench/scenario_runner \
  --clients="$CLIENTS" --seed="$SEED" --out="$OUT"
echo "bench_scenarios: wrote $OUT"
