#!/usr/bin/env bash
# Observability-overhead sweep: replays the flash-crowd scenario (fixed
# spec + seed, so every arm runs the identical discrete-event schedule)
# while sweeping trace_sample_every — 0 (off), 16 (default stride),
# 1 (every request) — plus an arm that also drops the per-stage latency
# histograms.  Sim time is pinned, so the wall-clock/events-per-second
# deltas isolate the cost of span recording and histogram updates.
# Writes BENCH_observe.json (google-benchmark JSON; see the events_per_s
# and overhead_pct counters and EXPERIMENTS.md "E10: observability
# overhead" for how to read the numbers).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_observe.json}"
FILTER="${FILTER:-clients:512}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_observe

"$BUILD_DIR"/bench/bench_observe \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" --benchmark_out_format=json
echo "bench_observe: wrote $OUT"
