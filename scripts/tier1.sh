#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the chaos suite again
# under ThreadSanitizer (the fault-injection paths in ThreadNetwork touch
# shared state from worker threads; TSan proves the locking).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== tier 1b: chaos + locks suites under TSan =="
cmake -B build-tsan -S . -DDISCOVER_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
  --target chaos_test retry_policy_test lock_manager_test lock_lifecycle_test
(cd build-tsan && ctest -L 'chaos|locks' --output-on-failure)

echo "== tier 1c: fan-out bench smoke (8-subscriber cases) =="
(cd build && ctest -L bench-smoke --output-on-failure)

echo "== tier 1d: backpressure + scenario-suite smoke =="
# Smoke scale (48 clients); the full 10k-client sweep is
# scripts/bench_scenarios.sh.
(cd build && ctest -L scenarios --output-on-failure)

echo "== tier 1e: observability suite =="
# Metrics registry + /metrics and /trace endpoints + cross-server trace
# propagation; the overhead sweep is scripts/bench_observe.sh.
(cd build && ctest -L observability --output-on-failure)

echo "== tier 1f: shard suite under TSan =="
# Sharded server core: dispatcher -> shard-worker handoffs, cross-shard
# hops, sharded counters and the multi-core end-to-end flow all run with
# real threads; TSan proves the queue handoffs publish state correctly.
# The capacity sweep is scripts/bench_shards.sh.
cmake --build build-tsan -j "$(nproc)" --target shard_test
(cd build-tsan && ctest -L shards --output-on-failure)

echo "== tier 1g: federation suite under TSan =="
# Sharded federation: owning-core peer relays, per-core outboxes, the
# cross-core peer-state broadcasts and the receiver-side frame scatter all
# run with real threads; TSan proves the cross-core handoffs.  The
# capacity sweep is scripts/bench_federation.sh.
cmake --build build-tsan -j "$(nproc)" --target federation_test
(cd build-tsan && ctest -L federation --output-on-failure)

echo "== tier 1h: OS-socket transport suite under TSan =="
# Real TCP over loopback: the event loop, per-node workers and sender
# threads all touch connection state; TSan proves the io_mutex_/timer_mutex_
# discipline.  The throughput A/B is scripts/bench_os.sh.
cmake --build build-tsan -j "$(nproc)" --target os_network_test
(cd build-tsan && ctest -L osnet --output-on-failure)

echo "tier1: all green"
