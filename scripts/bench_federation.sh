#!/usr/bin/env bash
# Federation sweep: runs bench_federation (sharded origin pushing batched
# events to a subscribing peer, receiver shard_count in {1,2,4}) with
# google-benchmark's JSON reporter and writes BENCH_federation.json at the
# repo root.  The checked-in JSON is the evidence for the DESIGN.md §5j
# perf target: >= 2x cross-server events/sec at shard_count = 4 vs
# shard_count = 1 on the ThreadNetwork (EXPERIMENTS.md E12 describes the
# methodology and the JSON schema).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_federation.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_federation

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

"$BUILD_DIR"/bench/bench_federation \
  --benchmark_filter=BM_Federation \
  --benchmark_format=json --benchmark_out="$tmp" \
  --benchmark_out_format=json

python3 - "$tmp" "$OUT" <<'PY'
import json, sys

src, out = sys.argv[1:3]
with open(src) as f:
    data = json.load(f)

def arg(name, key):
    for part in name.split("/"):
        if part.startswith(key + ":"):
            return int(part.split(":")[1])
    return None

rows = []
by_shards = {}
for b in data.get("benchmarks", []):
    shards = arg(b["name"], "shards")
    if shards is None:
        continue
    row = {"name": b["name"], "shards": shards}
    for k in ("events_per_sec", "peer_events_in"):
        if k in b:
            row[k] = b[k]
    rows.append(row)
    by_shards[shards] = row

# Headline ratio: cross-server events/sec relative to one shard.
speedup = {}
base = by_shards.get(1, {}).get("events_per_sec", 0)
if base:
    for shards, row in sorted(by_shards.items()):
        speedup[f"thread_shards{shards}_events_per_sec_over_shards1"] = \
            round(row.get("events_per_sec", 0) / base, 2)

ctx = data.get("context", {})
result = {
    "experiment": "federation_sweep",
    "context": {k: ctx.get(k) for k in
                ("date", "host_name", "num_cpus", "mhz_per_cpu",
                 "library_build_type") if k in ctx},
    "thread_network": rows,
    "speedup": speedup,
}
with open(out, "w") as f:
    json.dump(result, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out}")
for k, v in speedup.items():
    print(f"  {k}: {v}x")
PY
