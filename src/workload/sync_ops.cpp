#include "workload/sync_ops.h"

#include <chrono>
#include <memory>
#include <thread>

#include "net/sim_network.h"

namespace discover::workload {

namespace {

/// Lets the world advance by `d` regardless of backend.
void advance(net::Network& network, util::Duration d) {
  if (auto* sim = dynamic_cast<net::SimNetwork*>(&network)) {
    sim->run_for(d);
  } else {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d));
  }
}

template <typename Reply>
struct CallState {
  std::atomic<bool> done{false};
  std::optional<util::Result<Reply>> result;
};

/// Runs `start` in the client node's context and waits for completion.
/// The completion callback runs on the client's logical thread; the result
/// is published with release/acquire ordering through `done`.
template <typename Reply, typename StartFn>
util::Result<Reply> sync_call(net::Network& network,
                              core::DiscoverClient& client, StartFn start,
                              util::Duration timeout) {
  auto state = std::make_shared<CallState<Reply>>();
  network.post(client.node(), [&client, state, start] {
    start(client, [state](util::Result<Reply> r) {
      state->result.emplace(std::move(r));
      state->done.store(true, std::memory_order_release);
    });
  });
  if (!wait_for(network,
                [state] { return state->done.load(std::memory_order_acquire); },
                timeout)) {
    return util::Error{util::Errc::timeout, "sync call timed out"};
  }
  return std::move(*state->result);
}

}  // namespace

bool wait_for(net::Network& network, const std::function<bool()>& done,
              util::Duration timeout) {
  if (auto* sim = dynamic_cast<net::SimNetwork*>(&network)) {
    const util::TimePoint deadline = sim->now() + timeout;
    if (done()) return true;
    while (sim->now() < deadline && sim->pending_events() > 0) {
      sim->step();
      if (done()) return true;
    }
    return done();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return done();
}

util::Result<proto::LoginReply> sync_login(net::Network& network,
                                           core::DiscoverClient& client,
                                           util::Duration timeout) {
  return sync_call<proto::LoginReply>(
      network, client,
      [](core::DiscoverClient& c, auto cb) { c.login(std::move(cb)); },
      timeout);
}

util::Result<proto::SelectAppReply> sync_select(net::Network& network,
                                                core::DiscoverClient& client,
                                                const proto::AppId& app,
                                                util::Duration timeout) {
  return sync_call<proto::SelectAppReply>(
      network, client,
      [app](core::DiscoverClient& c, auto cb) {
        c.select_app(app, std::move(cb));
      },
      timeout);
}

util::Result<proto::CommandAck> sync_command(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, proto::CommandKind kind, const std::string& param,
    const proto::ParamValue& value, util::Duration timeout) {
  return sync_call<proto::CommandAck>(
      network, client,
      [app, kind, param, value](core::DiscoverClient& c, auto cb) {
        c.send_command(app, kind, param, value, std::move(cb));
      },
      timeout);
}

util::Result<proto::PollReply> sync_poll(net::Network& network,
                                         core::DiscoverClient& client,
                                         const proto::AppId& app,
                                         util::Duration timeout) {
  return sync_call<proto::PollReply>(
      network, client,
      [app](core::DiscoverClient& c, auto cb) { c.poll(app, std::move(cb)); },
      timeout);
}

util::Result<proto::HistoryReply> sync_history(net::Network& network,
                                               core::DiscoverClient& client,
                                               const proto::AppId& app,
                                               std::uint64_t from_seq,
                                               std::uint32_t max,
                                               util::Duration timeout) {
  return sync_call<proto::HistoryReply>(
      network, client,
      [app, from_seq, max](core::DiscoverClient& c, auto cb) {
        c.fetch_history(app, from_seq, max, std::move(cb));
      },
      timeout);
}

util::Result<proto::CollabAck> sync_collab_post(net::Network& network,
                                                core::DiscoverClient& client,
                                                const proto::AppId& app,
                                                proto::EventKind kind,
                                                const std::string& text,
                                                util::Duration timeout) {
  return sync_call<proto::CollabAck>(
      network, client,
      [app, kind, text](core::DiscoverClient& c, auto cb) {
        c.post_collab(app, kind, text, std::move(cb));
      },
      timeout);
}

util::Result<proto::CollabAck> sync_group_op(net::Network& network,
                                             core::DiscoverClient& client,
                                             const proto::AppId& app,
                                             proto::GroupOp op,
                                             const std::string& subgroup,
                                             util::Duration timeout) {
  return sync_call<proto::CollabAck>(
      network, client,
      [app, op, subgroup](core::DiscoverClient& c, auto cb) {
        c.group_op(app, op, subgroup, std::move(cb));
      },
      timeout);
}

bool sync_onboard_steerer(net::Network& network, core::DiscoverClient& client,
                          const proto::AppId& app, util::Duration timeout) {
  auto login = sync_login(network, client, timeout);
  if (!login.ok() || !login.value().ok) return false;
  auto select = sync_select(network, client, app, timeout);
  if (!select.ok() || !select.value().ok) return false;
  auto ack = sync_command(network, client, app,
                          proto::CommandKind::acquire_lock, "", {}, timeout);
  if (!ack.ok() || !ack.value().accepted) return false;

  // The grant arrives as a lock_notice event; poll until it shows up.
  const auto granted = [&client] {
    for (const auto& ev : client.received_events()) {
      if (ev.kind == proto::EventKind::lock_notice &&
          ev.user == client.user() && ev.text == "granted") {
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < 100 && !granted(); ++i) {
    auto poll = sync_poll(network, client, app, timeout);
    if (!poll.ok()) return false;
    if (!granted()) advance(network, util::milliseconds(20));
  }
  return granted();
}

}  // namespace discover::workload
