#include "workload/scenario.h"

namespace discover::workload {

RegistryNode::RegistryNode(net::Network& network) : network_(network) {}

void RegistryNode::attach(net::NodeId self) {
  orb_ = std::make_unique<orb::Orb>(network_, self);
  naming_ref_ = orb_->activate(std::make_shared<orb::NamingService>());
  trader_ref_ = orb_->activate(std::make_shared<orb::TraderService>());
}

void RegistryNode::on_message(const net::Message& msg) {
  if (msg.channel == net::Channel::giop) orb_->handle(msg);
}

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  net_.set_lan_model(config_.lan);
  net_.set_wan_model(config_.wan);
  net_.set_fault_seed(config_.fault_seed);
  if (config_.lan_faults.active()) net_.set_lan_faults(config_.lan_faults);
  if (config_.wan_faults.active()) net_.set_wan_faults(config_.wan_faults);
  registry_ = std::make_unique<RegistryNode>(net_);
  const net::NodeId node =
      net_.add_node("registry", registry_.get(), net::DomainId{0});
  registry_->attach(node);
}

core::DiscoverServer& Scenario::add_server(const std::string& name,
                                           std::uint32_t domain) {
  core::ServerConfig cfg = config_.server_template;
  cfg.name = name;
  return add_server(name, domain, std::move(cfg));
}

core::DiscoverServer& Scenario::add_server(const std::string& name,
                                           std::uint32_t domain,
                                           core::ServerConfig config) {
  auto server = std::make_unique<core::DiscoverServer>(net_, std::move(config));
  core::DiscoverServer& ref = *server;
  const net::NodeId node =
      net_.add_node("server:" + name, server.get(), net::DomainId{domain});
  ref.attach(node);
  ref.set_registry(registry_->naming_ref(), registry_->trader_ref());
  ref.start();
  servers_.push_back(std::move(server));
  return ref;
}

core::DiscoverClient& Scenario::add_client(const std::string& user,
                                           core::DiscoverServer& server,
                                           core::ClientConfig config) {
  return add_client_in_domain(user, server,
                              net_.node_domain(server.node()).value(),
                              std::move(config));
}

core::DiscoverClient& Scenario::add_client_in_domain(
    const std::string& user, core::DiscoverServer& server,
    std::uint32_t domain, core::ClientConfig config) {
  config.user = user;
  auto client = std::make_unique<core::DiscoverClient>(net_, std::move(config));
  core::DiscoverClient& ref = *client;
  const net::NodeId node = net_.add_node("client:" + user, client.get(),
                                         net::DomainId{domain});
  ref.attach(node);
  ref.set_server(server.node());
  clients_.push_back(std::move(client));
  return ref;
}

bool Scenario::run_until(const std::function<bool()>& pred,
                         util::Duration max_sim_time) {
  const util::TimePoint deadline = net_.now() + max_sim_time;
  if (pred()) return true;
  while (net_.now() < deadline && net_.pending_events() > 0) {
    net_.step();
    if (pred()) return true;
  }
  return pred();
}

std::vector<security::AclEntry> make_acl(
    std::initializer_list<std::pair<const char*, security::Privilege>>
        users) {
  std::vector<security::AclEntry> acl;
  for (const auto& [user, priv] : users) {
    acl.push_back(security::AclEntry{user, priv, 0});
  }
  return acl;
}

}  // namespace discover::workload
