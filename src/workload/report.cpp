#include "workload/report.h"

#include <cstdio>

namespace discover::workload {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%s  ", std::string(widths[i], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(std::uint64_t v) {
  return std::to_string(v);
}

}  // namespace discover::workload
