// Scripted client behaviour for load experiments.
//
// A ClientDriver turns a DiscoverClient into a steady-state portal user:
// it polls on the client's configured cadence and issues a read command
// every `command_period`.  Request latencies accumulate in the client's
// HttpClient histogram; the driver adds command-level success counters.
#pragma once

#include <atomic>
#include <string>

#include "core/client.h"

namespace discover::workload {

struct DriverConfig {
  util::Duration command_period = util::milliseconds(200);
  proto::CommandKind kind = proto::CommandKind::get_param;
  std::string param;
  /// When kind is set_param: value = base + step * commands_sent.
  double value_base = 1.0;
  double value_step = 0.0;
};

class ClientDriver {
 public:
  ClientDriver(net::Network& network, core::DiscoverClient& client,
               proto::AppId app, DriverConfig config);

  /// Begins polling + command loops; call after the client has logged in
  /// and selected the application (and acquired the lock for writes).
  void start();
  void stop();

  [[nodiscard]] std::uint64_t commands_sent() const {
    return commands_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t acks_ok() const {
    return acks_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t acks_failed() const {
    return acks_failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] core::DiscoverClient& client() { return client_; }

 private:
  void command_once();

  net::Network& network_;
  core::DiscoverClient& client_;
  proto::AppId app_;
  DriverConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> commands_sent_{0};
  std::atomic<std::uint64_t> acks_ok_{0};
  std::atomic<std::uint64_t> acks_failed_{0};
};

}  // namespace discover::workload
