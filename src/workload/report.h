// Fixed-width table printing for the benchmark harness, so every bench
// binary emits the paper-style rows described in DESIGN.md §4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace discover::workload {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Renders to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_double(double v, int precision = 2);
std::string fmt_int(std::uint64_t v);

}  // namespace discover::workload
