#include "workload/thread_scenario.h"

namespace discover::workload {

ThreadScenario::ThreadScenario(core::ServerConfig server_template)
    : server_template_(std::move(server_template)) {
  registry_ = std::make_unique<RegistryNode>(net_);
  const net::NodeId node =
      net_.add_node("registry", registry_.get(), net::DomainId{0});
  registry_->attach(node);
}

ThreadScenario::~ThreadScenario() { stop(); }

core::DiscoverServer& ThreadScenario::add_server(const std::string& name,
                                                 std::uint32_t domain) {
  core::ServerConfig cfg = server_template_;
  cfg.name = name;
  auto server = std::make_unique<core::DiscoverServer>(net_, std::move(cfg));
  core::DiscoverServer& ref = *server;
  const net::NodeId node =
      net_.add_node("server:" + name, server.get(), net::DomainId{domain});
  ref.attach(node);
  ref.set_registry(registry_->naming_ref(), registry_->trader_ref());
  servers_.push_back(std::move(server));
  return ref;
}

core::DiscoverClient& ThreadScenario::add_client(const std::string& user,
                                                 core::DiscoverServer& server,
                                                 core::ClientConfig config) {
  config.user = user;
  auto client = std::make_unique<core::DiscoverClient>(net_, std::move(config));
  core::DiscoverClient& ref = *client;
  const net::NodeId node = net_.add_node(
      "client:" + user, client.get(), net_.node_domain(server.node()));
  ref.attach(node);
  ref.set_server(server.node());
  clients_.push_back(std::move(client));
  return ref;
}

void ThreadScenario::start() {
  if (started_) return;
  started_ = true;
  net_.start();
  for (auto& server : servers_) {
    // Start on the server's own worker (actor model): the worker may
    // already be dispatching, and start() touches ORB/timer state that
    // must only ever be owned by that thread.  Inbox FIFO order puts the
    // start ahead of any client traffic sent afterwards.
    core::DiscoverServer* s = server.get();
    net_.post(s->node(), [s] { s->start(); });
  }
  for (auto& [app, server_node] : pending_connects_) {
    // Connect from the app's own context to respect the actor model.
    app::SteerableApp* a = app;
    const net::NodeId target = server_node;
    net_.post(a->node(), [a, target] { a->connect(target); });
  }
  pending_connects_.clear();
}

void ThreadScenario::stop() {
  if (!started_) return;
  started_ = false;
  // Join the network workers first so no new messages route into the shard
  // queues, then drain and join each server's shard pool — after this,
  // stats()/stats_sum() reads are ordered by the thread joins.
  net_.stop();
  for (auto& server : servers_) server->drain_shards();
}

}  // namespace discover::workload
