#include "workload/scenario_spec.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace discover::workload {

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct ScenarioEngine::ClientState {
  enum class State { idle, logging_in, selecting, active, retired };

  core::DiscoverClient* client = nullptr;
  net::NodeId node{0};
  State state = State::idle;
  bool enlisted = false;  // a join phase has claimed this client
  bool slow = false;
  bool collab = false;
  bool steerer = false;
  util::Duration poll_period = util::milliseconds(50);
  std::uint64_t steer_ticks = 0;
};

ScenarioEngine::ScenarioEngine(ScenarioSpec spec) : spec_(std::move(spec)) {}
ScenarioEngine::~ScenarioEngine() = default;

void ScenarioEngine::setup() {
  ScenarioConfig cfg;
  cfg.server_template.client_fifo_cap = spec_.fifo_cap;
  cfg.server_template.client_fifo_max_bytes = spec_.fifo_max_bytes;
  cfg.server_template.fifo_overflow = spec_.overflow;
  cfg.server_template.max_sessions = spec_.max_sessions;
  cfg.server_template.max_sessions_per_app = spec_.max_sessions_per_app;
  cfg.server_template.admission_retry_after = spec_.retry_after;
  cfg.server_template.trace_sample_every = spec_.trace_sample_every;
  cfg.server_template.stage_sample_every = spec_.stage_sample_every;
  scenario_ = std::make_unique<Scenario>(cfg);

  const std::uint32_t n_servers = std::max<std::uint32_t>(1, spec_.servers);
  for (std::uint32_t s = 0; s < n_servers; ++s) {
    servers_.push_back(
        &scenario_->add_server("s" + std::to_string(s), s + 1));
  }

  // The hot application, hosted by server[0].  Every client is on its ACL;
  // the first `steerers` with steer privilege, the rest read/write.
  app::AppConfig app_cfg;
  app_cfg.name = "hot";
  app_cfg.step_time = spec_.app_step;
  app_cfg.update_every = spec_.update_every;
  app_cfg.interact_every = spec_.mix.steerers > 0 ? 4 : 0;
  app_cfg.interaction_window = util::milliseconds(2);
  for (std::uint32_t i = 0; i < spec_.total_clients; ++i) {
    app_cfg.acl.push_back(security::AclEntry{
        "u" + std::to_string(i),
        i < spec_.mix.steerers ? security::Privilege::steer
                               : security::Privilege::read_write,
        0});
  }
  app_ = &scenario_->add_app<app::SyntheticApp>(*servers_[0], app_cfg,
                                                app::SyntheticSpec{});
  scenario_->run_until([&] { return app_->registered(); });
  app_id_ = app_->app_id();
  if (servers_.size() > 1) {
    // Let the trader/peer refresh converge so non-host servers can resolve
    // the application before the first remote select.
    scenario_->run_for(cfg.server_template.peer_refresh_period * 2);
  }

  // The whole client population, round-robin across servers, idle until a
  // join phase brings them online.  Events are counted, not stored: a
  // 10k-client sweep would otherwise hold every update in memory.
  util::Rng rng(spec_.seed);
  clients_.reserve(spec_.total_clients);
  for (std::uint32_t i = 0; i < spec_.total_clients; ++i) {
    core::ClientConfig ccfg;
    ccfg.record_events = false;
    core::DiscoverClient& c = scenario_->add_client(
        "u" + std::to_string(i), *servers_[i % servers_.size()], ccfg);
    ClientState cl;
    cl.client = &c;
    cl.node = c.node();
    cl.slow = rng.uniform() < spec_.mix.slow_poll_fraction;
    cl.collab = rng.uniform() < spec_.mix.collab_fraction;
    cl.steerer = i < spec_.mix.steerers;
    cl.poll_period =
        cl.slow ? spec_.mix.slow_poll_period : spec_.mix.poll_period;
    clients_.push_back(cl);
  }
}

void ScenarioEngine::join_client(std::size_t i) {
  ClientState& cl = clients_[i];
  if (cl.state != ClientState::State::idle) return;
  cl.state = ClientState::State::logging_in;
  cl.client->login([this, i](util::Result<proto::LoginReply> r) {
    ClientState& cl = clients_[i];
    net::SimNetwork& net = scenario_->net();
    if (!r.ok()) {  // transport failure: back off and retry
      cl.state = ClientState::State::idle;
      ++admission_retries_;
      net.schedule(cl.node, spec_.retry_after,
                   [this, i] { join_client(i); });
      return;
    }
    if (!r.value().ok) {
      cl.state = ClientState::State::idle;
      if (r.value().admission != proto::AdmissionError::none) {
        // Typed admission rejection: honour the server's retry-after.
        ++admission_rejected_seen_;
        ++admission_retries_;
        net.schedule(cl.node, r.value().retry_after,
                     [this, i] { join_client(i); });
      }
      return;
    }
    cl.state = ClientState::State::selecting;
    cl.client->select_app(
        app_id_, [this, i](util::Result<proto::SelectAppReply> r2) {
          ClientState& cl = clients_[i];
          net::SimNetwork& net = scenario_->net();
          if (!r2.ok() || !r2.value().ok) {
            cl.state = ClientState::State::idle;
            const bool admission =
                r2.ok() &&
                r2.value().admission != proto::AdmissionError::none;
            if (admission) ++admission_rejected_seen_;
            ++admission_retries_;
            const util::Duration delay =
                admission ? r2.value().retry_after : spec_.retry_after;
            net.schedule(cl.node, delay, [this, i] { join_client(i); });
            return;
          }
          cl.state = ClientState::State::active;
          net.schedule(cl.node, cl.poll_period, [this, i] { poll_tick(i); });
          if (cl.collab) {
            net.schedule(cl.node, spec_.mix.collab_period,
                         [this, i] { collab_tick(i); });
          }
          if (cl.steerer) {
            cl.client->acquire_lock(app_id_,
                                    [](util::Result<proto::CommandAck>) {});
            net.schedule(cl.node, spec_.mix.steer_period,
                         [this, i] { steer_tick(i); });
          }
        });
  });
}

void ScenarioEngine::leave_client(std::size_t i, bool rejoin) {
  ClientState& cl = clients_[i];
  if (cl.state != ClientState::State::active) return;
  net::SimNetwork& net = scenario_->net();
  cl.state = rejoin ? ClientState::State::idle : ClientState::State::retired;
  cl.client->logout([](util::Result<proto::CollabAck>) {});
  if (rejoin) {
    // Churn: the client comes straight back (reconnect storm).
    net.schedule(cl.node, util::milliseconds(100),
                 [this, i] { join_client(i); });
    // Transitional: mark busy so a racing join slot cannot double-claim.
    cl.state = ClientState::State::logging_in;
    net.schedule(cl.node, util::milliseconds(99), [this, i] {
      clients_[i].state = ClientState::State::idle;
    });
  }
}

void ScenarioEngine::poll_tick(std::size_t i) {
  ClientState& cl = clients_[i];
  if (cl.state != ClientState::State::active) return;
  net::SimNetwork& net = scenario_->net();
  const util::TimePoint t0 = net.now();
  cl.client->poll(app_id_, [this, i, t0](util::Result<proto::PollReply> r) {
    ClientState& cl = clients_[i];
    net::SimNetwork& net = scenario_->net();
    if (cl.state != ClientState::State::active) return;
    if (r.ok() && !r.value().ok) {
      // Session gone server-side: the disconnect overflow policy (or an
      // idle sweep) bounced us.  Re-login from scratch.
      ++sessions_lost_;
      cl.state = ClientState::State::idle;
      net.schedule(cl.node, spec_.retry_after,
                   [this, i] { join_client(i); });
      return;
    }
    if (r.ok()) {
      ++polls_;
      poll_latency_.record(net.now() - t0);
    }
    // Transport failures (partition) keep the cadence: poll-and-pull
    // clients just try again next period.
    net.schedule(cl.node, cl.poll_period, [this, i] { poll_tick(i); });
  });
}

void ScenarioEngine::collab_tick(std::size_t i) {
  ClientState& cl = clients_[i];
  if (cl.state != ClientState::State::active) return;
  net::SimNetwork& net = scenario_->net();
  cl.client->post_collab(app_id_, proto::EventKind::chat,
                         "hi from u" + std::to_string(i),
                         [](util::Result<proto::CollabAck>) {});
  net.schedule(cl.node, spec_.mix.collab_period,
               [this, i] { collab_tick(i); });
}

void ScenarioEngine::steer_tick(std::size_t i) {
  ClientState& cl = clients_[i];
  if (cl.state != ClientState::State::active) return;
  net::SimNetwork& net = scenario_->net();
  ++cl.steer_ticks;
  cl.client->set_param(app_id_, "param_0",
                       1.0 + 0.01 * static_cast<double>(cl.steer_ticks),
                       [](util::Result<proto::CommandAck>) {});
  net.schedule(cl.node, spec_.mix.steer_period, [this, i] { steer_tick(i); });
}

void ScenarioEngine::run_phase(const PhaseSpec& phase) {
  net::SimNetwork& net = scenario_->net();
  if (servers_.size() > 1) {
    if (phase.partition && !partitioned_) {
      scenario_->partition(*servers_[0], *servers_[1]);
      partitioned_ = true;
    }
    if (phase.heal && partitioned_) {
      scenario_->heal(*servers_[0], *servers_[1]);
      partitioned_ = false;
    }
  }
  const net::NodeId anchor = servers_[0]->node();

  // Joins claim not-yet-enlisted clients, spread across the phase.
  std::uint32_t scheduled = 0;
  for (std::size_t i = 0;
       i < clients_.size() && scheduled < phase.join; ++i) {
    if (clients_[i].enlisted) continue;
    clients_[i].enlisted = true;
    const util::Duration at =
        phase.duration * static_cast<std::int64_t>(scheduled) /
        static_cast<std::int64_t>(phase.join);
    net.schedule(clients_[i].node, at, [this, i] { join_client(i); });
    ++scheduled;
  }

  // Leave/churn slots pick whichever client is active when they fire.
  const std::uint32_t slots = phase.leave + phase.churn;
  for (std::uint32_t k = 0; k < slots; ++k) {
    const bool rejoin = k >= phase.leave;
    const util::Duration at = phase.duration * static_cast<std::int64_t>(k) /
                              static_cast<std::int64_t>(slots);
    net.schedule(anchor, at, [this, rejoin] {
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        if (clients_[i].state == ClientState::State::active) {
          leave_client(i, rejoin);
          return;
        }
      }
    });
  }

  scenario_->run_for(phase.duration);
}

ScenarioMetrics ScenarioEngine::collect() {
  ScenarioMetrics m;
  m.name = spec_.name;
  m.clients = spec_.total_clients;
  m.polls = polls_;
  m.poll_p50_ns = poll_latency_.percentile(0.50);
  m.poll_p95_ns = poll_latency_.percentile(0.95);
  m.poll_p99_ns = poll_latency_.percentile(0.99);
  m.admission_rejected_seen = admission_rejected_seen_;
  m.admission_retries = admission_retries_;
  m.sessions_lost = sessions_lost_;
  for (const ClientState& cl : clients_) {
    m.events_received += cl.client->events_received();
    m.resync_seen += cl.client->events_of_kind(proto::EventKind::resync);
  }
  for (const core::DiscoverServer* s : servers_) {
    const core::ServerStats& st = s->stats();
    m.events_delivered += st.events_delivered;
    m.events_shed += st.events_dropped;
    m.resync_markers += st.resync_markers;
    m.overflow_disconnects += st.overflow_disconnects;
    m.admission_rejected_logins += st.admission_rejected_logins;
    m.admission_rejected_selects += st.admission_rejected_selects;
    m.peak_fifo_backlog =
        std::max(m.peak_fifo_backlog, st.peak_fifo_backlog);
    m.peak_fifo_backlog_bytes =
        std::max(m.peak_fifo_backlog_bytes, st.peak_fifo_backlog_bytes);
    m.final_fifo_backlog += s->total_fifo_backlog();
    for (const auto& [key, value] : s->metrics().monitoring_map()) {
      m.server_metrics[key] += value;
    }
  }
  return m;
}

ScenarioMetrics ScenarioEngine::run() {
  setup();
  for (const PhaseSpec& phase : spec_.phases) run_phase(phase);
  return collect();
}

// ---------------------------------------------------------------------------
// Canned suite
// ---------------------------------------------------------------------------

ScenarioSpec flash_crowd_spec(std::uint32_t clients, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "flash_crowd";
  s.servers = 1;
  s.total_clients = clients;
  s.seed = seed;
  s.max_sessions = std::max<std::size_t>(1, clients * 3 / 4);
  s.retry_after = util::milliseconds(500);
  s.mix.poll_period = util::milliseconds(80);
  s.app_step = util::milliseconds(10);
  // Burst: everyone converges on the server inside 300ms; a quarter bounce
  // off admission control and retry.  The release phase frees capacity so
  // retries eventually land.
  s.phases = {
      PhaseSpec{"burst", util::milliseconds(300), clients, 0, 0, false,
                false},
      PhaseSpec{"sustain", util::milliseconds(1500), 0, 0, 0, false, false},
      PhaseSpec{"release", util::milliseconds(800), 0, clients / 3, 0, false,
                false},
      PhaseSpec{"recover", util::milliseconds(1500), 0, 0, 0, false, false},
  };
  return s;
}

ScenarioSpec churn_storm_spec(std::uint32_t clients, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "churn_storm";
  s.servers = 1;
  s.total_clients = clients;
  s.seed = seed;
  s.mix.poll_period = util::milliseconds(60);
  s.app_step = util::milliseconds(5);
  s.phases = {
      PhaseSpec{"ramp", util::milliseconds(500), clients, 0, 0, false,
                false},
      PhaseSpec{"storm", util::milliseconds(2000), 0, 0, clients * 3 / 4,
                false, false},
      PhaseSpec{"settle", util::milliseconds(1000), 0, 0, 0, false, false},
  };
  return s;
}

ScenarioSpec slow_poll_swarm_spec(std::uint32_t clients, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "slow_poll_swarm";
  s.servers = 1;
  s.total_clients = clients;
  s.seed = seed;
  s.fifo_cap = 64;
  s.fifo_max_bytes = 64 * 1024;
  s.overflow = core::FifoOverflowPolicy::shed_oldest;
  s.mix.slow_poll_fraction = 0.5;
  s.mix.poll_period = util::milliseconds(60);
  s.mix.slow_poll_period = util::milliseconds(900);
  s.app_step = util::milliseconds(2);  // sustained fan-out: 500 updates/s
  s.phases = {
      PhaseSpec{"ramp", util::milliseconds(400), clients, 0, 0, false,
                false},
      PhaseSpec{"sustain", util::milliseconds(3000), 0, 0, 0, false, false},
  };
  return s;
}

ScenarioSpec partition_mix_spec(std::uint32_t clients, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "partition_mix";
  s.servers = 2;
  s.total_clients = clients;
  s.seed = seed;
  s.mix.poll_period = util::milliseconds(80);
  s.mix.collab_fraction = 0.25;
  s.mix.collab_period = util::milliseconds(300);
  s.mix.steerers = 2;
  s.mix.steer_period = util::milliseconds(250);
  s.app_step = util::milliseconds(5);
  s.phases = {
      PhaseSpec{"ramp", util::milliseconds(600), clients, 0, 0, false,
                false},
      PhaseSpec{"coexist", util::milliseconds(1000), 0, 0, 0, false, false},
      PhaseSpec{"partition", util::milliseconds(1200), 0, 0, 0, true, false},
      PhaseSpec{"heal", util::milliseconds(1500), 0, 0, 0, false, true},
  };
  return s;
}

std::vector<ScenarioSpec> scenario_suite(std::uint32_t clients,
                                         std::uint64_t seed) {
  return {flash_crowd_spec(clients, seed), churn_storm_spec(clients, seed),
          slow_poll_swarm_spec(clients, seed),
          partition_mix_spec(clients, seed)};
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

std::string scenario_metrics_json(const std::vector<ScenarioMetrics>& all) {
  std::string out = "{\n  \"scenarios\": [\n";
  char buf[256];
  for (std::size_t i = 0; i < all.size(); ++i) {
    const ScenarioMetrics& m = all[i];
    out += "    {\n";
    out += "      \"name\": \"" + m.name + "\",\n";
    const auto field = [&](const char* key, std::uint64_t v, bool last) {
      std::snprintf(buf, sizeof(buf), "      \"%s\": %llu%s\n", key,
                    static_cast<unsigned long long>(v), last ? "" : ",");
      out += buf;
    };
    field("clients", m.clients, false);
    field("polls", m.polls, false);
    field("poll_p50_ns", static_cast<std::uint64_t>(m.poll_p50_ns), false);
    field("poll_p95_ns", static_cast<std::uint64_t>(m.poll_p95_ns), false);
    field("poll_p99_ns", static_cast<std::uint64_t>(m.poll_p99_ns), false);
    field("events_received", m.events_received, false);
    field("resync_seen", m.resync_seen, false);
    field("admission_rejected_seen", m.admission_rejected_seen, false);
    field("admission_retries", m.admission_retries, false);
    field("sessions_lost", m.sessions_lost, false);
    field("events_delivered", m.events_delivered, false);
    field("events_shed", m.events_shed, false);
    field("resync_markers", m.resync_markers, false);
    field("overflow_disconnects", m.overflow_disconnects, false);
    field("admission_rejected_logins", m.admission_rejected_logins, false);
    field("admission_rejected_selects", m.admission_rejected_selects,
          false);
    field("peak_fifo_backlog", m.peak_fifo_backlog, false);
    field("peak_fifo_backlog_bytes", m.peak_fifo_backlog_bytes, false);
    field("final_fifo_backlog", m.final_fifo_backlog, false);
    out += "      \"server_metrics\": {\n";
    std::size_t k = 0;
    for (const auto& [key, value] : m.server_metrics) {
      std::snprintf(buf, sizeof(buf), "        \"%s\": %lld%s\n", key.c_str(),
                    static_cast<long long>(value),
                    ++k < m.server_metrics.size() ? "," : "");
      out += buf;
    }
    out += "      }\n";
    out += i + 1 < all.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace discover::workload
