// Declarative flash-crowd / churn scenario suite (see DESIGN.md
// "Backpressure & the scenario DSL").
//
// A ScenarioSpec describes a whole experiment: the topology (servers, one
// hot application), the client behaviour mix (poll cadences, collab
// posters, steerers), the server backpressure knobs under test (FIFO
// bounds, overflow policy, admission caps) and a list of phases — ramp,
// burst, churn, partition — each joining/leaving/cycling some clients over
// a duration.  ScenarioEngine drives the spec over a SimNetwork entirely
// through client-node timers, so a (spec, seed) pair replays byte-identical
// metrics on every run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.h"
#include "workload/scenario.h"

namespace discover::workload {

/// How the scenario's client population behaves while active.
struct ClientMix {
  /// Fraction of clients polling at slow_poll_period instead of
  /// poll_period (the §6.2 "slow client" population).
  double slow_poll_fraction = 0.0;
  util::Duration poll_period = util::milliseconds(50);
  util::Duration slow_poll_period = util::milliseconds(800);
  /// Fraction of clients posting a chat line every collab_period.
  double collab_fraction = 0.0;
  util::Duration collab_period = util::milliseconds(400);
  /// The first `steerers` clients acquire the lock and steer a parameter
  /// every steer_period.
  std::uint32_t steerers = 0;
  util::Duration steer_period = util::milliseconds(300);
};

/// One phase of the scenario timeline.  Joins/leaves/churns are spread
/// deterministically across the phase duration.
struct PhaseSpec {
  std::string name;
  util::Duration duration = util::seconds(1);
  std::uint32_t join = 0;   // inactive clients brought online
  std::uint32_t leave = 0;  // active clients logged out for good
  std::uint32_t churn = 0;  // active clients logged out + rejoined
  bool partition = false;   // cut server[0] <-> server[1] at phase start
  bool heal = false;        // heal the same cut at phase start
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint32_t servers = 1;  // clients beyond the first attach round-robin
  std::uint32_t total_clients = 100;
  std::uint64_t seed = 1;
  ClientMix mix;
  std::vector<PhaseSpec> phases;

  /// Hot application shape (hosted by server[0]).
  util::Duration app_step = util::milliseconds(5);
  std::uint32_t update_every = 1;  // AppUpdate every N steps

  /// Server backpressure under test.
  std::size_t fifo_cap = 256;
  std::size_t fifo_max_bytes = 0;
  core::FifoOverflowPolicy overflow = core::FifoOverflowPolicy::shed_oldest;
  std::size_t max_sessions = 0;          // per server; 0 = unlimited
  std::size_t max_sessions_per_app = 0;  // 0 = unlimited
  util::Duration retry_after = util::seconds(1);

  /// Observability knobs (bench_observe sweeps these to price tracing):
  /// trace_sample_every 0 disables request tracing, 1 traces every root,
  /// N traces the first root of each stride; stage_sample_every gates the
  /// per-stage latency histograms the same way.
  std::uint64_t trace_sample_every = 16;
  std::uint64_t stage_sample_every = 1;
};

/// Everything a scenario run reports.  Defaulted equality backs the
/// determinism test: two runs of the same (spec, seed) must compare equal.
struct ScenarioMetrics {
  std::string name;
  std::uint64_t clients = 0;
  // Client-side poll round trips (sim time).
  std::uint64_t polls = 0;
  std::int64_t poll_p50_ns = 0;
  std::int64_t poll_p95_ns = 0;
  std::int64_t poll_p99_ns = 0;
  std::uint64_t events_received = 0;
  std::uint64_t resync_seen = 0;  // resync markers observed by clients
  // Client-side admission/lifecycle.
  std::uint64_t admission_rejected_seen = 0;  // rejections observed
  std::uint64_t admission_retries = 0;        // re-login/select attempts
  std::uint64_t sessions_lost = 0;  // active clients bounced (disconnect)
  // Server-side aggregates (summed / maxed across servers).
  std::uint64_t events_delivered = 0;
  std::uint64_t events_shed = 0;
  std::uint64_t resync_markers = 0;
  std::uint64_t overflow_disconnects = 0;
  std::uint64_t admission_rejected_logins = 0;
  std::uint64_t admission_rejected_selects = 0;
  std::uint64_t peak_fifo_backlog = 0;        // max over servers
  std::uint64_t peak_fifo_backlog_bytes = 0;  // max over servers
  std::uint64_t final_fifo_backlog = 0;       // sum at run end
  // Full MetricsRegistry snapshot, summed across servers (same flat map the
  // monitoring push reports).  Being part of the defaulted equality, the
  // determinism test covers every registered counter/gauge/histogram too.
  std::map<std::string, std::int64_t> server_metrics;

  friend bool operator==(const ScenarioMetrics&,
                         const ScenarioMetrics&) = default;
};

/// Runs one ScenarioSpec start-to-finish on a fresh SimNetwork.
class ScenarioEngine {
 public:
  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  /// Executes every phase and returns the collected metrics.  One-shot:
  /// build a fresh engine to run again.
  ScenarioMetrics run();

  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] const util::LatencyHistogram& poll_latency() const {
    return poll_latency_;
  }

 private:
  struct ClientState;

  void setup();
  void run_phase(const PhaseSpec& phase);
  void join_client(std::size_t i);
  void leave_client(std::size_t i, bool rejoin);
  void poll_tick(std::size_t i);
  void collab_tick(std::size_t i);
  void steer_tick(std::size_t i);
  ScenarioMetrics collect();

  ScenarioSpec spec_;
  std::unique_ptr<Scenario> scenario_;
  std::vector<core::DiscoverServer*> servers_;
  app::SyntheticApp* app_ = nullptr;
  proto::AppId app_id_;
  std::vector<ClientState> clients_;
  util::LatencyHistogram poll_latency_;
  std::uint64_t polls_ = 0;
  std::uint64_t admission_rejected_seen_ = 0;
  std::uint64_t admission_retries_ = 0;
  std::uint64_t sessions_lost_ = 0;
  bool partitioned_ = false;
};

// Canned scenario specs (the four suite members).  `clients` scales the
// population so the same shapes serve both the smoke tier and the full
// 10k-client sweep.
ScenarioSpec flash_crowd_spec(std::uint32_t clients, std::uint64_t seed = 1);
ScenarioSpec churn_storm_spec(std::uint32_t clients, std::uint64_t seed = 1);
ScenarioSpec slow_poll_swarm_spec(std::uint32_t clients,
                                  std::uint64_t seed = 1);
ScenarioSpec partition_mix_spec(std::uint32_t clients, std::uint64_t seed = 1);

/// All four, in suite order.
std::vector<ScenarioSpec> scenario_suite(std::uint32_t clients,
                                         std::uint64_t seed = 1);

/// BENCH_scenarios.json payload (no timestamps: byte-identical per seed).
std::string scenario_metrics_json(const std::vector<ScenarioMetrics>& all);

}  // namespace discover::workload
