// Deterministic simulation scenarios: N domains x M servers, a registry
// node hosting the naming + trader services, applications and portal
// clients — wired onto a SimNetwork with LAN/WAN link models.  This is the
// harness behind the integration tests and the topology experiments
// (E4-E8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "core/client.h"
#include "core/server.h"
#include "net/sim_network.h"
#include "orb/naming.h"
#include "orb/trader.h"

namespace discover::workload {

struct ScenarioConfig {
  net::LinkModel lan{util::microseconds(200), 125e6};   // ~1 Gb/s, 0.2 ms
  net::LinkModel wan{util::milliseconds(20), 12.5e6};   // ~100 Mb/s, 20 ms
  core::ServerConfig server_template;

  // Fault knobs (chaos scenarios): seeded drop/duplicate/jitter plans for
  // intra-domain and cross-domain links.  Defaults are all-zero: faults
  // off, legacy deterministic behaviour.
  net::FaultPlan lan_faults{};
  net::FaultPlan wan_faults{};
  std::uint64_t fault_seed = 0x5eedULL;
};

/// Registry host: a node whose only job is running the shared naming and
/// trader servants (the "well-known initial reference" of the deployment).
class RegistryNode final : public net::MessageHandler {
 public:
  explicit RegistryNode(net::Network& network);
  void attach(net::NodeId self);
  void on_message(const net::Message& msg) override;

  [[nodiscard]] orb::ObjectRef naming_ref() const { return naming_ref_; }
  [[nodiscard]] orb::ObjectRef trader_ref() const { return trader_ref_; }
  [[nodiscard]] orb::Orb& orb() { return *orb_; }

 private:
  net::Network& network_;
  std::unique_ptr<orb::Orb> orb_;
  orb::ObjectRef naming_ref_;
  orb::ObjectRef trader_ref_;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});

  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] RegistryNode& registry() { return *registry_; }

  /// Adds a DISCOVER server in `domain`, attached, registry-wired, started.
  core::DiscoverServer& add_server(const std::string& name,
                                   std::uint32_t domain);
  /// Adds a standalone server with a customized config.
  core::DiscoverServer& add_server(const std::string& name,
                                   std::uint32_t domain,
                                   core::ServerConfig config);

  /// Adds any SteerableApp subclass co-located with `server` and connects
  /// it.  The app node joins the server's domain.
  template <typename App, typename... Args>
  App& add_app(core::DiscoverServer& server, app::AppConfig config,
               Args&&... args) {
    auto owned = std::make_unique<App>(net_, std::move(config),
                                       std::forward<Args>(args)...);
    App& ref = *owned;
    const net::NodeId node =
        net_.add_node("app:" + ref.config().name, owned.get(),
                      net_.node_domain(server.node()));
    ref.attach(node);
    ref.connect(server.node());
    apps_.push_back(std::move(owned));
    return ref;
  }

  /// Adds a portal client in the same domain as `server`, pointed at it.
  core::DiscoverClient& add_client(const std::string& user,
                                   core::DiscoverServer& server,
                                   core::ClientConfig config = {});
  /// Same, but places the client in an explicit domain (e.g. a remote site
  /// reaching a central server over the WAN).
  core::DiscoverClient& add_client_in_domain(const std::string& user,
                                             core::DiscoverServer& server,
                                             std::uint32_t domain,
                                             core::ClientConfig config = {});

  /// Runs until `pred` holds or `max_sim_time` elapses; true iff pred held.
  bool run_until(const std::function<bool()>& pred,
                 util::Duration max_sim_time = util::seconds(60));
  void run_for(util::Duration d) { net_.run_for(d); }

  /// Cuts / restores all traffic between two servers' domains (chaos
  /// scenarios; both directions).
  void partition(core::DiscoverServer& a, core::DiscoverServer& b) {
    net_.partition_domains(net_.node_domain(a.node()),
                           net_.node_domain(b.node()));
  }
  void heal(core::DiscoverServer& a, core::DiscoverServer& b) {
    net_.heal_domains(net_.node_domain(a.node()),
                      net_.node_domain(b.node()));
  }

  [[nodiscard]] const std::vector<std::unique_ptr<core::DiscoverServer>>&
  servers() const {
    return servers_;
  }

 private:
  ScenarioConfig config_;
  net::SimNetwork net_;
  std::unique_ptr<RegistryNode> registry_;
  std::vector<std::unique_ptr<core::DiscoverServer>> servers_;
  std::vector<std::unique_ptr<app::SteerableApp>> apps_;
  std::vector<std::unique_ptr<core::DiscoverClient>> clients_;
};

/// Convenience ACL construction.
std::vector<security::AclEntry> make_acl(
    std::initializer_list<std::pair<const char*, security::Privilege>> users);

}  // namespace discover::workload
