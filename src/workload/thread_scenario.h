// Real-time scenarios on the ThreadNetwork backend: one OS thread per node,
// wall-clock latencies.  Drives the saturation experiments (E1-E3).
// All nodes must be added before start().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "core/client.h"
#include "core/server.h"
#include "net/thread_network.h"
#include "workload/scenario.h"  // RegistryNode

namespace discover::workload {

class ThreadScenario {
 public:
  explicit ThreadScenario(core::ServerConfig server_template = {});
  ~ThreadScenario();

  [[nodiscard]] net::ThreadNetwork& net() { return net_; }

  core::DiscoverServer& add_server(const std::string& name,
                                   std::uint32_t domain = 1);
  core::DiscoverClient& add_client(const std::string& user,
                                   core::DiscoverServer& server,
                                   core::ClientConfig config = {});

  template <typename App, typename... Args>
  App& add_app(core::DiscoverServer& server, app::AppConfig config,
               Args&&... args) {
    auto owned = std::make_unique<App>(net_, std::move(config),
                                       std::forward<Args>(args)...);
    App& ref = *owned;
    const net::NodeId node =
        net_.add_node("app:" + ref.config().name, owned.get(),
                      net_.node_domain(server.node()));
    ref.attach(node);
    pending_connects_.emplace_back(&ref, server.node());
    apps_.push_back(std::move(owned));
    return ref;
  }

  /// Starts the worker threads, then issues the queued app connects.
  void start();
  void stop();

 private:
  core::ServerConfig server_template_;
  net::ThreadNetwork net_;
  std::unique_ptr<RegistryNode> registry_;
  std::vector<std::unique_ptr<core::DiscoverServer>> servers_;
  std::vector<std::unique_ptr<app::SteerableApp>> apps_;
  std::vector<std::unique_ptr<core::DiscoverClient>> clients_;
  std::vector<std::pair<app::SteerableApp*, net::NodeId>> pending_connects_;
  bool started_ = false;
};

}  // namespace discover::workload
