// Synchronous wrappers over the async portal API for tests, examples and
// benches.  Works on both backends: on a SimNetwork the wait pumps the
// event loop; on a ThreadNetwork it sleep-polls while workers make
// progress.
#pragma once

#include <atomic>
#include <functional>
#include <optional>

#include "core/client.h"
#include "net/network.h"

namespace discover::workload {

/// Advances the world until `done` holds.  Returns false on timeout.
bool wait_for(net::Network& network, const std::function<bool()>& done,
              util::Duration timeout = util::seconds(30));

util::Result<proto::LoginReply> sync_login(
    net::Network& network, core::DiscoverClient& client,
    util::Duration timeout = util::seconds(30));

util::Result<proto::SelectAppReply> sync_select(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, util::Duration timeout = util::seconds(30));

util::Result<proto::CommandAck> sync_command(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, proto::CommandKind kind,
    const std::string& param = "", const proto::ParamValue& value = {},
    util::Duration timeout = util::seconds(30));

util::Result<proto::PollReply> sync_poll(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, util::Duration timeout = util::seconds(30));

util::Result<proto::HistoryReply> sync_history(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, std::uint64_t from_seq, std::uint32_t max,
    util::Duration timeout = util::seconds(30));

util::Result<proto::CollabAck> sync_collab_post(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, proto::EventKind kind, const std::string& text,
    util::Duration timeout = util::seconds(30));

util::Result<proto::CollabAck> sync_group_op(
    net::Network& network, core::DiscoverClient& client,
    const proto::AppId& app, proto::GroupOp op, const std::string& subgroup,
    util::Duration timeout = util::seconds(30));

/// Full onboarding: login, select, acquire the steering lock, wait for the
/// grant notice.  Returns false if any step fails.
bool sync_onboard_steerer(net::Network& network, core::DiscoverClient& client,
                          const proto::AppId& app,
                          util::Duration timeout = util::seconds(30));

}  // namespace discover::workload
