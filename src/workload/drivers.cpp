#include "workload/drivers.h"

namespace discover::workload {

ClientDriver::ClientDriver(net::Network& network, core::DiscoverClient& client,
                           proto::AppId app, DriverConfig config)
    : network_(network), client_(client), app_(app),
      config_(std::move(config)) {}

void ClientDriver::start() {
  if (running_.exchange(true)) return;
  network_.post(client_.node(), [this] {
    client_.start_polling(app_);
    command_once();
  });
}

void ClientDriver::stop() {
  running_.store(false);
  network_.post(client_.node(), [this] { client_.stop_polling(app_); });
}

void ClientDriver::command_once() {
  if (!running_.load(std::memory_order_relaxed)) return;
  proto::ParamValue value;
  if (config_.kind == proto::CommandKind::set_param) {
    value = proto::ParamValue{
        config_.value_base +
        config_.value_step *
            static_cast<double>(commands_sent_.load(std::memory_order_relaxed))};
  }
  commands_sent_.fetch_add(1, std::memory_order_relaxed);
  client_.send_command(
      app_, config_.kind, config_.param, value,
      [this](util::Result<proto::CommandAck> r) {
        if (r.ok() && r.value().accepted) {
          acks_ok_.fetch_add(1, std::memory_order_relaxed);
        } else {
          acks_failed_.fetch_add(1, std::memory_order_relaxed);
        }
        // Issue the next command one period after the previous completion.
        network_.schedule(client_.node(), config_.command_period,
                          [this] { command_once(); });
      });
}

}  // namespace discover::workload
