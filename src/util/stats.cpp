#include "util/stats.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace discover::util {

void OnlineStats::add(double x) {
  ++count_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  total_ += other.total_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::clear() { *this = OnlineStats{}; }

OnlineStats OnlineStats::snapshot_and_reset() {
  OnlineStats out = *this;
  clear();
  return out;
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

std::size_t LatencyHistogram::bucket_of(Duration nanos) {
  if (nanos < 1) nanos = 1;
  const auto v = static_cast<std::uint64_t>(nanos);
  const int log2 = 63 - std::countl_zero(v);
  std::uint64_t sub;
  if (log2 <= kSubBits) {
    // Small values: bucket index is the value itself, exact.
    return static_cast<std::size_t>(v);
  }
  sub = (v >> (log2 - kSubBits)) & ((1u << kSubBits) - 1);
  const std::size_t idx =
      (static_cast<std::size_t>(log2) << kSubBits) + static_cast<std::size_t>(sub);
  return std::min(idx, kBuckets - 1);
}

Duration LatencyHistogram::bucket_low(std::size_t bucket) {
  const std::size_t log2 = bucket >> kSubBits;
  const std::size_t sub = bucket & ((1u << kSubBits) - 1);
  if (log2 <= kSubBits) return static_cast<Duration>(bucket);
  return static_cast<Duration>(((1ULL << kSubBits) + sub)
                               << (log2 - kSubBits));
}

Duration LatencyHistogram::bucket_high(std::size_t bucket) {
  const std::size_t log2 = bucket >> kSubBits;
  if (log2 <= kSubBits) return static_cast<Duration>(bucket);
  return bucket_low(bucket) + (static_cast<Duration>(1) << (log2 - kSubBits)) - 1;
}

void LatencyHistogram::record(Duration nanos) {
  if (nanos < 0) nanos = 0;
  ++buckets_[bucket_of(nanos)];
  ++count_;
  sum_ += static_cast<double>(nanos);
  min_ = std::min(min_, nanos);
  max_ = std::max(max_, nanos);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Duration LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] > target) {
      // Interpolate linearly inside the bucket.
      const double frac = buckets_[i] > 1
                              ? static_cast<double>(target - seen) /
                                    static_cast<double>(buckets_[i] - 1)
                              : 0.0;
      const auto lo = bucket_low(i);
      const auto hi = std::min(bucket_high(i), max_);
      return lo + static_cast<Duration>(frac * static_cast<double>(hi - lo));
    }
    seen += buckets_[i];
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "p50=%s p95=%s p99=%s max=%s (n=%llu)",
                format_duration(percentile(0.50)).c_str(),
                format_duration(percentile(0.95)).c_str(),
                format_duration(percentile(0.99)).c_str(),
                format_duration(max()).c_str(),
                static_cast<unsigned long long>(count_));
  return buf;
}

void LatencyHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<Duration>::max();
  max_ = 0;
}

LatencyHistogram LatencyHistogram::snapshot_and_reset() {
  LatencyHistogram out = *this;
  clear();
  return out;
}

std::string format_duration(Duration d) {
  char buf[48];
  const double v = static_cast<double>(d);
  if (d < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  } else if (d < 10 * kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v / kMicrosecond);
  } else if (d < 10 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / kSecond);
  }
  return buf;
}

std::string format_bytes(std::uint64_t n) {
  char buf[48];
  if (n < 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(n));
  } else if (n < 10ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB", static_cast<double>(n) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(n) / (1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace discover::util
