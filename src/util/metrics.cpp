#include "util/metrics.h"

#include <cstdio>

namespace discover::util {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

}  // namespace

ShardedCounter::ShardedCounter(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards),
      slots_(std::make_unique<Slot[]>(shards_)) {}

std::uint64_t ShardedCounter::value() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards_; ++i) {
    total += slots_[i].value.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name].owned;
}

void MetricsRegistry::register_counter(const std::string& name,
                                       const std::uint64_t* value) {
  counters_[name].external = value;
}

ShardedCounter& MetricsRegistry::sharded_counter(const std::string& name,
                                                 std::size_t shards) {
  CounterSlot& slot = counters_[name];
  if (!slot.sharded) slot.sharded = std::make_unique<ShardedCounter>(shards);
  return *slot.sharded;
}

void MetricsRegistry::register_gauge(const std::string& name,
                                     std::function<std::int64_t()> sample) {
  gauges_[name] = std::move(sample);
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name].owned;
}

void MetricsRegistry::register_histogram(const std::string& name,
                                         const LatencyHistogram* hist) {
  histograms_[name].external = hist;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, slot] : counters_) {
    snap.counters[name] = slot.value();
  }
  for (const auto& [name, sample] : gauges_) snap.gauges[name] = sample();
  for (const auto& [name, slot] : histograms_) {
    snap.histograms[name] = slot.get();
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::merge(
    const std::vector<Snapshot>& parts) {
  Snapshot out;
  for (const Snapshot& part : parts) {
    for (const auto& [name, v] : part.counters) out.counters[name] += v;
    for (const auto& [name, v] : part.gauges) out.gauges[name] += v;
    for (const auto& [name, h] : part.histograms) {
      out.histograms[name].merge(h);
    }
  }
  return out;
}

std::string MetricsRegistry::render_prometheus(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    append_i64(out, value);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "# TYPE " + name + " summary\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          std::pair<const char*, double>{"0.95", 0.95},
          std::pair<const char*, double>{"0.99", 0.99}}) {
      out += name + "{quantile=\"" + label + "\"} ";
      append_u64(out, static_cast<std::uint64_t>(h.percentile(q)));
      out += "\n";
    }
    out += name + "_sum ";
    append_u64(out, static_cast<std::uint64_t>(
                        h.mean_ns() * static_cast<double>(h.count())));
    out += "\n";
    out += name + "_count ";
    append_u64(out, h.count());
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::render_json(const Snapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_u64(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_i64(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    append_u64(out, h.count());
    out += ", \"p50_ns\": ";
    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.50)));
    out += ", \"p95_ns\": ";
    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.95)));
    out += ", \"p99_ns\": ";
    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.99)));
    out += ", \"max_ns\": ";
    append_u64(out, static_cast<std::uint64_t>(h.max()));
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  return render_prometheus(snapshot());
}

std::string MetricsRegistry::json() const { return render_json(snapshot()); }

std::map<std::string, std::int64_t> MetricsRegistry::monitoring_map() const {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, slot] : counters_) {
    out[name] = static_cast<std::int64_t>(slot.value());
  }
  for (const auto& [name, sample] : gauges_) out[name] = sample();
  for (const auto& [name, slot] : histograms_) {
    const LatencyHistogram& h = slot.get();
    out[name + "_count"] = static_cast<std::int64_t>(h.count());
    out[name + "_p95_ns"] = static_cast<std::int64_t>(h.percentile(0.95));
  }
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::monitoring_map(
    const Snapshot& snap) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] : snap.counters) {
    out[name] = static_cast<std::int64_t>(value);
  }
  for (const auto& [name, value] : snap.gauges) out[name] = value;
  for (const auto& [name, h] : snap.histograms) {
    out[name + "_count"] = static_cast<std::int64_t>(h.count());
    out[name + "_p95_ns"] = static_cast<std::int64_t>(h.percentile(0.95));
  }
  return out;
}

MetricsRegistry::IntervalSnapshot MetricsRegistry::take_interval() {
  IntervalSnapshot snap;
  for (auto& [name, slot] : counters_) {
    const std::uint64_t now = slot.value();
    snap.counter_deltas[name] = now - slot.last_interval;
    slot.last_interval = now;
  }
  for (auto& [name, slot] : histograms_) {
    if (slot.external) continue;  // cumulative; owner controls reset
    snap.histograms[name] = slot.owned.snapshot_and_reset();
  }
  return snap;
}

}  // namespace discover::util
