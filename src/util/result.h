// Minimal expected-style error handling.
//
// Middleware-internal failures (auth denied, unknown application, lock held,
// malformed frame, ...) are data, not exceptional control flow: they cross
// the wire as Error messages.  Result<T> keeps that explicit.
#pragma once

#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace discover::util {

enum class Errc {
  ok = 0,
  invalid_argument,
  not_found,
  already_exists,
  permission_denied,
  unauthenticated,
  unavailable,
  timeout,
  resource_exhausted,
  failed_precondition,
  conflict,
  protocol_error,
  internal,
};

const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::internal;
  std::string message;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code == b.code && a.message == b.message;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Error& e) {
  return os << errc_name(e.code) << ": " << e.message;
}

/// Either a value or an Error.  `ok()` must be checked before `value()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(implicit)
  Result(Errc code, std::string message)
      : data_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations without a payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(Errc code, std::string message)
      : error_{code, std::move(message)}, failed_(true) {}

  static Status ok_status() { return Status(); }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace discover::util
