// Strong integral id types.
//
// The middleware juggles many kinds of numeric identifiers (nodes, ports,
// sessions, applications, clients, locks, request correlations).  Mixing
// them up silently is a classic source of distributed-systems bugs, so every
// identifier gets its own non-convertible type.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace discover::util {

/// A non-convertible wrapper around an integral value.  Two StrongIds with
/// different Tag types never compare or convert to each other.
template <typename Tag, typename T = std::uint64_t>
class StrongId {
 public:
  using value_type = T;

  constexpr StrongId() = default;
  constexpr explicit StrongId(T value) : value_(value) {}

  [[nodiscard]] constexpr T value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  T value_{};
};

}  // namespace discover::util

namespace std {
template <typename Tag, typename T>
struct hash<discover::util::StrongId<Tag, T>> {
  size_t operator()(discover::util::StrongId<Tag, T> id) const noexcept {
    return std::hash<T>{}(id.value());
  }
};
}  // namespace std
