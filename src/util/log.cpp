#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace discover::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %-14s %s\n", level_name(level), component.c_str(),
               message.c_str());
}
}  // namespace detail

}  // namespace discover::util
