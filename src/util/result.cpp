#include "util/result.h"

namespace discover::util {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::permission_denied: return "permission_denied";
    case Errc::unauthenticated: return "unauthenticated";
    case Errc::unavailable: return "unavailable";
    case Errc::timeout: return "timeout";
    case Errc::resource_exhausted: return "resource_exhausted";
    case Errc::failed_precondition: return "failed_precondition";
    case Errc::conflict: return "conflict";
    case Errc::protocol_error: return "protocol_error";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

}  // namespace discover::util
