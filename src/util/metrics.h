// MetricsRegistry: a named catalogue of counters, gauges and latency
// histograms with deterministic text expositions.  It absorbs the flat
// per-server counter structs (core::ServerStats and friends) by holding
// *references* to externally-owned values — registration is a one-time
// setup cost and the hot paths keep bumping plain struct fields — while
// also owning counters/histograms for subsystems that have no struct of
// their own.
//
// Scrapes are off the hot path: exposition walks a std::map so output is
// sorted by metric name and byte-stable for golden tests.
//
// Sharded nodes (DESIGN.md §5i) need two extra pieces:
//  * ShardedCounter — one cache-line-padded slot per shard so concurrent
//    writers never contend (relaxed atomics, no read-modify-write races);
//    the slots are summed only at scrape time.
//  * Snapshot — a plain-data copy of every metric, taken on the owning
//    shard's thread, mergeable across shards and rendered by the same
//    byte-stable formatters the single-shard expositions use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.h"

namespace discover::util {

/// Striped counter: each writer owns one slot and bumps it with a relaxed
/// store on its own cache line, so N shards incrementing concurrently never
/// touch shared state.  value() sums the slots; callers wanting an exact
/// total must quiesce the writers first (a scrape gathered through the
/// shard queues gets the happens-before edge for free).
class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t shards);

  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  [[nodiscard]] std::size_t shards() const { return shards_; }

  void inc(std::size_t shard, std::uint64_t delta = 1) {
    // Relaxed fetch_add: exact under any writer pattern, and with one
    // writer per slot the cache line never bounces between cores.
    slots_[shard % shards_].value.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const;
  [[nodiscard]] std::uint64_t slot_value(std::size_t shard) const {
    return slots_[shard % shards_].value.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };

  std::size_t shards_;
  std::unique_ptr<Slot[]> slots_;
};

class MetricsRegistry {
 public:
  /// Owned counter, created on first use.  The returned reference stays
  /// valid for the registry's lifetime; cache it and bump it directly.
  std::uint64_t& counter(const std::string& name);

  /// Registers an externally-owned counter (e.g. a ServerStats field).
  /// The pointee must outlive the registry.
  void register_counter(const std::string& name, const std::uint64_t* value);

  /// Owned striped counter (see ShardedCounter), created on first use with
  /// `shards` slots.  Scrapes read it like any other counter (slots summed).
  ShardedCounter& sharded_counter(const std::string& name, std::size_t shards);

  /// Registers a gauge sampled at scrape time.
  void register_gauge(const std::string& name,
                      std::function<std::int64_t()> sample);

  /// Owned histogram, created on first use (unit: nanoseconds).
  LatencyHistogram& histogram(const std::string& name);

  /// Registers an externally-owned histogram (must outlive the registry).
  void register_histogram(const std::string& name,
                          const LatencyHistogram* hist);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Plain-data copy of every metric (gauges sampled now).  Take it on the
  /// thread that owns the underlying values; the copy can then cross
  /// threads freely and be merged with other shards' snapshots.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, LatencyHistogram> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Element-wise union: counters and gauges sum, histograms merge.
  static Snapshot merge(const std::vector<Snapshot>& parts);

  /// Byte-stable formatters over a snapshot.  prometheus_text()/json()
  /// below are exactly render_*(snapshot()).
  static std::string render_prometheus(const Snapshot& snap);
  static std::string render_json(const Snapshot& snap);

  /// Prometheus-style text exposition: `# TYPE` lines, counters/gauges as
  /// bare samples, histograms as summaries (quantile series + _sum/_count).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON variant of the same snapshot.
  [[nodiscard]] std::string json() const;

  /// Flat name->value map for the MONITORING push (histograms contribute
  /// `<name>_p95_ns` / `<name>_count` entries).
  [[nodiscard]] std::map<std::string, std::int64_t> monitoring_map() const;

  /// Same flattening over a snapshot — lets a sharded node push one report
  /// built from merge() of its per-core snapshots.
  static std::map<std::string, std::int64_t> monitoring_map(
      const Snapshot& snap);

  /// Interval delta since the previous call: counters as value-minus-last,
  /// owned histograms drained via snapshot_and_reset (referenced histograms
  /// are cumulative and excluded — their owner controls reset).
  struct IntervalSnapshot {
    std::map<std::string, std::uint64_t> counter_deltas;
    std::map<std::string, LatencyHistogram> histograms;
  };
  IntervalSnapshot take_interval();

 private:
  struct CounterSlot {
    std::uint64_t owned = 0;
    const std::uint64_t* external = nullptr;   // wins when set
    std::unique_ptr<ShardedCounter> sharded;   // wins over both
    std::uint64_t last_interval = 0;
    [[nodiscard]] std::uint64_t value() const {
      if (sharded) return sharded->value();
      return external ? *external : owned;
    }
  };
  struct HistogramSlot {
    LatencyHistogram owned;
    const LatencyHistogram* external = nullptr;  // wins when set
    [[nodiscard]] const LatencyHistogram& get() const {
      return external ? *external : owned;
    }
  };

  std::map<std::string, CounterSlot> counters_;
  std::map<std::string, std::function<std::int64_t()>> gauges_;
  std::map<std::string, HistogramSlot> histograms_;
};

}  // namespace discover::util
