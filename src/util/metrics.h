// MetricsRegistry: a named catalogue of counters, gauges and latency
// histograms with deterministic text expositions.  It absorbs the flat
// per-server counter structs (core::ServerStats and friends) by holding
// *references* to externally-owned values — registration is a one-time
// setup cost and the hot paths keep bumping plain struct fields — while
// also owning counters/histograms for subsystems that have no struct of
// their own.
//
// Scrapes are off the hot path: exposition walks a std::map so output is
// sorted by metric name and byte-stable for golden tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/stats.h"

namespace discover::util {

class MetricsRegistry {
 public:
  /// Owned counter, created on first use.  The returned reference stays
  /// valid for the registry's lifetime; cache it and bump it directly.
  std::uint64_t& counter(const std::string& name);

  /// Registers an externally-owned counter (e.g. a ServerStats field).
  /// The pointee must outlive the registry.
  void register_counter(const std::string& name, const std::uint64_t* value);

  /// Registers a gauge sampled at scrape time.
  void register_gauge(const std::string& name,
                      std::function<std::int64_t()> sample);

  /// Owned histogram, created on first use (unit: nanoseconds).
  LatencyHistogram& histogram(const std::string& name);

  /// Registers an externally-owned histogram (must outlive the registry).
  void register_histogram(const std::string& name,
                          const LatencyHistogram* hist);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Prometheus-style text exposition: `# TYPE` lines, counters/gauges as
  /// bare samples, histograms as summaries (quantile series + _sum/_count).
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON variant of the same snapshot.
  [[nodiscard]] std::string json() const;

  /// Flat name->value map for the MONITORING push (histograms contribute
  /// `<name>_p95_ns` / `<name>_count` entries).
  [[nodiscard]] std::map<std::string, std::int64_t> monitoring_map() const;

  /// Interval delta since the previous call: counters as value-minus-last,
  /// owned histograms drained via snapshot_and_reset (referenced histograms
  /// are cumulative and excluded — their owner controls reset).
  struct IntervalSnapshot {
    std::map<std::string, std::uint64_t> counter_deltas;
    std::map<std::string, LatencyHistogram> histograms;
  };
  IntervalSnapshot take_interval();

 private:
  struct CounterSlot {
    std::uint64_t owned = 0;
    const std::uint64_t* external = nullptr;  // wins when set
    std::uint64_t last_interval = 0;
    [[nodiscard]] std::uint64_t value() const {
      return external ? *external : owned;
    }
  };
  struct HistogramSlot {
    LatencyHistogram owned;
    const LatencyHistogram* external = nullptr;  // wins when set
    [[nodiscard]] const LatencyHistogram& get() const {
      return external ? *external : owned;
    }
  };

  std::map<std::string, CounterSlot> counters_;
  std::map<std::string, std::function<std::int64_t()>> gauges_;
  std::map<std::string, HistogramSlot> histograms_;
};

}  // namespace discover::util
