// Request-scoped tracing.  A TraceContext (trace id + span id) is minted at
// an ingress servlet, carried across HTTP in an `X-Trace-Context` header and
// across ORB calls in request-frame metadata, and every hop records the
// spans it completes into a bounded per-server ring buffer.
//
// Determinism: ids are counter-based per node (`node << 32 | seq`), never
// random, and timestamps come from the owning network's clock — under the
// Sim network two runs with the same seed produce byte-identical trace
// dumps, which the chaos/determinism suites pin.
//
// Threading: a Tracer belongs to one node.  Under the actor model a node's
// handlers run single-threaded, so the ambient `current()` context needs no
// locking; it is saved/restored with Tracer::Scope around each handler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace discover::util {

struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = not traced (unsampled or disabled)
  std::uint64_t span_id = 0;   // span the holder runs under / parent for kids
  std::uint64_t parent_span = 0;  // span_id's parent; 0 at the trace root
  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;       // e.g. "http:/discover/master", "orb:forward_events"
  std::uint32_t node = 0;  // node that recorded the span
  TimePoint start = 0;
  Duration elapsed = 0;
  std::string detail;  // free-form annotation ("app=42 events=3")
};

/// `<trace_id hex16>-<span_id hex16>-01`, the traceparent-style HTTP form.
std::string encode_trace_header(const TraceContext& ctx);
std::optional<TraceContext> parse_trace_header(std::string_view value);

class Tracer {
 public:
  /// sample_every: 0 disables tracing, 1 traces every root, N traces one
  /// root in N (the first of each stride, so short runs still trace).
  ///
  /// Sharded nodes (DESIGN.md §5i) run one Tracer per shard core under the
  /// same node id, so the counter alone no longer makes ids unique.  Each
  /// core's tracer stamps its shard index into the low `shard_bits` of the
  /// sequence field: `node << 32 | seq << shard_bits | shard_index`.  With
  /// shard_bits = 0 (every unsharded node) the layout is bit-identical to
  /// the original `node << 32 | seq`.
  void configure(std::uint32_t node, std::uint64_t sample_every,
                 std::size_t ring_capacity, std::uint32_t shard_index = 0,
                 std::uint32_t shard_bits = 0);

  [[nodiscard]] bool enabled() const { return sample_every_ != 0; }

  /// Mints a context at an ingress point.  Returns an invalid context for
  /// unsampled requests, which short-circuits all downstream trace work.
  TraceContext mint_root();

  /// New span under `parent` (same trace, fresh span id).  Invalid parent
  /// propagates as invalid.
  TraceContext child_of(const TraceContext& parent);

  /// Records a completed span; no-op when ctx is invalid.
  void record(const TraceContext& ctx, std::string name, TimePoint start,
              Duration elapsed, std::string detail = {});

  [[nodiscard]] const TraceContext& current() const { return current_; }

  /// Saves/restores the ambient context around a handler.
  class Scope {
   public:
    Scope(Tracer& tracer, const TraceContext& ctx)
        : tracer_(tracer), saved_(tracer.current_) {
      tracer_.current_ = ctx;
    }
    ~Scope() { tracer_.current_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer& tracer_;
    TraceContext saved_;
  };

  /// Spans in recording order, oldest first (ring contents only).
  [[nodiscard]] std::vector<const SpanRecord*> spans() const;
  [[nodiscard]] std::uint64_t spans_recorded() const {
    return spans_recorded_;
  }
  [[nodiscard]] std::uint64_t spans_evicted() const { return spans_evicted_; }

  /// One line per span, oldest first:
  /// `trace=<hex> span=<hex> parent=<hex> node=N name start=.. elapsed=.. detail`
  [[nodiscard]] std::string dump_text() const;
  [[nodiscard]] std::string dump_json() const;

  void clear();

 private:
  [[nodiscard]] std::uint64_t mint_id(std::uint64_t seq) const {
    return (static_cast<std::uint64_t>(node_) << 32) | (seq << shard_bits_) |
           shard_index_;
  }

  std::uint32_t node_ = 0;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_bits_ = 0;
  std::uint64_t sample_every_ = 0;
  std::size_t ring_capacity_ = 0;
  std::uint64_t root_seq_ = 0;
  std::uint64_t trace_seq_ = 0;
  std::uint64_t span_seq_ = 0;
  std::uint64_t spans_recorded_ = 0;
  std::uint64_t spans_evicted_ = 0;
  TraceContext current_;
  std::vector<SpanRecord> ring_;  // circular once full
  std::size_t ring_head_ = 0;     // next write slot
};

}  // namespace discover::util
