// Thread-safe leveled logging.
//
// Default level is `warn` so tests and benchmarks stay quiet; examples turn
// on `info` to narrate middleware operation.
#pragma once

#include <sstream>
#include <string>

namespace discover::util {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& component,
              const std::string& message);
}

/// Streams a log line: LOG(info, "server") << "client " << id << " joined";
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)),
        enabled_(level >= log_level()) {}
  ~LogStream() {
    if (enabled_) detail::log_line(level_, component_, stream_.str());
  }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace discover::util

#define DISCOVER_LOG(level, component) \
  ::discover::util::LogStream(::discover::util::LogLevel::level, (component))
