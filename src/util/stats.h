// Measurement primitives used by the benchmark harness and the servers'
// self-instrumentation (latency histograms, counters, traffic accounting).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/clock.h"

namespace discover::util {

/// Streaming mean/min/max/stddev (Welford).
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double total() const { return total_; }

  void merge(const OnlineStats& other);

  void clear();
  /// Returns the accumulated stats and resets this instance, so callers can
  /// take interval deltas (the metrics registry uses this between scrapes).
  OnlineStats snapshot_and_reset();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Latency histogram with logarithmic buckets (~4% relative resolution)
/// over [1ns, ~18s].  Percentile queries interpolate within a bucket.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(Duration nanos);
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration min() const { return count_ ? min_ : 0; }
  [[nodiscard]] Duration max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean_ns() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// q in [0, 1]; e.g. 0.5 for median, 0.95, 0.99.
  [[nodiscard]] Duration percentile(double q) const;

  /// "p50=1.2ms p95=3.4ms p99=9ms max=12ms (n=1000)"
  [[nodiscard]] std::string summary() const;

  void clear();
  /// Returns the accumulated histogram and resets this instance, so callers
  /// can take interval deltas (the metrics registry uses this between
  /// scrapes).  The snapshot preserves min/max/percentiles as-of the call.
  LatencyHistogram snapshot_and_reset();

 private:
  static std::size_t bucket_of(Duration nanos);
  static Duration bucket_low(std::size_t bucket);
  static Duration bucket_high(std::size_t bucket);

  static constexpr int kSubBits = 5;  // 32 sub-buckets per power of two.
  static constexpr std::size_t kBuckets = 64 << kSubBits;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  Duration min_ = std::numeric_limits<Duration>::max();
  Duration max_ = 0;
};

/// Formats a duration with a sensible unit (ns/us/ms/s).
std::string format_duration(Duration d);

/// Formats byte counts (B/KiB/MiB).
std::string format_bytes(std::uint64_t n);

}  // namespace discover::util
