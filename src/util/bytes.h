// Raw byte-sequence helpers shared by the wire, net and http layers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace discover::util {

using Bytes = std::vector<std::uint8_t>;

/// Copies a string's characters into a byte vector.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte vector as text.
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Hex representation, handy in logs and test failure messages.
std::string hex_dump(const Bytes& b, std::size_t max_bytes = 64);

}  // namespace discover::util
