// Time abstraction shared by the simulated and threaded network backends.
//
// All middleware timestamps are nanoseconds on a monotonic timeline.  The
// discrete-event simulator owns a ManualClock it advances between events;
// the threaded backend reads std::chrono::steady_clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace discover::util {

/// Nanoseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
/// Nanoseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

constexpr double to_ms(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_us(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Virtual clock advanced explicitly by the discrete-event scheduler.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance_to(TimePoint t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimePoint> now_{0};
};

/// Wall clock for the threaded backend.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() const override {
    const auto since_start = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(since_start)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace discover::util
