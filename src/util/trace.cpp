#include "util/trace.h"

#include <cstdio>

namespace discover::util {

namespace {

void append_hex16(std::string& out, std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;  // uppercase rejected: we only emit lowercase
    }
  }
  return v;
}

}  // namespace

std::string encode_trace_header(const TraceContext& ctx) {
  std::string out;
  out.reserve(36);
  append_hex16(out, ctx.trace_id);
  out += '-';
  append_hex16(out, ctx.span_id);
  out += "-01";
  return out;
}

std::optional<TraceContext> parse_trace_header(std::string_view value) {
  // <16 hex>-<16 hex>-<2 flags>
  if (value.size() != 36 || value[16] != '-' || value[33] != '-') {
    return std::nullopt;
  }
  const auto trace = parse_hex16(value.substr(0, 16));
  const auto span = parse_hex16(value.substr(17, 16));
  if (!trace || !span || *trace == 0) return std::nullopt;
  TraceContext ctx;
  ctx.trace_id = *trace;
  ctx.span_id = *span;
  return ctx;
}

void Tracer::configure(std::uint32_t node, std::uint64_t sample_every,
                       std::size_t ring_capacity, std::uint32_t shard_index,
                       std::uint32_t shard_bits) {
  node_ = node;
  shard_index_ = shard_index;
  shard_bits_ = shard_bits;
  sample_every_ = sample_every;
  ring_capacity_ = ring_capacity;
  ring_.reserve(ring_capacity_ < 4096 ? ring_capacity_ : 4096);
}

TraceContext Tracer::mint_root() {
  if (sample_every_ == 0 || ring_capacity_ == 0) return {};
  const bool sampled = (root_seq_++ % sample_every_) == 0;
  if (!sampled) return {};
  TraceContext ctx;
  ctx.trace_id = mint_id(++trace_seq_);
  ctx.span_id = mint_id(++span_seq_);
  return ctx;
}

TraceContext Tracer::child_of(const TraceContext& parent) {
  if (!parent.valid() || sample_every_ == 0) return {};
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = mint_id(++span_seq_);
  ctx.parent_span = parent.span_id;
  return ctx;
}

void Tracer::record(const TraceContext& ctx, std::string name,
                    TimePoint start, Duration elapsed, std::string detail) {
  if (!ctx.valid() || ring_capacity_ == 0) return;
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_id = ctx.parent_span;
  rec.name = std::move(name);
  rec.node = node_;
  rec.start = start;
  rec.elapsed = elapsed;
  rec.detail = std::move(detail);
  ++spans_recorded_;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(rec));
    ring_head_ = ring_.size() % ring_capacity_;
  } else {
    ring_[ring_head_] = std::move(rec);
    ring_head_ = (ring_head_ + 1) % ring_capacity_;
    ++spans_evicted_;
  }
}

std::vector<const SpanRecord*> Tracer::spans() const {
  std::vector<const SpanRecord*> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    for (const SpanRecord& r : ring_) out.push_back(&r);
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(&ring_[(ring_head_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::string Tracer::dump_text() const {
  std::string out;
  char buf[96];
  for (const SpanRecord* r : spans()) {
    out += "trace=";
    append_hex16(out, r->trace_id);
    out += " span=";
    append_hex16(out, r->span_id);
    out += " parent=";
    append_hex16(out, r->parent_id);
    std::snprintf(buf, sizeof(buf), " node=%u start=%lld elapsed=%lld ",
                  r->node, static_cast<long long>(r->start),
                  static_cast<long long>(r->elapsed));
    out += buf;
    out += r->name;
    if (!r->detail.empty()) {
      out += " ";
      out += r->detail;
    }
    out += "\n";
  }
  return out;
}

std::string Tracer::dump_json() const {
  std::string out = "{\n  \"spans\": [";
  char buf[96];
  bool first = true;
  for (const SpanRecord* r : spans()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"trace\": \"";
    append_hex16(out, r->trace_id);
    out += "\", \"span\": \"";
    append_hex16(out, r->span_id);
    out += "\", \"parent\": \"";
    append_hex16(out, r->parent_id);
    out += "\", \"name\": \"" + r->name + "\"";
    std::snprintf(buf, sizeof(buf),
                  ", \"node\": %u, \"start_ns\": %lld, \"elapsed_ns\": %lld",
                  r->node, static_cast<long long>(r->start),
                  static_cast<long long>(r->elapsed));
    out += buf;
    if (!r->detail.empty()) out += ", \"detail\": \"" + r->detail + "\"";
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void Tracer::clear() {
  ring_.clear();
  ring_head_ = 0;
  spans_recorded_ = 0;
  spans_evicted_ = 0;
}

}  // namespace discover::util
