#include "util/bytes.h"

#include <cstdio>

namespace discover::util {

std::string hex_dump(const Bytes& b, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  out.reserve(n * 3 + 8);
  char tmp[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(tmp, sizeof(tmp), "%02x ", b[i]);
    out += tmp;
  }
  if (b.size() > max_bytes) out += "...";
  return out;
}

}  // namespace discover::util
