// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run, so all randomness flows from
// explicitly seeded generators (xoshiro256** seeded via splitmix64) instead
// of std::random_device.
#pragma once

#include <cstdint>

namespace discover::util {

/// splitmix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B9u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace discover::util
