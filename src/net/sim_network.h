// Deterministic discrete-event network backend.
//
// Virtual time, explicit link models (propagation latency + serialization
// bandwidth), per-directed-pair FIFO, seeded determinism: two runs with the
// same inputs produce byte-identical event orders.  This backend drives the
// topology/latency/traffic experiments (E4, E5, E6, E7, E8) and all
// integration tests.
//
// Fault injection: each link class (LAN/WAN, or a per-node-pair override)
// can carry a FaultPlan (seeded drop/duplicate/jitter), node pairs or whole
// domain pairs can be partitioned and healed, and nodes can crash and
// restart.  All fault decisions draw from one seeded Rng in send order, so
// a chaos run is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/fault.h"
#include "net/network.h"
#include "util/clock.h"
#include "util/rng.h"

namespace discover::net {

/// One directed link's cost model.  Transfer of an n-byte message occupies
/// the link for n/bytes_per_sec, then propagates for `latency`.
struct LinkModel {
  util::Duration latency = 0;
  double bytes_per_sec = 1e9;  // effectively infinite by default

  [[nodiscard]] util::Duration transfer_time(std::size_t bytes) const {
    if (bytes_per_sec <= 0) return 0;
    return static_cast<util::Duration>(
        static_cast<double>(bytes) / bytes_per_sec * 1e9);
  }
};

class SimNetwork final : public Network {
 public:
  SimNetwork();

  // -- topology ------------------------------------------------------------
  NodeId add_node(std::string name, MessageHandler* handler,
                  DomainId domain = DomainId{0}) override;
  /// Link model used between nodes of the same domain.
  void set_lan_model(LinkModel m) { lan_ = m; }
  /// Default link model between nodes of different domains.
  void set_wan_model(LinkModel m) { wan_ = m; }
  /// Overrides the model for one ordered domain pair (applied both ways).
  void set_domain_link(DomainId a, DomainId b, LinkModel m);

  // -- fault injection -----------------------------------------------------
  /// Reseeds the fault RNG; chaos runs replay exactly from the same seed.
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = util::Rng(seed); }
  /// Fault plan for links within one domain.
  void set_lan_faults(FaultPlan p) { lan_faults_ = p; }
  /// Fault plan for links between different domains.
  void set_wan_faults(FaultPlan p) { wan_faults_ = p; }
  /// Overrides the plan for one unordered node pair (both directions).
  void set_link_faults(NodeId a, NodeId b, FaultPlan p);
  /// Cuts / restores both directions between two nodes.
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  /// Cuts / restores all traffic between two domains (both directions).
  void partition_domains(DomainId a, DomainId b);
  void heal_domains(DomainId a, DomainId b);
  /// Whole-node crash: messages to/from the node are lost and its pending
  /// timers are consumed without firing (a real crash loses its timers).
  /// restart_node only re-opens the network; components must re-initialize
  /// themselves.
  void crash_node(NodeId node);
  void restart_node(NodeId node);
  [[nodiscard]] bool node_crashed(NodeId node) const;

  [[nodiscard]] const FaultStats& fault_stats() const { return faults_; }

  /// Event-trace recording: when enabled, every delivery, timer firing and
  /// fault decision appends one line.  Two same-seed runs must produce
  /// byte-identical traces — the determinism oracle of the chaos suite.
  void set_trace_enabled(bool on) { trace_enabled_ = on; }
  [[nodiscard]] const std::string& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // -- Network interface ---------------------------------------------------
  void send(NodeId from, NodeId to, Channel channel,
            Payload payload) override;
  TimerId schedule(NodeId node, util::Duration delay,
                   std::function<void()> fn) override;
  void cancel(TimerId id) override;
  [[nodiscard]] util::TimePoint now() const override { return clock_.now(); }
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] TrafficStats traffic() const override { return traffic_; }
  void reset_traffic() override { traffic_ = {}; }
  [[nodiscard]] const std::string& node_name(NodeId id) const override;
  [[nodiscard]] DomainId node_domain(NodeId id) const override;

  // -- event loop ----------------------------------------------------------
  /// Processes events until the queue is empty.  Returns events processed.
  /// Only terminates if the protocol quiesces (no self-rescheduling timers).
  std::size_t run_until_idle();
  /// Processes events with timestamp <= now+window; virtual time advances to
  /// now+window even if the queue empties early.  Returns events processed.
  std::size_t run_for(util::Duration window);
  /// Processes a single event.  Returns false if the queue is empty.
  bool step();
  /// Processes events until `pred()` is true (checked after each event) or
  /// the queue empties.  Returns true if the predicate fired.
  bool run_until(const std::function<bool()>& pred);

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    util::TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among simultaneous events
    // Exactly one of the two is active.
    Message msg;
    std::function<void()> timer_fn;
    std::uint64_t timer_id = 0;  // nonzero for timers
    NodeId node;                 // destination / timer owner
  };

  /// What actually sits in the heap: Events are >100 bytes (embedded
  /// std::function + Message), so sifting them directly dominates the
  /// delivery hot path under broadcast fan-out.  The heap orders 24-byte
  /// handles instead; the Event body stays put in `slots_`.  Ordering is
  /// the same (at, seq) total order, so event traces are unchanged.
  struct EventRef {
    util::TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;

    bool operator>(const EventRef& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  struct NodeInfo {
    std::string name;
    MessageHandler* handler;
    DomainId domain;
    bool crashed = false;
  };

  [[nodiscard]] const LinkModel& link_between(NodeId a, NodeId b) const;
  [[nodiscard]] const FaultPlan& faults_between(NodeId a, NodeId b) const;
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;
  void enqueue_message(NodeId from, NodeId to, Channel channel,
                       const Payload& payload, util::TimePoint arrive);
  void trace_line(const char* what, NodeId from, NodeId to, Channel channel,
                  std::uint64_t seq_or_size);
  void dispatch(Event& ev);
  void push_event(Event&& ev);

  util::ManualClock clock_;
  std::vector<NodeInfo> nodes_;
  LinkModel lan_{};
  LinkModel wan_{};
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkModel> domain_links_;
  // Directed (src,dst) -> time the link is busy until (serialization).
  std::unordered_map<std::uint64_t, util::TimePoint> link_busy_until_;
  std::priority_queue<EventRef, std::vector<EventRef>, std::greater<>> queue_;
  std::vector<Event> slots_;              // Event bodies, indexed by EventRef
  std::vector<std::uint32_t> free_slots_;  // reusable slot indices
  std::unordered_set<std::uint64_t> cancelled_timers_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_timer_ = 1;
  TrafficStats traffic_;

  // Fault state.  std::set keeps lookup order deterministic.
  util::Rng fault_rng_{0x5eedULL};
  FaultPlan lan_faults_{};
  FaultPlan wan_faults_{};
  std::map<std::pair<std::uint32_t, std::uint32_t>, FaultPlan> link_faults_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> node_partitions_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> domain_partitions_;
  FaultStats faults_;
  bool trace_enabled_ = false;
  std::string trace_;
};

}  // namespace discover::net
