#include "net/sim_network.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace discover::net {

namespace {

std::pair<std::uint32_t, std::uint32_t> unordered_pair(std::uint32_t a,
                                                       std::uint32_t b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::main_channel: return "main";
    case Channel::command: return "command";
    case Channel::response: return "response";
    case Channel::control: return "control";
    case Channel::http: return "http";
    case Channel::giop: return "giop";
  }
  return "?";
}

SimNetwork::SimNetwork() = default;

NodeId SimNetwork::add_node(std::string name, MessageHandler* handler,
                            DomainId domain) {
  nodes_.push_back(NodeInfo{std::move(name), handler, domain, false});
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void SimNetwork::set_domain_link(DomainId a, DomainId b, LinkModel m) {
  domain_links_[unordered_pair(a.value(), b.value())] = m;
}

void SimNetwork::set_link_faults(NodeId a, NodeId b, FaultPlan p) {
  link_faults_[unordered_pair(a.value(), b.value())] = p;
}

void SimNetwork::partition(NodeId a, NodeId b) {
  node_partitions_.insert(unordered_pair(a.value(), b.value()));
}

void SimNetwork::heal(NodeId a, NodeId b) {
  node_partitions_.erase(unordered_pair(a.value(), b.value()));
}

void SimNetwork::partition_domains(DomainId a, DomainId b) {
  domain_partitions_.insert(unordered_pair(a.value(), b.value()));
}

void SimNetwork::heal_domains(DomainId a, DomainId b) {
  domain_partitions_.erase(unordered_pair(a.value(), b.value()));
}

void SimNetwork::crash_node(NodeId node) {
  nodes_.at(node.value()).crashed = true;
}

void SimNetwork::restart_node(NodeId node) {
  nodes_.at(node.value()).crashed = false;
}

bool SimNetwork::node_crashed(NodeId node) const {
  return nodes_.at(node.value()).crashed;
}

const LinkModel& SimNetwork::link_between(NodeId a, NodeId b) const {
  const DomainId da = nodes_[a.value()].domain;
  const DomainId db = nodes_[b.value()].domain;
  if (da == db) return lan_;
  const auto it = domain_links_.find(unordered_pair(da.value(), db.value()));
  return it != domain_links_.end() ? it->second : wan_;
}

const FaultPlan& SimNetwork::faults_between(NodeId a, NodeId b) const {
  const auto it =
      link_faults_.find(unordered_pair(a.value(), b.value()));
  if (it != link_faults_.end()) return it->second;
  return nodes_[a.value()].domain == nodes_[b.value()].domain ? lan_faults_
                                                              : wan_faults_;
}

bool SimNetwork::partitioned(NodeId a, NodeId b) const {
  if (node_partitions_.count(unordered_pair(a.value(), b.value())) != 0) {
    return true;
  }
  const DomainId da = nodes_[a.value()].domain;
  const DomainId db = nodes_[b.value()].domain;
  return domain_partitions_.count(unordered_pair(da.value(), db.value())) !=
         0;
}

void SimNetwork::trace_line(const char* what, NodeId from, NodeId to,
                            Channel channel, std::uint64_t seq_or_size) {
  if (!trace_enabled_) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%lld %s %u>%u %s %llu\n",
                static_cast<long long>(now()), what, from.value(), to.value(),
                channel_name(channel),
                static_cast<unsigned long long>(seq_or_size));
  trace_ += buf;
}

void SimNetwork::push_event(Event&& ev) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(ev);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(std::move(ev));
  }
  queue_.push(EventRef{slots_[slot].at, slots_[slot].seq, slot});
}

void SimNetwork::enqueue_message(NodeId from, NodeId to, Channel channel,
                                 const Payload& payload,
                                 util::TimePoint arrive) {
  Event ev;
  ev.at = arrive;
  ev.seq = next_seq_++;
  ev.node = to;
  ev.msg.src = from;
  ev.msg.dst = to;
  ev.msg.channel = channel;
  ev.msg.payload = payload;
  ev.msg.sent_at = now();
  ev.msg.seq = ev.seq;
  push_event(std::move(ev));
}

void SimNetwork::send(NodeId from, NodeId to, Channel channel,
                      Payload payload) {
  assert(from.value() < nodes_.size() && to.value() < nodes_.size());
  const LinkModel& link = link_between(from, to);
  const std::size_t size = payload.size();

  // FIFO per directed pair: the message can start serializing only once the
  // previous one finished; arrival = departure + transfer + propagation.
  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  util::TimePoint& busy_until = link_busy_until_[pair_key];
  const util::TimePoint depart = std::max(now(), busy_until);
  busy_until = depart + link.transfer_time(size);
  util::TimePoint arrive = busy_until + link.latency;

  traffic_.messages++;
  traffic_.bytes += size;
  if (nodes_[from.value()].domain != nodes_[to.value()].domain) {
    traffic_.wan_messages++;
    traffic_.wan_bytes += size;
  }

  // Fault pipeline.  A crashed endpoint or an active partition beats the
  // probabilistic plan (no RNG draw, so toggling partitions does not shift
  // the random sequence of surviving links).
  if (nodes_[from.value()].crashed || nodes_[to.value()].crashed) {
    ++faults_.crash_drops;
    trace_line("crashdrop", from, to, channel, size);
    return;
  }
  if (partitioned(from, to)) {
    ++faults_.partition_drops;
    trace_line("partdrop", from, to, channel, size);
    return;
  }
  const FaultPlan& plan = faults_between(from, to);
  if (plan.active()) {
    // Fixed draw order (drop, jitter, duplicate, duplicate-jitter) keeps
    // the RNG stream identical for identical scenario programs.
    if (plan.drop_prob > 0 && fault_rng_.chance(plan.drop_prob)) {
      ++faults_.dropped;
      trace_line("drop", from, to, channel, size);
      return;
    }
    if (plan.jitter_max > 0) {
      arrive += static_cast<util::Duration>(
          fault_rng_.below(static_cast<std::uint64_t>(plan.jitter_max) + 1));
    }
    if (plan.duplicate_prob > 0 && fault_rng_.chance(plan.duplicate_prob)) {
      util::TimePoint dup_arrive = arrive;
      if (plan.jitter_max > 0) {
        dup_arrive += static_cast<util::Duration>(fault_rng_.below(
            static_cast<std::uint64_t>(plan.jitter_max) + 1));
      }
      ++faults_.duplicated;
      trace_line("dup", from, to, channel, size);
      enqueue_message(from, to, channel, payload, dup_arrive);
    }
  }
  enqueue_message(from, to, channel, payload, arrive);
}

TimerId SimNetwork::schedule(NodeId node, util::Duration delay,
                             std::function<void()> fn) {
  assert(node.value() < nodes_.size());
  Event ev;
  ev.at = now() + std::max<util::Duration>(delay, 0);
  ev.seq = next_seq_++;
  ev.node = node;
  ev.timer_fn = std::move(fn);
  ev.timer_id = next_timer_++;
  const TimerId id{ev.timer_id};
  push_event(std::move(ev));
  return id;
}

void SimNetwork::cancel(TimerId id) {
  if (id.value() != 0) cancelled_timers_.insert(id.value());
}

const std::string& SimNetwork::node_name(NodeId id) const {
  return nodes_.at(id.value()).name;
}

DomainId SimNetwork::node_domain(NodeId id) const {
  return nodes_.at(id.value()).domain;
}

void SimNetwork::dispatch(Event& ev) {
  if (ev.timer_id != 0) {
    const auto it = cancelled_timers_.find(ev.timer_id);
    if (it != cancelled_timers_.end()) {
      // Cancelled timers are consumed without advancing virtual time, so a
      // far-future cancelled deadline left in the queue cannot drag the
      // clock forward during run_until_idle().
      cancelled_timers_.erase(it);
      return;
    }
    clock_.advance_to(ev.at);
    if (nodes_[ev.node.value()].crashed) {
      // A crashed node's timers are lost, exactly like its in-flight
      // messages: the crash wiped its execution context.
      ++faults_.crash_drops;
      trace_line("crashtimer", ev.node, ev.node, Channel::control,
                 ev.timer_id);
      return;
    }
    trace_line("timer", ev.node, ev.node, Channel::control, ev.timer_id);
    ev.timer_fn();
  } else {
    clock_.advance_to(ev.at);
    if (nodes_[ev.node.value()].crashed) {
      ++faults_.crash_drops;
      trace_line("crashdrop", ev.msg.src, ev.msg.dst, ev.msg.channel,
                 ev.msg.payload.size());
      return;
    }
    trace_line("deliver", ev.msg.src, ev.msg.dst, ev.msg.channel, ev.seq);
    MessageHandler* handler = nodes_[ev.node.value()].handler;
    if (handler != nullptr) handler->on_message(ev.msg);
  }
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  const EventRef ref = queue_.top();
  queue_.pop();
  // Move the body out before dispatching: the handler may enqueue new
  // events, which can reuse or reallocate slots.
  Event ev = std::move(slots_[ref.slot]);
  free_slots_.push_back(ref.slot);
  dispatch(ev);
  return true;
}

std::size_t SimNetwork::run_until_idle() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimNetwork::run_for(util::Duration window) {
  const util::TimePoint deadline = now() + window;
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  clock_.advance_to(deadline);
  return n;
}

bool SimNetwork::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

}  // namespace discover::net
