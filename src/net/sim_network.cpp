#include "net/sim_network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace discover::net {

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::main_channel: return "main";
    case Channel::command: return "command";
    case Channel::response: return "response";
    case Channel::control: return "control";
    case Channel::http: return "http";
    case Channel::giop: return "giop";
  }
  return "?";
}

SimNetwork::SimNetwork() = default;

NodeId SimNetwork::add_node(std::string name, MessageHandler* handler,
                            DomainId domain) {
  nodes_.push_back(NodeInfo{std::move(name), handler, domain});
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void SimNetwork::set_domain_link(DomainId a, DomainId b, LinkModel m) {
  domain_links_[{std::min(a.value(), b.value()),
                 std::max(a.value(), b.value())}] = m;
}

const LinkModel& SimNetwork::link_between(NodeId a, NodeId b) const {
  const DomainId da = nodes_[a.value()].domain;
  const DomainId db = nodes_[b.value()].domain;
  if (da == db) return lan_;
  const auto it = domain_links_.find({std::min(da.value(), db.value()),
                                      std::max(da.value(), db.value())});
  return it != domain_links_.end() ? it->second : wan_;
}

void SimNetwork::send(NodeId from, NodeId to, Channel channel,
                      util::Bytes payload) {
  assert(from.value() < nodes_.size() && to.value() < nodes_.size());
  const LinkModel& link = link_between(from, to);
  const std::size_t size = payload.size();

  // FIFO per directed pair: the message can start serializing only once the
  // previous one finished; arrival = departure + transfer + propagation.
  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
  util::TimePoint& busy_until = link_busy_until_[pair_key];
  const util::TimePoint depart = std::max(now(), busy_until);
  busy_until = depart + link.transfer_time(size);
  const util::TimePoint arrive = busy_until + link.latency;

  Event ev;
  ev.at = arrive;
  ev.seq = next_seq_++;
  ev.node = to;
  ev.msg.src = from;
  ev.msg.dst = to;
  ev.msg.channel = channel;
  ev.msg.payload = std::move(payload);
  ev.msg.sent_at = now();
  ev.msg.seq = ev.seq;
  queue_.push(std::move(ev));

  traffic_.messages++;
  traffic_.bytes += size;
  if (nodes_[from.value()].domain != nodes_[to.value()].domain) {
    traffic_.wan_messages++;
    traffic_.wan_bytes += size;
  }
}

TimerId SimNetwork::schedule(NodeId node, util::Duration delay,
                             std::function<void()> fn) {
  assert(node.value() < nodes_.size());
  Event ev;
  ev.at = now() + std::max<util::Duration>(delay, 0);
  ev.seq = next_seq_++;
  ev.node = node;
  ev.timer_fn = std::move(fn);
  ev.timer_id = next_timer_++;
  const TimerId id{ev.timer_id};
  queue_.push(std::move(ev));
  return id;
}

void SimNetwork::cancel(TimerId id) {
  if (id.value() != 0) cancelled_timers_.insert(id.value());
}

const std::string& SimNetwork::node_name(NodeId id) const {
  return nodes_.at(id.value()).name;
}

DomainId SimNetwork::node_domain(NodeId id) const {
  return nodes_.at(id.value()).domain;
}

void SimNetwork::dispatch(Event& ev) {
  clock_.advance_to(ev.at);
  if (ev.timer_id != 0) {
    const auto it = cancelled_timers_.find(ev.timer_id);
    if (it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      return;
    }
    ev.timer_fn();
  } else {
    MessageHandler* handler = nodes_[ev.node.value()].handler;
    if (handler != nullptr) handler->on_message(ev.msg);
  }
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is moved out via const_cast,
  // which is safe because pop() immediately removes the moved-from shell.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  dispatch(ev);
  return true;
}

std::size_t SimNetwork::run_until_idle() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimNetwork::run_for(util::Duration window) {
  const util::TimePoint deadline = now() + window;
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
    ++n;
  }
  clock_.advance_to(deadline);
  return n;
}

bool SimNetwork::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

}  // namespace discover::net
