// Real-time threaded network backend.
//
// One worker thread per node (actor model: a node's handler and timers run
// only on its own worker), a shared timer thread, and mutex+condvar
// inboxes.  No link model: message delivery cost is whatever the machine
// does, which is exactly what the saturation experiments (E1, E2, E3) need
// to measure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/fault.h"
#include "net/network.h"
#include "util/clock.h"
#include "util/rng.h"

namespace discover::net {

class ThreadNetwork final : public Network {
 public:
  ThreadNetwork();
  ~ThreadNetwork() override;

  ThreadNetwork(const ThreadNetwork&) = delete;
  ThreadNetwork& operator=(const ThreadNetwork&) = delete;

  /// All nodes must be added before start().
  NodeId add_node(std::string name, MessageHandler* handler,
                  DomainId domain = DomainId{0}) override;

  /// Spawns one worker per node plus the timer thread.
  void start();
  /// Stops dispatching, drops queued work, joins all threads.  Idempotent.
  void stop();

  void send(NodeId from, NodeId to, Channel channel,
            Payload payload) override;
  TimerId schedule(NodeId node, util::Duration delay,
                   std::function<void()> fn) override;
  void cancel(TimerId id) override;
  [[nodiscard]] util::TimePoint now() const override { return clock_.now(); }
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] TrafficStats traffic() const override;
  void reset_traffic() override;
  [[nodiscard]] const std::string& node_name(NodeId id) const override;
  [[nodiscard]] DomainId node_domain(NodeId id) const override;
  /// Real threads already back every node; a node may shard internally.
  [[nodiscard]] bool supports_sharding() const override { return true; }

  /// Blocks until no task is queued or executing anywhere (future-dated
  /// timers do not count), or until `timeout` elapses.  Returns true when
  /// idle was reached.
  bool wait_idle(util::Duration timeout);

  // -- fault injection (cheap subset) --------------------------------------
  // Under real time there is no jitter model (the scheduler supplies plenty
  // of its own); only seeded drop/duplicate plus explicit partitions.
  void set_fault_seed(std::uint64_t seed);
  /// One global plan applied to every link; jitter_max is ignored.
  void set_fault_plan(FaultPlan p);
  void partition(NodeId a, NodeId b);
  void heal(NodeId a, NodeId b);
  [[nodiscard]] FaultStats fault_stats() const;

  /// Cancelled-but-unfired timer ids still tombstoned.  Bounded by the
  /// number of outstanding timers (`cancelled ⊆ pending`): cancelling a
  /// timer that already fired — the common best-effort case — records
  /// nothing, and a fired or stop()-discarded timer prunes its mark.  The
  /// osnet soak test pins this invariant.
  [[nodiscard]] std::size_t cancelled_timer_backlog() const;
  [[nodiscard]] std::size_t pending_timer_count() const;

 private:
  struct Task {
    Message msg;
    std::function<void()> fn;  // non-null => timer task
  };

  struct NodeState {
    std::string name;
    MessageHandler* handler = nullptr;
    DomainId domain{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> inbox;
    std::thread worker;
  };

  struct PendingTimer {
    util::TimePoint at;
    std::uint64_t id;
    std::uint32_t node;
    std::function<void()> fn;
    bool operator>(const PendingTimer& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void worker_loop(NodeState& node);
  void timer_loop();
  void enqueue(std::uint32_t node_index, Task task);

  util::SystemClock clock_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  mutable std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>, std::greater<>>
      timers_;
  // Ids of timers still queued; cancel() only tombstones members, so
  // cancelled_timers_ can never outgrow the live timer population (it used
  // to accumulate every cancelled id for the process lifetime).
  std::unordered_set<std::uint64_t> pending_timer_ids_;
  std::unordered_set<std::uint64_t> cancelled_timers_;
  std::uint64_t next_timer_ = 1;
  std::thread timer_thread_;

  std::atomic<std::uint64_t> inflight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  mutable std::mutex traffic_mutex_;
  TrafficStats traffic_;

  mutable std::mutex fault_mutex_;
  util::Rng fault_rng_{0x5eedULL};
  FaultPlan fault_plan_{};
  std::set<std::pair<std::uint32_t, std::uint32_t>> node_partitions_;
  FaultStats faults_;
};

}  // namespace discover::net
