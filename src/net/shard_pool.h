// Worker-shard pool for multi-core nodes (DESIGN.md §5i).
//
// A node that wants to use more than one core splits its state into N
// shards and runs one event loop per shard, RethinkDB-style: each shard
// owns a mutex+condvar task queue drained by a dedicated worker thread,
// and cross-shard interactions are explicit posts onto the target shard's
// queue (the do_on_thread idiom) — shard state itself needs no locking
// because only its own worker ever touches it.
//
// The pool is deliberately dumb: it knows nothing about messages or
// routing.  The owning node's dispatcher decides which shard a task
// belongs to; the pool only guarantees per-shard FIFO execution and a
// queue-handoff happens-before edge between a post and its execution.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace discover::net {

class ShardPool {
 public:
  /// Sentinel returned by current_shard() on threads that are not pool
  /// workers (the network worker, timer thread, test main thread).
  static constexpr std::size_t kNotAShard = ~std::size_t{0};

  explicit ShardPool(std::size_t shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Spawns one worker per shard.  Tasks posted before start() queue up
  /// and run once the workers exist.  Idempotent.
  void start();
  /// Stops dispatching, drops queued tasks, joins workers.  Idempotent.
  void stop();

  /// Enqueues `fn` on `shard`'s queue (FIFO per shard).  Safe from any
  /// thread, including other shards' workers.  Posting to a stopped pool
  /// drops the task, mirroring ThreadNetwork::stop() semantics.
  void post(std::size_t shard, std::function<void()> fn);

  /// Blocks until no task is queued or executing on any shard, or until
  /// `timeout` elapses.  Returns true when idle was reached.
  bool wait_idle(util::Duration timeout);

  /// Index of the shard whose worker is the calling thread, or kNotAShard.
  [[nodiscard]] static std::size_t current_shard();

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::thread thread;
  };

  void worker_loop(std::size_t index);
  void finish_task();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  bool started_ = false;
  std::mutex lifecycle_mutex_;

  std::atomic<std::uint64_t> inflight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace discover::net
