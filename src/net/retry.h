// Retry policy with capped exponential backoff and bounded jitter.
//
// Shared by the ORB and the HTTP client: a request that times out is
// retransmitted after backoff_after(attempt) until max_attempts is
// exhausted.  The jitter draw comes from a caller-owned seeded Rng, so
// retry timing is deterministic under SimNetwork.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/clock.h"
#include "util/rng.h"

namespace discover::net {

struct RetryPolicy {
  /// Total attempts including the first transmission.  1 = no retries
  /// (the default keeps legacy single-shot semantics).
  std::uint32_t max_attempts = 1;
  util::Duration initial_backoff = util::milliseconds(50);
  double multiplier = 2.0;
  util::Duration max_backoff = util::seconds(2);
  /// Fractional jitter in [0,1]: the backoff is scaled by a uniform factor
  /// from [1-jitter/2, 1+jitter/2].
  double jitter = 0.0;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }

  /// Delay before the retry that follows failed attempt number `attempt`
  /// (1-based).  Grows geometrically and saturates at max_backoff; jitter
  /// is applied after the cap and never produces a negative delay.
  [[nodiscard]] util::Duration backoff_after(std::uint32_t attempt,
                                             util::Rng& rng) const {
    double base = static_cast<double>(initial_backoff);
    for (std::uint32_t i = 1; i < attempt; ++i) {
      base *= multiplier;
      if (base >= static_cast<double>(max_backoff)) break;
    }
    base = std::min(base, static_cast<double>(max_backoff));
    if (jitter > 0) {
      base *= 1.0 + jitter * (rng.uniform() - 0.5);
    }
    return std::max<util::Duration>(static_cast<util::Duration>(base), 0);
  }
};

}  // namespace discover::net
