// Length-framed channel multiplexing for the OS-socket transport.
//
// One TCP connection between two processes carries every logical channel of
// every (src, dst) node pair, FIFO.  Each transport message becomes one
// frame:
//
//   u32  magic   'D' 'S' 'C' '1'  (0x44534331, little-endian on the wire)
//   u32  length  bytes that follow this field (header remainder + payload)
//   u32  src     sender NodeId (global id space, coordinated by config)
//   u32  dst     receiver NodeId
//   u32  channel net::Channel value, or kHelloChannel for the handshake
//   u8[] payload
//
// The decoder is incremental: real TCP delivers frames in arbitrary
// segments, so feed() accepts any byte fragmentation and yields frames only
// once complete.  A declared length above the configured cap is rejected
// *before* any payload is buffered — the length field is attacker-
// controlled and must never size an allocation unchecked.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/message.h"
#include "util/bytes.h"
#include "util/result.h"

namespace discover::net {

/// Channel value reserved for the connection handshake; never collides with
/// net::Channel (a u8 enum).
inline constexpr std::uint32_t kHelloChannel = 0xFFFFFFFFu;

inline constexpr std::uint32_t kFrameMagic = 0x31435344u;  // "DSC1" LE
/// Bytes covered by the length field besides the payload: src + dst +
/// channel.
inline constexpr std::size_t kFrameHeadTail = 12;
/// Bytes before the payload: magic + length + src + dst + channel.
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Default per-frame payload cap (64 MiB).  Generous — the biggest real
/// frames are batched peer pushes — but small enough that a corrupt or
/// hostile length field cannot balloon memory.
inline constexpr std::size_t kDefaultMaxFramePayload = 64u << 20;

/// One decoded frame.  `channel_raw` is kept so the handshake frame can be
/// told apart from data; `channel` is only meaningful when
/// `channel_raw != kHelloChannel`.
struct Frame {
  NodeId src{0};
  NodeId dst{0};
  std::uint32_t channel_raw = 0;
  util::Bytes payload;

  [[nodiscard]] bool is_hello() const { return channel_raw == kHelloChannel; }
  [[nodiscard]] Channel channel() const {
    return static_cast<Channel>(channel_raw);
  }
};

/// Serializes the 20-byte frame header; the payload follows verbatim, so a
/// refcounted Payload can be scatter-gathered after the header without ever
/// being copied into the frame.
[[nodiscard]] std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    NodeId src, NodeId dst, std::uint32_t channel_raw,
    std::size_t payload_size);

/// Convenience for tests and the handshake: one contiguous buffer.
[[nodiscard]] util::Bytes encode_frame(NodeId src, NodeId dst,
                                       std::uint32_t channel_raw,
                                       const util::Bytes& payload);

/// Handshake body: protocol version, the node ids local to the sending
/// process (so the receiver can route replies back over this connection),
/// and the sender's listen address ("host:port", empty when not listening).
struct HelloFrame {
  std::uint32_t version = 1;
  std::vector<std::uint32_t> local_nodes;
  std::string listen_addr;
};

[[nodiscard]] util::Bytes encode_hello(const HelloFrame& hello);
[[nodiscard]] util::Result<HelloFrame> decode_hello(const util::Bytes& body);

/// Incremental frame reassembler.  Feed arbitrary byte fragments; complete
/// frames append to `out`.  Returns a protocol error on bad magic or a
/// declared payload larger than the cap — the connection must then be torn
/// down, since framing sync is lost.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  util::Status feed(const std::uint8_t* data, std::size_t size,
                    std::vector<Frame>& out);

  /// Bytes buffered toward an incomplete frame (diagnostics; a closed
  /// connection simply discards them).
  [[nodiscard]] std::size_t pending_bytes() const {
    return header_have_ + payload_.size();
  }

 private:
  std::size_t max_payload_;
  std::array<std::uint8_t, kFrameHeaderBytes> header_{};
  std::size_t header_have_ = 0;
  std::size_t payload_need_ = 0;
  bool length_checked_ = false;
  util::Bytes payload_;
};

}  // namespace discover::net
