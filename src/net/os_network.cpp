#include "net/os_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "util/log.h"

namespace discover::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// writev batches at most this many iovecs per call (IOV_MAX is >= 1024
/// everywhere; 64 keeps the stack array small and the syscall big enough).
constexpr std::size_t kMaxIov = 64;

std::string addr_key_of(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

bool split_addr_key(const std::string& key, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = key.rfind(':');
  if (colon == std::string::npos) return false;
  host = key.substr(0, colon);
  const int p = std::atoi(key.c_str() + colon + 1);
  if (p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

int make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_sndbuf(int fd, int bytes) {
  if (bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Event pollers: one interface, an epoll implementation (Linux) and a
// portable poll(2) fallback.  Only the event-loop thread touches a poller.

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class OsNetwork::Poller {
 public:
  virtual ~Poller() = default;
  virtual void add(int fd, bool want_read, bool want_write) = 0;
  virtual void mod(int fd, bool want_read, bool want_write) = 0;
  virtual void del(int fd) = 0;
  virtual void wait(int timeout_ms, std::vector<PollerEvent>& out) = 0;
};

#ifdef __linux__
class OsNetwork::EpollPoller final : public OsNetwork::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    if (epfd_ < 0) throw std::runtime_error("epoll_create1 failed");
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool want_read, bool want_write) override {
    epoll_event ev{};
    ev.events = mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
  void mod(int fd, bool want_read, bool want_write) override {
    epoll_event ev{};
    ev.events = mask(want_read, want_write);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }
  void del(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  void wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollerEvent pe;
      pe.fd = events[i].data.fd;
      pe.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      pe.writable = (events[i].events & EPOLLOUT) != 0;
      pe.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(pe);
    }
  }

 private:
  static std::uint32_t mask(bool r, bool w) {
    return (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
  }
  int epfd_;
};
#endif  // __linux__

class OsNetwork::PollFdPoller final : public OsNetwork::Poller {
 public:
  void add(int fd, bool want_read, bool want_write) override {
    interest_[fd] = events(want_read, want_write);
  }
  void mod(int fd, bool want_read, bool want_write) override {
    interest_[fd] = events(want_read, want_write);
  }
  void del(int fd) override { interest_.erase(fd); }
  void wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    fds_.clear();
    for (const auto& [fd, ev] : interest_) {
      fds_.push_back(pollfd{fd, ev, 0});
    }
    const int n =
        ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent pe;
      pe.fd = p.fd;
      pe.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      pe.writable = (p.revents & POLLOUT) != 0;
      pe.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(pe);
    }
  }

 private:
  static short events(bool r, bool w) {
    return static_cast<short>((r ? POLLIN : 0) | (w ? POLLOUT : 0));
  }
  std::map<int, short> interest_;
  std::vector<pollfd> fds_;
};

// ---------------------------------------------------------------------------

OsNetwork::OsNetwork(OsNetworkConfig config) : config_(std::move(config)) {}

OsNetwork::~OsNetwork() { stop(); }

NodeId OsNetwork::add_node(std::string name, MessageHandler* handler,
                           DomainId domain) {
  if (started_) throw std::logic_error("add_node after start()");
  auto rec = std::make_unique<NodeRec>();
  rec->name = std::move(name);
  rec->handler = handler;
  rec->domain = domain;
  rec->local = true;
  nodes_.push_back(std::move(rec));
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  local_node_ids_.push_back(id);
  return NodeId{id};
}

NodeId OsNetwork::add_remote(std::string name, std::string host,
                             std::uint16_t port, DomainId domain) {
  if (started_) throw std::logic_error("add_remote after start()");
  auto rec = std::make_unique<NodeRec>();
  rec->name = std::move(name);
  rec->domain = domain;
  rec->local = false;
  rec->addr_key = addr_key_of(host, port);
  nodes_.push_back(std::move(rec));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

std::string OsNetwork::listen_addr() const {
  if (bound_port_ == 0) return {};
  return addr_key_of(config_.listen_host, bound_port_);
}

util::Status OsNetwork::start() {
  if (started_) return {};

  if (config_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return {util::Errc::internal, "socket() failed"};
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.listen_port);
    if (::inet_pton(AF_INET, config_.listen_host.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return {util::Errc::invalid_argument,
              "bad listen host " + config_.listen_host};
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      // The typed startup failure the tests pin: a taken port is an
      // environment condition the caller can react to, not a crash.
      return {err == EADDRINUSE ? util::Errc::unavailable
                                : util::Errc::internal,
              "bind " + addr_key_of(config_.listen_host,
                                    config_.listen_port) +
                  " failed: " + std::strerror(err)};
    }
    if (::listen(listen_fd_, 128) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return {util::Errc::internal,
              std::string("listen failed: ") + std::strerror(err)};
    }
    make_nonblocking(listen_fd_);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port_ = ntohs(addr.sin_port);
  }

  if (::pipe(wake_fds_) != 0) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    return {util::Errc::internal, "pipe() failed"};
  }
  make_nonblocking(wake_fds_[0]);
  make_nonblocking(wake_fds_[1]);

#ifdef __linux__
  if (config_.use_epoll) {
    poller_ = std::make_unique<EpollPoller>();
  } else {
    poller_ = std::make_unique<PollFdPoller>();
  }
#else
  poller_ = std::make_unique<PollFdPoller>();
#endif
  poller_->add(wake_fds_[0], /*read=*/true, /*write=*/false);
  if (listen_fd_ >= 0) {
    poller_->add(listen_fd_, /*read=*/true, /*write=*/false);
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  for (const std::uint32_t id : local_node_ids_) {
    NodeRec* rec = nodes_[id].get();
    rec->worker = std::thread([this, rec] { worker_loop(*rec); });
  }
  loop_thread_ = std::thread([this] { loop(); });
  return {};
}

void OsNetwork::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_.store(false, std::memory_order_release);
  for (const std::uint32_t id : local_node_ids_) {
    nodes_[id]->cv.notify_all();
  }
  for (const std::uint32_t id : local_node_ids_) {
    NodeRec& rec = *nodes_[id];
    if (rec.worker.joinable()) rec.worker.join();
    // Queued-but-undelivered tasks die with the network, like
    // ThreadNetwork::stop(); account them so wait_idle callers unblock.
    std::size_t dropped;
    {
      const std::lock_guard<std::mutex> lock(rec.mutex);
      dropped = rec.inbox.size();
      rec.inbox.clear();
    }
    if (dropped > 0 &&
        inflight_.fetch_sub(dropped, std::memory_order_acq_rel) == dropped) {
      idle_cv_.notify_all();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    while (!timers_.empty()) timers_.pop();
    // Discarded timers prune their cancellation marks too — nothing may
    // survive a stop() to leak into the next start.
    pending_timer_ids_.clear();
    cancelled_timers_.clear();
  }
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  started_ = false;
}

void OsNetwork::wake() {
  if (wake_fds_[1] < 0) return;
  const char b = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

// -- local delivery ---------------------------------------------------------

void OsNetwork::enqueue_local(std::uint32_t node_index, Task task) {
  NodeRec& node = *nodes_[node_index];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(node.mutex);
    node.inbox.push_back(std::move(task));
  }
  node.cv.notify_one();
}

void OsNetwork::worker_loop(NodeRec& node) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(node.mutex);
      node.cv.wait(lock, [&] {
        return !node.inbox.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (node.inbox.empty()) {
        if (!running_.load(std::memory_order_acquire)) return;
        continue;
      }
      task = std::move(node.inbox.front());
      node.inbox.pop_front();
    }
    if (task.fn) {
      task.fn();
    } else if (node.handler != nullptr) {
      node.handler->on_message(task.msg);
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv_.notify_all();
    }
  }
}

bool OsNetwork::wait_idle(util::Duration timeout) {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  return idle_cv_.wait_for(lock, std::chrono::nanoseconds(timeout), [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

// -- send path --------------------------------------------------------------

void OsNetwork::send(NodeId from, NodeId to, Channel channel,
                     Payload payload) {
  assert(to.value() < nodes_.size());
  const std::size_t size = payload.size();
  std::uint64_t seq = 0;
  {
    const std::lock_guard<std::mutex> lock(traffic_mutex_);
    traffic_.messages++;
    traffic_.bytes += size;
    if (from.value() < nodes_.size() &&
        nodes_[from.value()]->domain != nodes_[to.value()]->domain) {
      traffic_.wan_messages++;
      traffic_.wan_bytes += size;
    }
    seq = traffic_.messages;
  }

  NodeRec& dst = *nodes_[to.value()];
  if (dst.local) {
    Task task;
    task.msg.src = from;
    task.msg.dst = to;
    task.msg.channel = channel;
    task.msg.payload = std::move(payload);
    task.msg.sent_at = now();
    task.msg.seq = seq;
    enqueue_local(to.value(), std::move(task));
    return;
  }

  OutChunk chunk;
  chunk.header = encode_frame_header(
      from, to, static_cast<std::uint32_t>(channel), payload.size());
  chunk.payload = std::move(payload);
  bool need_wake = false;
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    std::shared_ptr<Conn> conn = route_for_locked(to.value());
    if (!conn) {
      ++os_stats_.dropped_no_route;
      return;
    }
    if (conn->outq_bytes + chunk.total() > config_.max_outbox_bytes) {
      ++os_stats_.dropped_overflow;
      return;
    }
    conn->outq_bytes += chunk.total();
    conn->outq.push_back(std::move(chunk));
    need_wake = true;
  }
  if (need_wake) wake();
}

/// Route selection (io_mutex_ held): sticky per node id.  First preference
/// is an already-assigned route (adopted from a handshake or a previous
/// send); otherwise the node's configured address names — or creates — the
/// one connection this process keeps toward that peer.
std::shared_ptr<OsNetwork::Conn> OsNetwork::route_for_locked(
    std::uint32_t dst) {
  const auto it = route_by_node_.find(dst);
  if (it != route_by_node_.end() && it->second->state != Conn::State::closed) {
    return it->second;
  }
  // A closed adopted route with no address cannot come back; forget it so
  // a configured address (if any) can take over.
  if (it != route_by_node_.end() && it->second->addr_key.empty()) {
    route_by_node_.erase(it);
  }
  const std::string& addr = nodes_[dst]->addr_key;
  if (addr.empty()) {
    const auto existing = route_by_node_.find(dst);
    return existing != route_by_node_.end() ? existing->second : nullptr;
  }
  auto route = route_by_addr_.find(addr);
  std::shared_ptr<Conn> conn;
  if (route != route_by_addr_.end()) {
    conn = route->second;
  } else {
    conn = std::make_shared<Conn>();
    conn->addr_key = addr;
    conn->state = Conn::State::closed;  // loop opens it on first flush
    route_by_addr_[addr] = conn;
  }
  route_by_node_[dst] = conn;
  if (conn->state == Conn::State::closed && !conn->reconnect_armed) {
    // Connect-on-first-send: hand the loop an immediately-due "reconnect".
    conn->reconnect_armed = true;
    reconnects_.emplace_back(now(), conn);
  }
  return conn;
}

// -- timers -----------------------------------------------------------------

TimerId OsNetwork::schedule(NodeId node, util::Duration delay,
                            std::function<void()> fn) {
  assert(node.value() < nodes_.size());
  assert(nodes_[node.value()]->local);
  PendingTimer t;
  t.at = now() + std::max<util::Duration>(delay, 0);
  t.node = node.value();
  t.fn = std::move(fn);
  TimerId id{0};
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    t.id = next_timer_++;
    id = TimerId{t.id};
    pending_timer_ids_.insert(t.id);
    timers_.push(std::move(t));
  }
  wake();
  return id;
}

void OsNetwork::cancel(TimerId id) {
  if (id.value() == 0) return;
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  // Only a timer still outstanding earns a tombstone: cancelling one that
  // already fired (or was never ours) must not grow state forever.
  if (pending_timer_ids_.count(id.value()) != 0) {
    cancelled_timers_.insert(id.value());
  }
}

std::size_t OsNetwork::cancelled_timer_backlog() const {
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  return cancelled_timers_.size();
}

void OsNetwork::run_due_timers() {
  while (true) {
    PendingTimer t;
    {
      const std::lock_guard<std::mutex> lock(timer_mutex_);
      if (timers_.empty() || timers_.top().at > now()) return;
      t = std::move(const_cast<PendingTimer&>(timers_.top()));
      timers_.pop();
      pending_timer_ids_.erase(t.id);
      const auto it = cancelled_timers_.find(t.id);
      if (it != cancelled_timers_.end()) {
        cancelled_timers_.erase(it);
        continue;
      }
    }
    Task task;
    task.fn = std::move(t.fn);
    enqueue_local(t.node, std::move(task));
  }
}

util::Duration OsNetwork::next_deadline_delay() {
  util::Duration delay = util::seconds(1);  // idle heartbeat
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    if (!timers_.empty()) {
      delay = std::min(delay, timers_.top().at - now());
    }
  }
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    for (const auto& [at, conn] : reconnects_) {
      delay = std::min(delay, at - now());
    }
  }
  return std::max<util::Duration>(delay, 0);
}

// -- event loop -------------------------------------------------------------

void OsNetwork::loop() {
  std::vector<PollerEvent> events;
  util::TimePoint flush_deadline = 0;
  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      if (flush_deadline == 0) {
        flush_deadline = now() + config_.stop_flush_timeout;
      }
      bool drained = true;
      {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        for (const auto& [fd, conn] : conns_by_fd_) {
          if (conn->state == Conn::State::open && !conn->outq.empty()) {
            drained = false;
            break;
          }
        }
      }
      if (drained || now() >= flush_deadline) break;
    }

    sync_write_interest();
    const util::Duration delay = next_deadline_delay();
    const int timeout_ms = static_cast<int>(
        std::min<util::Duration>(delay, util::seconds(1)) /
        util::kMillisecond);
    events.clear();
    poller_->wait(stopping ? 1 : std::max(timeout_ms, 0), events);

    for (const PollerEvent& ev : events) {
      if (ev.fd == wake_fds_[0]) {
        char buf[256];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        accept_ready();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        const auto it = conns_by_fd_.find(ev.fd);
        if (it != conns_by_fd_.end()) conn = it->second;
      }
      if (!conn) continue;
      if (ev.error) {
        close_conn(conn, "socket error");
        continue;
      }
      if (ev.writable) conn_writable(conn);
      if (ev.readable && conn->fd >= 0) conn_readable(conn);
    }

    run_due_timers();
    run_due_reconnects();
  }

  // Teardown: close every socket; queued frames (if any survive the flush
  // window) are dropped with the connections.
  std::vector<std::shared_ptr<Conn>> all;
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    for (const auto& [fd, conn] : conns_by_fd_) all.push_back(conn);
  }
  for (const auto& conn : all) close_conn(conn, "shutdown");
  if (listen_fd_ >= 0) {
    poller_->del(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OsNetwork::sync_write_interest() {
  // Senders only enqueue + wake; the loop owns poller interest.  Conn
  // counts here are per-peer-process, so the scan is tiny.
  const std::lock_guard<std::mutex> lock(io_mutex_);
  for (const auto& [fd, conn] : conns_by_fd_) {
    if (!conn->registered) continue;
    const bool want =
        conn->state == Conn::State::connecting || !conn->outq.empty();
    if (want != conn->want_write) {
      conn->want_write = want;
      poller_->mod(fd, /*read=*/true, /*write=*/want);
    }
  }
}

void OsNetwork::queue_hello(Conn& conn) {
  HelloFrame hello;
  hello.version = 1;
  hello.local_nodes = local_node_ids_;
  hello.listen_addr = listen_addr();
  OutChunk chunk;
  util::Bytes body = encode_hello(hello);
  chunk.header =
      encode_frame_header(NodeId{0}, NodeId{0}, kHelloChannel, body.size());
  chunk.payload = Payload(std::move(body));
  conn.outq_bytes += chunk.total();
  conn.outq.push_front(std::move(chunk));
}

void OsNetwork::accept_ready() {
  while (true) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) return;  // EAGAIN or transient error: try again on next tick
    make_nonblocking(fd);
    set_nodelay(fd);
    set_sndbuf(fd, config_.so_sndbuf);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->state = Conn::State::open;
    conn->inbound = true;
    conn->decoder = FrameDecoder(config_.max_frame_payload);
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      queue_hello(*conn);
      conns_by_fd_[fd] = conn;
      ++os_stats_.accepted;
    }
    conn->registered = true;
    conn->want_write = true;
    poller_->add(fd, /*read=*/true, /*write=*/true);
  }
}

void OsNetwork::start_connect(const std::shared_ptr<Conn>& conn) {
  std::string host;
  std::uint16_t port = 0;
  if (!split_addr_key(conn->addr_key, host, port)) {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    ++os_stats_.connect_failures;
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    arm_reconnect(conn);
    return;
  }
  make_nonblocking(fd);
  set_nodelay(fd);
  set_sndbuf(fd, config_.so_sndbuf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    const std::lock_guard<std::mutex> lock(io_mutex_);
    ++os_stats_.connect_failures;
    return;  // hopeless address: no retry
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      ++os_stats_.connect_failures;
    }
    arm_reconnect(conn);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    conn->fd = fd;
    conn->state = Conn::State::connecting;
    conn->decoder = FrameDecoder(config_.max_frame_payload);
    conn->hello_received = false;
    // Retransmission from the first incompletely-written frame: whatever
    // is still queued goes out again from byte 0 — the torn tail the dead
    // socket may have carried was discarded by the receiver's decoder.
    if (!conn->outq.empty()) conn->outq.front().offset = 0;
    queue_hello(*conn);
    conns_by_fd_[fd] = conn;
    ++os_stats_.connects;
    if (conn->reconnect_attempts > 0) ++os_stats_.reconnects;
  }
  conn->registered = true;
  conn->want_write = true;
  poller_->add(fd, /*read=*/true, /*write=*/true);
}

void OsNetwork::arm_reconnect(const std::shared_ptr<Conn>& conn) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  conn->reconnect_attempts++;
  const RetryPolicy& policy = config_.reconnect;
  if (conn->reconnect_attempts >= policy.max_attempts) {
    // Give up this cycle: drop what was queued; a later send() restarts.
    os_stats_.dropped_reconnect_exhausted += conn->outq.size();
    conn->outq.clear();
    conn->outq_bytes = 0;
    conn->reconnect_attempts = 0;
    conn->reconnect_armed = false;
    return;
  }
  const util::Duration delay =
      policy.backoff_after(conn->reconnect_attempts, reconnect_rng_);
  conn->reconnect_armed = true;
  reconnects_.emplace_back(now() + delay, conn);
}

void OsNetwork::run_due_reconnects() {
  std::vector<std::shared_ptr<Conn>> due;
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    auto it = reconnects_.begin();
    while (it != reconnects_.end()) {
      if (it->first <= now()) {
        due.push_back(std::move(it->second));
        it = reconnects_.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& conn : due) conn->reconnect_armed = false;
  }
  for (const auto& conn : due) {
    if (conn->state == Conn::State::closed) start_connect(conn);
  }
}

void OsNetwork::conn_writable(const std::shared_ptr<Conn>& conn) {
  if (conn->state == Conn::State::connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        ++os_stats_.connect_failures;
      }
      close_conn(conn, "connect failed");
      return;
    }
    const std::lock_guard<std::mutex> lock(io_mutex_);
    conn->state = Conn::State::open;
    conn->reconnect_attempts = 0;
  }
  flush(conn);
}

void OsNetwork::flush(const std::shared_ptr<Conn>& conn) {
  // The coalesced flush: gather queued frame headers + refcounted payload
  // bodies into one writev.  Only the loop pops chunks and only senders
  // push them, so deque *references* taken under the lock stay valid while
  // the syscall runs unlocked (push_back never moves existing elements).
  while (true) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t offered = 0;
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      for (auto it = conn->outq.begin();
           it != conn->outq.end() && niov + 2 <= kMaxIov; ++it) {
        OutChunk& c = *it;
        std::size_t off = c.offset;
        if (off < kFrameHeaderBytes) {
          iov[niov].iov_base = c.header.data() + off;
          iov[niov].iov_len = kFrameHeaderBytes - off;
          offered += iov[niov].iov_len;
          ++niov;
          off = 0;
        } else {
          off -= kFrameHeaderBytes;
        }
        if (c.payload.size() > off) {
          const util::Bytes& body = c.payload.bytes();
          iov[niov].iov_base =
              const_cast<std::uint8_t*>(body.data()) + off;
          iov[niov].iov_len = body.size() - off;
          offered += iov[niov].iov_len;
          ++niov;
        }
      }
    }
    if (niov == 0) return;
    const ssize_t written =
        ::writev(conn->fd, iov, static_cast<int>(niov));
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        ++os_stats_.eagain_writes;
        return;  // tail stays queued; poller interest re-arms it
      }
      close_conn(conn, "write failed");
      return;
    }
    bool more;
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      os_stats_.bytes_out += static_cast<std::uint64_t>(written);
      if (static_cast<std::size_t>(written) < offered) {
        ++os_stats_.partial_writes;
      }
      // Re-queue the unsent tail byte-exactly: advance offsets, pop only
      // fully-written frames.  Order is untouched — FIFO survives any
      // short write.
      std::size_t remaining = static_cast<std::size_t>(written);
      while (remaining > 0) {
        OutChunk& front = conn->outq.front();
        const std::size_t left = front.total() - front.offset;
        const std::size_t used = std::min(left, remaining);
        front.offset += used;
        remaining -= used;
        if (front.offset == front.total()) {
          conn->outq_bytes -= front.total();
          ++os_stats_.frames_out;
          conn->outq.pop_front();
        }
      }
      more = !conn->outq.empty() &&
             static_cast<std::size_t>(written) == offered;
    }
    if (!more) return;
  }
}

void OsNetwork::conn_readable(const std::shared_ptr<Conn>& conn) {
  std::uint8_t buf[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_conn(conn, "peer closed");
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(conn, "read failed");
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      os_stats_.bytes_in += static_cast<std::uint64_t>(n);
    }
    std::vector<Frame> frames;
    const util::Status st =
        conn->decoder.feed(buf, static_cast<std::size_t>(n), frames);
    if (!st.ok()) {
      {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        ++os_stats_.protocol_errors;
      }
      DISCOVER_LOG(warn, "osnet") << "framing error: " << st.error().message;
      close_conn(conn, "protocol error");
      return;
    }
    for (Frame& f : frames) handle_frame(conn, std::move(f));
    if (conn->fd < 0) return;  // a frame-level error closed it
  }
}

void OsNetwork::handle_frame(const std::shared_ptr<Conn>& conn,
                             Frame&& frame) {
  if (frame.is_hello()) {
    auto hello = decode_hello(frame.payload);
    if (!hello.ok()) {
      {
        const std::lock_guard<std::mutex> lock(io_mutex_);
        ++os_stats_.protocol_errors;
      }
      close_conn(conn, "bad hello");
      return;
    }
    conn->hello_received = true;
    adopt_routes(conn, hello.value());
    return;
  }
  if (!conn->hello_received) {
    {
      const std::lock_guard<std::mutex> lock(io_mutex_);
      ++os_stats_.protocol_errors;
    }
    close_conn(conn, "data before hello");
    return;
  }
  const std::uint32_t dst = frame.dst.value();
  const std::uint32_t src = frame.src.value();
  if (dst >= nodes_.size() || src >= nodes_.size() || !nodes_[dst]->local ||
      frame.channel_raw > static_cast<std::uint32_t>(Channel::giop)) {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    ++os_stats_.dropped_no_route;
    return;
  }
  Task task;
  task.msg.src = frame.src;
  task.msg.dst = frame.dst;
  task.msg.channel = frame.channel();
  task.msg.payload = Payload(std::move(frame.payload));
  task.msg.sent_at = now();  // receiver clock; processes share no epoch
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    task.msg.seq = ++recv_seq_;
    ++os_stats_.frames_in;
  }
  enqueue_local(dst, std::move(task));
}

void OsNetwork::adopt_routes(const std::shared_ptr<Conn>& conn,
                             const HelloFrame& hello) {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  // Keep one socket per peer pair: if the peer advertised its acceptor and
  // we have no route there yet, this connection becomes THE route.
  if (!hello.listen_addr.empty() && conn->addr_key.empty() &&
      route_by_addr_.find(hello.listen_addr) == route_by_addr_.end()) {
    conn->addr_key = hello.listen_addr;
    route_by_addr_[hello.listen_addr] = conn;
  }
  for (const std::uint32_t id : hello.local_nodes) {
    if (id >= nodes_.size() || nodes_[id]->local) continue;
    const auto it = route_by_node_.find(id);
    if (it == route_by_node_.end() ||
        it->second->state == Conn::State::closed) {
      route_by_node_[id] = conn;
    }
  }
}

void OsNetwork::close_conn(const std::shared_ptr<Conn>& conn,
                           const char* why) {
  if (conn->fd < 0) return;
  DISCOVER_LOG(debug, "osnet")
      << "close " << (conn->addr_key.empty() ? "<inbound>" : conn->addr_key)
      << ": " << why;
  if (conn->registered) poller_->del(conn->fd);
  ::close(conn->fd);
  bool retry = false;
  {
    const std::lock_guard<std::mutex> lock(io_mutex_);
    conns_by_fd_.erase(conn->fd);
    conn->fd = -1;
    conn->state = Conn::State::closed;
    conn->registered = false;
    conn->want_write = false;
    conn->hello_received = false;
    // A partially-written frame restarts from byte 0 on the next socket.
    if (!conn->outq.empty()) conn->outq.front().offset = 0;
    // Drop any queued hello: the reconnect path queues a fresh one.
    while (!conn->outq.empty() &&
           conn->outq.front().header[16] == 0xFF &&
           conn->outq.front().header[17] == 0xFF) {
      conn->outq_bytes -= conn->outq.front().total();
      conn->outq.pop_front();
    }
    retry = !conn->addr_key.empty() && !conn->outq.empty() &&
            !conn->reconnect_armed &&
            !stopping_.load(std::memory_order_acquire);
  }
  if (retry) arm_reconnect(conn);
}

// -- accounting -------------------------------------------------------------

TrafficStats OsNetwork::traffic() const {
  const std::lock_guard<std::mutex> lock(traffic_mutex_);
  return traffic_;
}

void OsNetwork::reset_traffic() {
  const std::lock_guard<std::mutex> lock(traffic_mutex_);
  traffic_ = {};
}

OsNetworkStats OsNetwork::os_stats() const {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  return os_stats_;
}

std::size_t OsNetwork::open_connections() const {
  const std::lock_guard<std::mutex> lock(io_mutex_);
  std::size_t n = 0;
  for (const auto& [fd, conn] : conns_by_fd_) {
    if (conn->state == Conn::State::open) ++n;
  }
  return n;
}

const std::string& OsNetwork::node_name(NodeId id) const {
  return nodes_.at(id.value())->name;
}

DomainId OsNetwork::node_domain(NodeId id) const {
  return nodes_.at(id.value())->domain;
}

}  // namespace discover::net
