#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "net/address.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace discover::net {

/// Reference-counted immutable wire payload.
///
/// A broadcast serializes its bytes ONCE and hands the same buffer to every
/// recipient: copying a Payload is a refcount bump, never a byte copy.  The
/// transports queue Payloads, so fault-injected duplicates and group fan-out
/// share one allocation no matter how many deliveries they expand into.
/// Converts implicitly from util::Bytes (wrapping, one allocation) and to
/// const util::Bytes& (zero-cost view), so single-recipient call sites read
/// exactly as before.
class Payload {
 public:
  Payload() : bytes_(empty_bytes()) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Bytes is the common case.
  Payload(util::Bytes b)
      : bytes_(std::make_shared<const util::Bytes>(std::move(b))) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Payload(std::shared_ptr<const util::Bytes> b)
      : bytes_(b ? std::move(b) : empty_bytes()) {}

  [[nodiscard]] const util::Bytes& bytes() const { return *bytes_; }
  // NOLINTNEXTLINE(google-explicit-constructor): view conversion.
  operator const util::Bytes&() const { return *bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_->size(); }
  [[nodiscard]] bool empty() const { return bytes_->empty(); }

 private:
  static const std::shared_ptr<const util::Bytes>& empty_bytes() {
    static const std::shared_ptr<const util::Bytes> kEmpty =
        std::make_shared<const util::Bytes>();
    return kEmpty;
  }

  std::shared_ptr<const util::Bytes> bytes_;
};

/// One datagram-with-reliable-FIFO-semantics between two nodes.  The
/// transports guarantee per-(src,dst,channel) FIFO delivery, mirroring the
/// TCP connections of the original system.
struct Message {
  NodeId src;
  NodeId dst;
  Channel channel = Channel::main_channel;
  Payload payload;

  // Filled in by the transport.
  util::TimePoint sent_at = 0;
  std::uint64_t seq = 0;
};

}  // namespace discover::net
