#pragma once

#include <cstdint>

#include "net/address.h"
#include "util/bytes.h"
#include "util/clock.h"

namespace discover::net {

/// One datagram-with-reliable-FIFO-semantics between two nodes.  The
/// transports guarantee per-(src,dst,channel) FIFO delivery, mirroring the
/// TCP connections of the original system.
struct Message {
  NodeId src;
  NodeId dst;
  Channel channel = Channel::main_channel;
  util::Bytes payload;

  // Filled in by the transport.
  util::TimePoint sent_at = 0;
  std::uint64_t seq = 0;
};

}  // namespace discover::net
