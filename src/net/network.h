// The transport abstraction every middleware component is written against.
//
// Execution model: each node is an actor.  Its MessageHandler::on_message
// and any scheduled timer callbacks run on a single logical thread, so node
// state needs no locking.  Two backends implement the contract:
//
//  * SimNetwork    - deterministic discrete-event simulation, virtual time.
//  * ThreadNetwork - one OS thread per node, real time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/message.h"
#include "util/clock.h"

namespace discover::net {

class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  /// Invoked in the destination node's execution context.
  virtual void on_message(const Message& msg) = 0;
};

/// Aggregate traffic counters kept by both backends.  WAN figures count
/// messages whose endpoints live in different domains — the quantity the
/// paper's collaboration-traffic argument (§5.2.3) is about.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wan_messages = 0;
  std::uint64_t wan_bytes = 0;
};

class Network {
 public:
  virtual ~Network() = default;

  /// Registers a node.  The handler must outlive the network (or be removed
  /// before destruction).  `domain` groups nodes into sites.
  virtual NodeId add_node(std::string name, MessageHandler* handler,
                          DomainId domain = DomainId{0}) = 0;

  /// FIFO send; payload is consumed.  Delivery is reliable by default but
  /// subject to the backend's fault plan: a backend configured with drop,
  /// duplication, jitter, partitions, or node crashes may lose, repeat, or
  /// delay the message.  Layers needing end-to-end reliability must retry
  /// (see net/retry.h).
  ///
  /// Payload converts implicitly from util::Bytes; broadcast call sites can
  /// instead build one Payload and pass the same instance to every send, in
  /// which case all copies (queueing, fault duplicates, fan-out) share one
  /// underlying buffer.
  virtual void send(NodeId from, NodeId to, Channel channel,
                    Payload payload) = 0;

  /// Runs `fn` in `node`'s execution context after `delay`.
  virtual TimerId schedule(NodeId node, util::Duration delay,
                           std::function<void()> fn) = 0;
  /// Best-effort cancel; a timer already fired (or firing) is unaffected.
  virtual void cancel(TimerId id) = 0;

  /// Runs `fn` in `node`'s context as soon as possible.
  TimerId post(NodeId node, std::function<void()> fn) {
    return schedule(node, 0, std::move(fn));
  }

  /// True when nodes on this backend may run multi-threaded internals
  /// (worker-shard pools).  The simulated backend must stay false: its
  /// determinism contract assumes one logical thread for everything, so a
  /// sharded node would break byte-identical replays.
  [[nodiscard]] virtual bool supports_sharding() const { return false; }

  [[nodiscard]] virtual util::TimePoint now() const = 0;
  [[nodiscard]] virtual const util::Clock& clock() const = 0;

  [[nodiscard]] virtual TrafficStats traffic() const = 0;
  virtual void reset_traffic() = 0;

  [[nodiscard]] virtual const std::string& node_name(NodeId id) const = 0;
  [[nodiscard]] virtual DomainId node_domain(NodeId id) const = 0;
};

}  // namespace discover::net
