#include "net/thread_network.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace discover::net {

namespace {

std::pair<std::uint32_t, std::uint32_t> unordered_pair(std::uint32_t a,
                                                       std::uint32_t b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

ThreadNetwork::ThreadNetwork() = default;

ThreadNetwork::~ThreadNetwork() { stop(); }

NodeId ThreadNetwork::add_node(std::string name, MessageHandler* handler,
                               DomainId domain) {
  if (started_) throw std::logic_error("add_node after start()");
  auto node = std::make_unique<NodeState>();
  node->name = std::move(name);
  node->handler = handler;
  node->domain = domain;
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

void ThreadNetwork::start() {
  if (started_) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  for (auto& node : nodes_) {
    node->worker = std::thread([this, n = node.get()] { worker_loop(*n); });
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
}

void ThreadNetwork::stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) {
    // Either never started or already stopped; join anything left.
  }
  running_.store(false, std::memory_order_release);
  timer_cv_.notify_all();
  for (auto& node : nodes_) node->cv.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  for (auto& node : nodes_) {
    if (node->worker.joinable()) node->worker.join();
  }
  // Timers discarded at stop prune their cancellation marks with them.
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  while (!timers_.empty()) timers_.pop();
  pending_timer_ids_.clear();
  cancelled_timers_.clear();
}

void ThreadNetwork::enqueue(std::uint32_t node_index, Task task) {
  NodeState& node = *nodes_[node_index];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(node.mutex);
    node.inbox.push_back(std::move(task));
  }
  node.cv.notify_one();
}

void ThreadNetwork::send(NodeId from, NodeId to, Channel channel,
                         Payload payload) {
  assert(to.value() < nodes_.size());
  const std::size_t size = payload.size();
  Task task;
  task.msg.src = from;
  task.msg.dst = to;
  task.msg.channel = channel;
  task.msg.payload = std::move(payload);
  task.msg.sent_at = now();
  {
    const std::lock_guard<std::mutex> lock(traffic_mutex_);
    traffic_.messages++;
    traffic_.bytes += size;
    if (nodes_[from.value()]->domain != nodes_[to.value()]->domain) {
      traffic_.wan_messages++;
      traffic_.wan_bytes += size;
    }
    task.msg.seq = traffic_.messages;
  }
  bool duplicate = false;
  {
    const std::lock_guard<std::mutex> lock(fault_mutex_);
    if (node_partitions_.count(unordered_pair(from.value(), to.value())) !=
        0) {
      ++faults_.partition_drops;
      return;
    }
    if (fault_plan_.drop_prob > 0 &&
        fault_rng_.chance(fault_plan_.drop_prob)) {
      ++faults_.dropped;
      return;
    }
    if (fault_plan_.duplicate_prob > 0 &&
        fault_rng_.chance(fault_plan_.duplicate_prob)) {
      ++faults_.duplicated;
      duplicate = true;
    }
  }
  if (duplicate) {
    Task copy;
    copy.msg = task.msg;
    enqueue(to.value(), std::move(copy));
  }
  enqueue(to.value(), std::move(task));
}

void ThreadNetwork::set_fault_seed(std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_rng_ = util::Rng(seed);
}

void ThreadNetwork::set_fault_plan(FaultPlan p) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_plan_ = p;
}

void ThreadNetwork::partition(NodeId a, NodeId b) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  node_partitions_.insert(unordered_pair(a.value(), b.value()));
}

void ThreadNetwork::heal(NodeId a, NodeId b) {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  node_partitions_.erase(unordered_pair(a.value(), b.value()));
}

FaultStats ThreadNetwork::fault_stats() const {
  const std::lock_guard<std::mutex> lock(fault_mutex_);
  return faults_;
}

TimerId ThreadNetwork::schedule(NodeId node, util::Duration delay,
                                std::function<void()> fn) {
  assert(node.value() < nodes_.size());
  PendingTimer t;
  t.at = now() + std::max<util::Duration>(delay, 0);
  t.node = node.value();
  t.fn = std::move(fn);
  TimerId id{0};
  {
    const std::lock_guard<std::mutex> lock(timer_mutex_);
    t.id = next_timer_++;
    id = TimerId{t.id};
    pending_timer_ids_.insert(t.id);
    timers_.push(std::move(t));
  }
  timer_cv_.notify_one();
  return id;
}

void ThreadNetwork::cancel(TimerId id) {
  if (id.value() == 0) return;
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  // A tombstone is only worth keeping while the timer can still fire;
  // recording ids of already-fired timers grew this set without bound.
  if (pending_timer_ids_.count(id.value()) != 0) {
    cancelled_timers_.insert(id.value());
  }
}

std::size_t ThreadNetwork::cancelled_timer_backlog() const {
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  return cancelled_timers_.size();
}

std::size_t ThreadNetwork::pending_timer_count() const {
  const std::lock_guard<std::mutex> lock(timer_mutex_);
  return pending_timer_ids_.size();
}

TrafficStats ThreadNetwork::traffic() const {
  const std::lock_guard<std::mutex> lock(traffic_mutex_);
  return traffic_;
}

void ThreadNetwork::reset_traffic() {
  const std::lock_guard<std::mutex> lock(traffic_mutex_);
  traffic_ = {};
}

const std::string& ThreadNetwork::node_name(NodeId id) const {
  return nodes_.at(id.value())->name;
}

DomainId ThreadNetwork::node_domain(NodeId id) const {
  return nodes_.at(id.value())->domain;
}

void ThreadNetwork::worker_loop(NodeState& node) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(node.mutex);
      node.cv.wait(lock, [&] {
        return !node.inbox.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (node.inbox.empty()) {
        if (!running_.load(std::memory_order_acquire)) return;
        continue;
      }
      task = std::move(node.inbox.front());
      node.inbox.pop_front();
    }
    if (task.fn) {
      task.fn();
    } else if (node.handler != nullptr) {
      node.handler->on_message(task.msg);
    }
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv_.notify_all();
    }
  }
}

void ThreadNetwork::timer_loop() {
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (running_.load(std::memory_order_acquire)) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const util::TimePoint next_at = timers_.top().at;
    const util::TimePoint current = now();
    if (next_at > current) {
      timer_cv_.wait_for(lock, std::chrono::nanoseconds(next_at - current));
      continue;
    }
    PendingTimer t = std::move(const_cast<PendingTimer&>(timers_.top()));
    timers_.pop();
    pending_timer_ids_.erase(t.id);
    const auto it = cancelled_timers_.find(t.id);
    if (it != cancelled_timers_.end()) {
      cancelled_timers_.erase(it);
      continue;
    }
    lock.unlock();
    Task task;
    task.fn = std::move(t.fn);
    enqueue(t.node, std::move(task));
    lock.lock();
  }
}

bool ThreadNetwork::wait_idle(util::Duration timeout) {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  return idle_cv_.wait_for(lock, std::chrono::nanoseconds(timeout), [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace discover::net
