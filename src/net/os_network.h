// Real OS-socket transport: the net::Network contract over TCP.
//
// Sim and Thread backends move bytes in-process; this backend puts them on
// the wire, which is what "global access" in the paper actually requires.
// Shape (after RethinkDB's conn_acceptor / event-queue split):
//
//  * one nonblocking event-loop thread — epoll on Linux, poll(2) fallback —
//    owns the listening acceptor, every connection's reads/writes, and the
//    timer wheel;
//  * one worker thread per *local* node (actor model, exactly like
//    ThreadNetwork): handlers and timer callbacks run on the node's own
//    worker, never on the I/O thread;
//  * one TCP connection per peer process carries every channel of every
//    (src, dst) pair as length-prefixed frames (net/frame_codec.h), FIFO;
//  * writes are coalesced: send() queues the refcounted net::Payload —
//    encode-once buffers are never copied into the socket layer — and the
//    event loop flushes with writev(), handling EAGAIN / short writes by
//    re-queueing the unsent tail.
//
// Node ids are a *global* space coordinated by construction order: every
// process creates the same topology, calling add_node() for the nodes it
// hosts and add_remote() for everyone else, in the same order (the role the
// server's well-known IP plays in the paper).  A connection handshake
// additionally advertises the sender's local nodes, so replies can flow
// back over an inbound connection even to a peer that never listened.
//
// Delivery semantics match the Network contract: reliable FIFO per
// (src, dst, channel) while a connection lives; frames queued across a
// connection loss are retransmitted from the first incompletely-written
// frame after reconnect (no duplication, no reordering — the receiver
// discards a torn frame tail with the dead connection).  Frames lost in
// flight are gone, exactly like a real WAN: end-to-end reliability stays
// with the retry layers above (net/retry.h).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/frame_codec.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"

namespace discover::net {

struct OsNetworkConfig {
  std::string listen_host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with listen_port().
  std::uint16_t listen_port = 0;
  /// A pure-client process (all sends flow over its outbound connections)
  /// may turn the acceptor off entirely.
  bool listen = true;
  /// false forces the portable poll(2) event loop even where epoll exists.
  bool use_epoll = true;
  std::size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Per-connection cap on queued-but-unsent bytes; sends beyond it are
  /// dropped and counted (slow peer = bounded memory, like the outboxes).
  std::size_t max_outbox_bytes = 256u << 20;
  /// Reconnect schedule after a connection to a configured address fails.
  /// Attempts reset on success; when exhausted the queued frames are
  /// dropped (counted) and the next send() starts a fresh cycle.
  RetryPolicy reconnect{/*max_attempts=*/8,
                        /*initial_backoff=*/util::milliseconds(20),
                        /*multiplier=*/2.0,
                        /*max_backoff=*/util::seconds(2),
                        /*jitter=*/0.0};
  /// stop() flushes queued writes for at most this long before closing.
  util::Duration stop_flush_timeout = util::seconds(2);
  /// When nonzero, shrinks SO_SNDBUF on every connection.  Tests use a tiny
  /// value to force EAGAIN / short writev deterministically and pin the
  /// re-queue-the-tail path; production leaves the kernel default.
  int so_sndbuf = 0;
};

/// Transport-level counters (send-side TrafficStats stay in traffic()).
struct OsNetworkStats {
  std::uint64_t accepted = 0;
  std::uint64_t connects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t partial_writes = 0;   // writev consumed less than offered
  std::uint64_t eagain_writes = 0;    // writev said try again later
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_overflow = 0;
  std::uint64_t dropped_reconnect_exhausted = 0;
  std::uint64_t protocol_errors = 0;
};

class OsNetwork final : public Network {
 public:
  explicit OsNetwork(OsNetworkConfig config = {});
  ~OsNetwork() override;

  OsNetwork(const OsNetwork&) = delete;
  OsNetwork& operator=(const OsNetwork&) = delete;

  /// Registers a node hosted by THIS process.  All nodes (local and
  /// remote) must be added before start(), in the same order everywhere.
  NodeId add_node(std::string name, MessageHandler* handler,
                  DomainId domain = DomainId{0}) override;

  /// Registers a node hosted by another process reachable at host:port.
  /// Connect happens lazily on first send toward that address.
  NodeId add_remote(std::string name, std::string host, std::uint16_t port,
                    DomainId domain = DomainId{0});

  /// Binds the acceptor (typed Errc::unavailable when the port is taken),
  /// then spawns the event loop and the per-local-node workers.
  [[nodiscard]] util::Status start();
  /// Orderly teardown: drains queued writes (bounded by
  /// stop_flush_timeout), closes every socket, joins all threads, drops
  /// queued inbox work.  Idempotent.
  void stop();

  /// Bound acceptor port (valid after start(); 0 when listen=false).
  [[nodiscard]] std::uint16_t listen_port() const { return bound_port_; }
  [[nodiscard]] std::string listen_addr() const;

  void send(NodeId from, NodeId to, Channel channel,
            Payload payload) override;
  TimerId schedule(NodeId node, util::Duration delay,
                   std::function<void()> fn) override;
  void cancel(TimerId id) override;
  [[nodiscard]] util::TimePoint now() const override { return clock_.now(); }
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] TrafficStats traffic() const override;
  void reset_traffic() override;
  [[nodiscard]] const std::string& node_name(NodeId id) const override;
  [[nodiscard]] DomainId node_domain(NodeId id) const override;
  /// Every local node has its own worker thread; sharded nodes are fine.
  [[nodiscard]] bool supports_sharding() const override { return true; }

  /// Blocks until no *local* task is queued or executing (in-flight TCP
  /// bytes don't count — the wire has no global idle), or until timeout.
  bool wait_idle(util::Duration timeout);

  [[nodiscard]] OsNetworkStats os_stats() const;
  /// Outstanding cancelled-but-unfired timer ids (bounded by live timers;
  /// the soak test pins the invariant for both timer owners).
  [[nodiscard]] std::size_t cancelled_timer_backlog() const;
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Task {
    Message msg;
    std::function<void()> fn;  // non-null => timer task
  };

  struct NodeRec {
    std::string name;
    MessageHandler* handler = nullptr;  // null => remote
    DomainId domain{0};
    bool local = false;
    std::string addr_key;  // "host:port" for remote nodes
    // Worker state (local nodes only).
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Task> inbox;
    std::thread worker;
  };

  /// One queued frame: fixed header + refcounted payload, scatter-gathered
  /// by writev.  `offset` counts bytes of (header + payload) already on the
  /// wire; a chunk is popped only once offset == total(), so the unsent
  /// tail after EAGAIN / a short write is simply what remains queued.
  struct OutChunk {
    std::array<std::uint8_t, kFrameHeaderBytes> header;
    Payload payload;
    std::size_t offset = 0;
    [[nodiscard]] std::size_t total() const {
      return kFrameHeaderBytes + payload.size();
    }
  };

  struct Conn {
    int fd = -1;
    enum class State { connecting, open, closed } state = State::closed;
    bool inbound = false;
    bool hello_received = false;
    std::string addr_key;  // reconnectable address; may be empty (inbound)
    FrameDecoder decoder;
    std::deque<OutChunk> outq;
    std::size_t outq_bytes = 0;
    bool registered = false;   // known to the poller
    bool want_write = false;   // current poller write interest
    std::uint32_t reconnect_attempts = 0;
    bool reconnect_armed = false;
  };

  struct PendingTimer {
    util::TimePoint at;
    std::uint64_t id;
    std::uint32_t node;
    std::function<void()> fn;
    bool operator>(const PendingTimer& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  class Poller;
  class EpollPoller;
  class PollFdPoller;

  void loop();
  void worker_loop(NodeRec& node);
  void enqueue_local(std::uint32_t node_index, Task task);
  void wake();

  // Event-loop internals (called only from loop()):
  void accept_ready();
  void conn_readable(const std::shared_ptr<Conn>& conn);
  void conn_writable(const std::shared_ptr<Conn>& conn);
  void flush(const std::shared_ptr<Conn>& conn);
  void close_conn(const std::shared_ptr<Conn>& conn, const char* why);
  void handle_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  void adopt_routes(const std::shared_ptr<Conn>& conn,
                    const HelloFrame& hello);
  void start_connect(const std::shared_ptr<Conn>& conn);
  void arm_reconnect(const std::shared_ptr<Conn>& conn);
  void run_due_reconnects();
  void run_due_timers();
  void sync_write_interest();
  [[nodiscard]] util::Duration next_deadline_delay();
  void queue_hello(Conn& conn);

  // Shared helpers (any thread, take io_mutex_):
  std::shared_ptr<Conn> route_for_locked(std::uint32_t dst);

  OsNetworkConfig config_;
  util::SystemClock clock_;
  std::vector<std::unique_ptr<NodeRec>> nodes_;
  std::vector<std::uint32_t> local_node_ids_;
  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int wake_fds_[2] = {-1, -1};
  std::unique_ptr<Poller> poller_;
  std::thread loop_thread_;

  mutable std::mutex io_mutex_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_by_fd_;
  std::map<std::string, std::shared_ptr<Conn>> route_by_addr_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Conn>> route_by_node_;
  // (deadline, conn) pairs the loop retries when due.
  std::vector<std::pair<util::TimePoint, std::shared_ptr<Conn>>> reconnects_;
  std::uint64_t recv_seq_ = 0;
  util::Rng reconnect_rng_{0x05ce7ULL};
  OsNetworkStats os_stats_;

  mutable std::mutex timer_mutex_;
  std::priority_queue<PendingTimer, std::vector<PendingTimer>, std::greater<>>
      timers_;
  // Leak-proof cancellation bookkeeping (same scheme as ThreadNetwork
  // post-fix): `cancelled ⊆ pending`, so the set can never outgrow the
  // timers actually outstanding.
  std::unordered_set<std::uint64_t> pending_timer_ids_;
  std::unordered_set<std::uint64_t> cancelled_timers_;
  std::uint64_t next_timer_ = 1;

  std::atomic<std::uint64_t> inflight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  mutable std::mutex traffic_mutex_;
  TrafficStats traffic_;
};

}  // namespace discover::net
