// Fault-injection model for the transports.
//
// A FaultPlan describes the misbehaviour of one link (or link class):
// probabilistic message drop and duplication plus extra delivery jitter.
// Partitions and node crashes are separate, explicitly toggled states on
// the backend (see SimNetwork/ThreadNetwork).  All randomness flows from a
// backend-owned seeded Rng so chaos runs are exactly reproducible.
#pragma once

#include <cstdint>

#include "util/clock.h"

namespace discover::net {

struct FaultPlan {
  /// Probability in [0,1] that a message silently vanishes in transit.
  double drop_prob = 0;
  /// Probability in [0,1] that a message is delivered twice (the copy gets
  /// its own jitter draw, so duplicates may reorder past later traffic).
  double duplicate_prob = 0;
  /// Extra delivery delay drawn uniformly from [0, jitter_max] per message.
  util::Duration jitter_max = 0;

  [[nodiscard]] bool active() const {
    return drop_prob > 0 || duplicate_prob > 0 || jitter_max > 0;
  }
};

/// Counters kept by a fault-injecting backend; useful for asserting that a
/// chaos scenario actually exercised the failure paths it claims to.
struct FaultStats {
  std::uint64_t dropped = 0;          // lost to drop_prob
  std::uint64_t duplicated = 0;       // extra copies delivered
  std::uint64_t partition_drops = 0;  // lost to an active partition
  std::uint64_t crash_drops = 0;      // lost because an endpoint is down
};

}  // namespace discover::net
