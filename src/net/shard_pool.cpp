#include "net/shard_pool.h"

#include <chrono>

namespace discover::net {

namespace {
thread_local std::size_t tl_current_shard = ShardPool::kNotAShard;
}  // namespace

ShardPool::ShardPool(std::size_t shards) {
  if (shards == 0) shards = 1;
  workers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

ShardPool::~ShardPool() { stop(); }

void ShardPool::start() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (started_ || stopped_.load(std::memory_order_acquire)) return;
  started_ = true;
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

void ShardPool::stop() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  running_.store(false, std::memory_order_release);
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      while (!worker->queue.empty()) {
        worker->queue.pop_front();
        finish_task();
      }
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardPool::post(std::size_t shard, std::function<void()> fn) {
  if (shard >= workers_.size() || !fn) return;
  Worker& worker = *workers_[shard];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    // After stop() we drop the task, like a stopped ThreadNetwork drops
    // queued deliveries.  Before start() we accept and hold until the
    // workers spin up.
    if (!stopped_.load(std::memory_order_acquire)) {
      worker.queue.push_back(std::move(fn));
      accepted = true;
    }
  }
  if (accepted) {
    worker.cv.notify_one();
  } else {
    finish_task();
  }
}

bool ShardPool::wait_idle(util::Duration timeout) {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  return idle_cv_.wait_for(lock, std::chrono::nanoseconds(timeout), [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

std::size_t ShardPool::current_shard() { return tl_current_shard; }

void ShardPool::worker_loop(std::size_t index) {
  tl_current_shard = index;
  Worker& worker = *workers_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(lock, [&] {
        return !worker.queue.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (!running_.load(std::memory_order_acquire)) break;
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    task();
    finish_task();
  }
  tl_current_shard = kNotAShard;
}

void ShardPool::finish_task() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

}  // namespace discover::net
