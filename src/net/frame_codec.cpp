#include "net/frame_codec.h"

#include <algorithm>
#include <cstring>

#include "wire/cdr.h"

namespace discover::net {

namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));  // little-endian host, as wire/cdr.h assumes
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::array<std::uint8_t, kFrameHeaderBytes> encode_frame_header(
    NodeId src, NodeId dst, std::uint32_t channel_raw,
    std::size_t payload_size) {
  std::array<std::uint8_t, kFrameHeaderBytes> h;
  put_u32(h.data(), kFrameMagic);
  put_u32(h.data() + 4,
          static_cast<std::uint32_t>(kFrameHeadTail + payload_size));
  put_u32(h.data() + 8, src.value());
  put_u32(h.data() + 12, dst.value());
  put_u32(h.data() + 16, channel_raw);
  return h;
}

util::Bytes encode_frame(NodeId src, NodeId dst, std::uint32_t channel_raw,
                         const util::Bytes& payload) {
  const auto header =
      encode_frame_header(src, dst, channel_raw, payload.size());
  util::Bytes out;
  out.reserve(header.size() + payload.size());
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

util::Bytes encode_hello(const HelloFrame& hello) {
  wire::Encoder e;
  e.u32(hello.version);
  e.sequence(hello.local_nodes,
             [](wire::Encoder& enc, std::uint32_t id) { enc.u32(id); });
  e.str(hello.listen_addr);
  return std::move(e).take();
}

util::Result<HelloFrame> decode_hello(const util::Bytes& body) {
  try {
    wire::Decoder d(body);
    HelloFrame hello;
    hello.version = d.u32();
    hello.local_nodes =
        d.sequence<std::uint32_t>([](wire::Decoder& dec) { return dec.u32(); });
    hello.listen_addr = d.str();
    d.finish();
    return hello;
  } catch (const wire::DecodeError& e) {
    return util::Error{util::Errc::protocol_error,
                       std::string("bad hello frame: ") + e.what()};
  }
}

util::Status FrameDecoder::feed(const std::uint8_t* data, std::size_t size,
                                std::vector<Frame>& out) {
  std::size_t i = 0;
  while (i < size) {
    if (header_have_ < kFrameHeaderBytes) {
      // Accumulate the fixed header.  The cap verdict falls as soon as the
      // length field (first 8 bytes) is complete — before a single payload
      // byte is buffered, so a hostile length can never size an allocation.
      const std::size_t want = kFrameHeaderBytes - header_have_;
      const std::size_t take = std::min(want, size - i);
      std::memcpy(header_.data() + header_have_, data + i, take);
      header_have_ += take;
      i += take;
      if (header_have_ >= 8 && !length_checked_) {
        if (get_u32(header_.data()) != kFrameMagic) {
          return {util::Errc::protocol_error, "bad frame magic"};
        }
        const std::uint32_t length = get_u32(header_.data() + 4);
        if (length < kFrameHeadTail) {
          return {util::Errc::protocol_error,
                  "frame length below header size"};
        }
        payload_need_ = length - kFrameHeadTail;
        if (payload_need_ > max_payload_) {
          return {util::Errc::protocol_error,
                  "frame payload " + std::to_string(payload_need_) +
                      " exceeds cap " + std::to_string(max_payload_)};
        }
        length_checked_ = true;
      }
      if (header_have_ < kFrameHeaderBytes) continue;
      payload_.clear();
      payload_.reserve(payload_need_);
    }
    const std::size_t want = payload_need_ - payload_.size();
    const std::size_t take = std::min(want, size - i);
    payload_.insert(payload_.end(), data + i, data + i + take);
    i += take;
    if (payload_.size() < payload_need_) break;
    Frame f;
    f.src = NodeId{get_u32(header_.data() + 8)};
    f.dst = NodeId{get_u32(header_.data() + 12)};
    f.channel_raw = get_u32(header_.data() + 16);
    f.payload = std::move(payload_);
    out.push_back(std::move(f));
    payload_ = {};
    header_have_ = 0;
    payload_need_ = 0;
    length_checked_ = false;
  }
  return {};
}

}  // namespace discover::net
