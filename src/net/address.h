// Node addressing and logical channels.
#pragma once

#include <cstdint>
#include <string>

#include "util/ids.h"

namespace discover::net {

struct NodeIdTag {};
/// Identifies one host on the (simulated) network.  Plays the role the
/// server's IP address plays in the paper — e.g. application identifiers
/// embed the host server's NodeId so any server can tell local from remote.
using NodeId = util::StrongId<NodeIdTag, std::uint32_t>;

struct DomainIdTag {};
/// An administrative domain / site (e.g. "Rutgers", "UT Austin").  Traffic
/// between different domains is WAN traffic for accounting purposes.
using DomainId = util::StrongId<DomainIdTag, std::uint32_t>;

struct TimerIdTag {};
using TimerId = util::StrongId<TimerIdTag, std::uint64_t>;

/// Logical communication channels (paper §4.1 and §5.1): three channels
/// between a server and an application, a fourth between servers, plus the
/// client-facing HTTP stream and the ORB's GIOP stream.
enum class Channel : std::uint8_t {
  main_channel = 0,  // application registration + periodic updates
  command = 1,       // client interaction requests toward the application
  response = 2,      // application responses to interaction requests
  control = 3,       // server-to-server errors and system events
  http = 4,          // client <-> server portal traffic
  giop = 5,          // server <-> server ORB requests/replies
};

const char* channel_name(Channel c);

}  // namespace discover::net
