// HTTP-facing side of DiscoverServer: the master, command, collaboration
// and archive servlets (paper §4.1's core service handlers).
#include <algorithm>
#include <iterator>
#include <memory>

#include "core/server.h"
#include "util/log.h"

namespace discover::core {

namespace {

http::HttpResponse body_response(int status, util::Bytes body) {
  http::HttpResponse resp;
  resp.status = status;
  resp.headers.set("Content-Type", "application/x-discover");
  resp.body = std::move(body);
  return resp;
}

void set_body(http::HttpResponse& resp, util::Bytes body) {
  resp.headers.set("Content-Type", "application/x-discover");
  resp.body = std::move(body);
}

/// 503 + Retry-After (whole seconds, rounded up) for admission rejections.
/// Mutates in place so the container's correlation/session headers survive.
void set_admission(http::HttpResponse& resp, util::Bytes body,
                   util::Duration retry_after) {
  set_body(resp, std::move(body));
  resp.status = 503;
  resp.headers.set("Retry-After",
                   std::to_string((retry_after + util::kSecond - 1) /
                                  util::kSecond));
}

http::HttpResponse admission_response(util::Bytes body,
                                      util::Duration retry_after) {
  http::HttpResponse resp;
  set_admission(resp, std::move(body), retry_after);
  return resp;
}

}  // namespace

// ---------------------------------------------------------------------------
// Master servlet: "the client's gateway to the server" (paper §4.1)
// ---------------------------------------------------------------------------

class DiscoverServer::MasterServlet final : public http::Servlet {
 public:
  explicit MasterServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    const std::string path = request.path_without_query();
    try {
      if (path == kPathLogin) {
        login(request, response, ctx);
      } else if (path == kPathSelect) {
        select(request, response, ctx);
      } else if (path == kPathLogout) {
        logout(request, response, ctx);
      } else {
        response.status = 404;
      }
    } catch (const wire::DecodeError& err) {
      response = body_response(400, util::to_bytes(err.what()));
    }
  }

 private:
  void login(const http::HttpRequest& request, http::HttpResponse& response,
             http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const proto::LoginRequest req = proto::decode_login_request(request.body);
    // Stage latency, decided at entry so the peer fan-out path measures
    // request arrival -> deferred completion.
    const bool timed = s.stage_sample() && s.stage_login_ != nullptr;
    const util::TimePoint t0 = ctx.now;

    if (s.sharded()) {
      login_sharded(req, ctx, timed, t0);
      return;
    }

    proto::LoginReply reply;
    // Admission control (flash crowds): refuse NEW sessions at the cap.  A
    // client that already holds a session here may always re-login — its
    // retry must not be punished by the crowd it is part of.
    if (s.config_.max_sessions != 0 &&
        s.sessions_.size() >= s.config_.max_sessions &&
        s.sessions_.count(ctx.session->id()) == 0) {
      reply.ok = false;
      reply.admission = proto::AdmissionError::server_sessions;
      reply.retry_after = s.config_.admission_retry_after;
      reply.message = s.config_.name + " is full (" +
                      std::to_string(s.sessions_.size()) + " sessions)";
      ++s.stats_.admission_rejected_logins;
      ++s.stats_.logins_failed;
      set_admission(response, proto::encode_body(reply), reply.retry_after);
      return;
    }
    // Level-1 authentication against local application ACLs (§5.2.2).
    if (!s.authenticate_local(req.user, req.password_digest)) {
      reply.ok = false;
      reply.message = "unknown user or bad password at " + s.config_.name;
      ++s.stats_.logins_failed;
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }
    reply.ok = true;
    reply.message = "welcome to " + s.config_.name;
    reply.token = s.tokens_.issue(req.user, s.network_.now(),
                                  s.config_.token_ttl);
    reply.applications = s.visible_apps(req.user);
    ++s.stats_.logins_ok;

    // Bind (or refresh) the server-side client session.
    ClientSession& session = s.sessions_[ctx.session->id()];
    session.key = ctx.session->id();
    session.user = req.user;
    session.client_node = ctx.client;

    // Cross-server authentication fan-out: ask every known peer's
    // DiscoverCorbaServer for this user's applications (§5.2.2).  Suspect
    // peers are skipped — waiting out their timeout would stall every
    // login for nothing.
    std::vector<Peer*> live_peers;
    for (auto& [node, peer] : s.peers_) {
      if (!peer.suspect) live_peers.push_back(&peer);
    }
    if (live_peers.empty()) {
      set_body(response, proto::encode_body(reply));
      if (timed) s.stage_login_->record(s.network_.now() - t0);
      return;
    }

    auto deferred = ctx.defer();
    struct FanOut {
      proto::LoginReply reply;
      std::size_t remaining;
      std::shared_ptr<http::DeferredHttpReply> out;
    };
    auto state = std::make_shared<FanOut>();
    state->reply = std::move(reply);
    state->remaining = live_peers.size();
    state->out = deferred;
    for (Peer* peer : live_peers) {
      wire::Encoder args;
      args.str(req.user);
      args.u64(req.password_digest);
      s.invoke_peer(
          peer->node, peer->server_ref, "authenticate", std::move(args),
          [state, &s, timed, t0](util::Result<util::Bytes> r) {
            if (r.ok()) {
              wire::Decoder d(r.value());
              if (d.boolean()) {
                const std::uint32_t n = d.u32();
                for (std::uint32_t i = 0; i < n; ++i) {
                  state->reply.applications.push_back(
                      proto::decode_app_info(d));
                }
              }
            }
            if (--state->remaining == 0) {
              if (timed) s.stage_login_->record(s.network_.now() - t0);
              state->out->complete(
                  body_response(200, proto::encode_body(state->reply)));
            }
          },
          s.config_.login_fanout_timeout);
    }
  }

  // Sharded login (DESIGN.md §5i): applications — and with them the user
  // ACLs — are striped across cores, so authentication and the visible-app
  // directory need one hop through every core.  The gather also sums the
  // per-core session counts for the server-wide admission cap.
  void login_sharded(const proto::LoginRequest& req, http::ServletContext& ctx,
                     bool timed, util::TimePoint t0) {
    DiscoverServer& s = server_;
    struct Gather {
      bool found = false;
      std::vector<proto::AppInfo> applications;
      std::size_t total_sessions = 0;
    };
    auto acc = std::make_shared<Gather>();
    auto deferred = ctx.defer();
    const std::uint64_t session_key = ctx.session->id();
    const net::NodeId client_node = ctx.client;
    const proto::LoginRequest r = req;
    s.gather_across_cores(
        [acc, r](DiscoverServer& core) {
          acc->found |=
              core.authenticate_local(r.user, r.password_digest);
          auto apps = core.visible_apps(r.user);
          acc->applications.insert(acc->applications.end(),
                                   std::make_move_iterator(apps.begin()),
                                   std::make_move_iterator(apps.end()));
          acc->total_sessions += core.sessions_.size();
        },
        [acc, deferred, r, session_key, client_node, timed, t0, &s] {
          proto::LoginReply reply;
          if (s.config_.max_sessions != 0 &&
              acc->total_sessions >= s.config_.max_sessions &&
              s.sessions_.count(session_key) == 0) {
            reply.ok = false;
            reply.admission = proto::AdmissionError::server_sessions;
            reply.retry_after = s.config_.admission_retry_after;
            reply.message = s.config_.name + " is full (" +
                            std::to_string(acc->total_sessions) +
                            " sessions)";
            ++s.stats_.admission_rejected_logins;
            ++s.stats_.logins_failed;
            deferred->complete(admission_response(proto::encode_body(reply),
                                                  reply.retry_after));
            return;
          }
          if (!acc->found) {
            reply.ok = false;
            reply.message =
                "unknown user or bad password at " + s.config_.name;
            ++s.stats_.logins_failed;
            deferred->complete(
                body_response(401, proto::encode_body(reply)));
            return;
          }
          reply.ok = true;
          reply.message = "welcome to " + s.config_.name;
          // Tokens verify on every core: same node id, same secret.
          reply.token = s.tokens_.issue(r.user, s.network_.now(),
                                        s.config_.token_ttl);
          // Core visit order is deterministic but an implementation detail;
          // present the directory in app-id order like a single core would.
          std::sort(acc->applications.begin(), acc->applications.end(),
                    [](const proto::AppInfo& a, const proto::AppInfo& b) {
                      return a.id < b.id;
                    });
          reply.applications = std::move(acc->applications);
          ++s.stats_.logins_ok;
          ClientSession& session = s.sessions_[session_key];
          session.key = session_key;
          session.user = r.user;
          session.client_node = client_node;

          // Cross-server authentication fan-out, same as the unsharded
          // path: peers are mirrored to every core (§5j), so this core
          // can ask each live peer's DiscoverCorbaServer directly.
          std::vector<Peer*> live_peers;
          for (auto& [node, peer] : s.peers_) {
            if (!peer.suspect) live_peers.push_back(&peer);
          }
          if (live_peers.empty()) {
            if (timed) s.stage_login_->record(s.network_.now() - t0);
            deferred->complete(
                body_response(200, proto::encode_body(reply)));
            return;
          }
          struct FanOut {
            proto::LoginReply reply;
            std::size_t remaining;
            std::shared_ptr<http::DeferredHttpReply> out;
          };
          auto state = std::make_shared<FanOut>();
          state->reply = std::move(reply);
          state->remaining = live_peers.size();
          state->out = deferred;
          for (Peer* peer : live_peers) {
            wire::Encoder args;
            args.str(r.user);
            args.u64(r.password_digest);
            s.invoke_peer(
                peer->node, peer->server_ref, "authenticate",
                std::move(args),
                [state, &s, timed, t0](util::Result<util::Bytes> rr) {
                  if (rr.ok()) {
                    wire::Decoder d(rr.value());
                    if (d.boolean()) {
                      const std::uint32_t n = d.u32();
                      for (std::uint32_t i = 0; i < n; ++i) {
                        state->reply.applications.push_back(
                            proto::decode_app_info(d));
                      }
                    }
                  }
                  if (--state->remaining == 0) {
                    if (timed) {
                      s.stage_login_->record(s.network_.now() - t0);
                    }
                    state->out->complete(body_response(
                        200, proto::encode_body(state->reply)));
                  }
                },
                s.config_.login_fanout_timeout);
          }
        });
  }

  void select(const http::HttpRequest& request, http::HttpResponse& response,
              http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const proto::SelectAppRequest req =
        proto::decode_select_app_request(request.body);

    proto::SelectAppReply reply;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      reply.message = v.error().message;
      ++s.stats_.selects_failed;
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr) {
      reply.message = "no active login session";
      ++s.stats_.selects_failed;
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }

    const std::string user = req.token.user;
    const std::uint64_t session_key = session->key;
    const proto::AppId app_id = req.app_id;
    auto deferred = ctx.defer();
    // Stage latency: request arrival -> deferred completion, so the remote
    // get_interface round-trip is part of the measured select cost.
    const bool timed = s.stage_sample() && s.stage_select_ != nullptr;
    const util::TimePoint t0 = ctx.now;
    const auto finish = [&s, deferred, timed, t0](http::HttpResponse r) {
      if (timed) s.stage_select_->record(s.network_.now() - t0);
      deferred->complete(std::move(r));
    };

    // Cross-shard select (DESIGN.md §5i/§5j): the app — local to a sibling
    // core, or a remote app that core owns — lives on another core of this
    // server.  Hop to the owner for the ACL/admission grant (which also
    // bumps our shard's watcher refcount and, for remote apps, runs the
    // host-side get_interface/subscribe handshake), then finish the
    // subscription against our session state back here.
    if (const std::uint32_t owner = s.shard_owner_of(app_id);
        s.sharded() && owner != s.shard_index_) {
      const bool already = session->apps.count(app_id) > 0;
      const std::uint32_t me = s.shard_index_;
      DiscoverServer* grp = s.group_;
      grp->post_shard(owner, [grp, owner, me, app_id, user, session_key,
                              already, finish] {
        grp->core_at(owner).select_on_owner_async(
            app_id, user, me, already,
            [grp, owner, me, app_id, user, session_key, already,
             finish](ShardSelectGrant grant) {
          DiscoverServer& client = grp->core_at(me);
          proto::SelectAppReply out;
          ClientSession* sess = client.session_of(session_key);
          const bool granted = grant.found && !grant.admission_rejected &&
                               grant.privilege != security::Privilege::none;
          if (!grant.found || sess == nullptr) {
            if (granted && !already && sess == nullptr) {
              // The session vanished while the grant was in flight; return
              // the watcher refcount we just took on the owner.
              grp->post_shard(owner, [grp, owner, me, app_id] {
                grp->core_at(owner).release_shard_watcher(app_id, me);
              });
            }
            out.message = "application not found: " + app_id.to_string();
            ++client.stats_.selects_failed;
            finish(body_response(404, proto::encode_body(out)));
            return;
          }
          if (grant.admission_rejected) {
            out.admission = proto::AdmissionError::app_sessions;
            out.retry_after = client.config_.admission_retry_after;
            out.message = "application " + app_id.to_string() + " is full";
            ++client.stats_.admission_rejected_selects;
            ++client.stats_.selects_failed;
            finish(
                admission_response(proto::encode_body(out), out.retry_after));
            return;
          }
          if (grant.privilege == security::Privilege::none) {
            out.message = user + " has no access to " + grant.name;
            ++client.stats_.selects_failed;
            finish(body_response(403, proto::encode_body(out)));
            return;
          }
          ClientSub& sub = client.subscribe_session(*sess, app_id);
          sub.privilege = grant.privilege;
          out.ok = true;
          out.privilege = grant.privilege;
          out.interface_spec = grant.params;
          out.history_seq = grant.history_seq;
          ++client.stats_.selects_ok;
          finish(body_response(200, proto::encode_body(out)));
        });
      });
      return;
    }

    s.with_remote_app(app_id, [&s, finish, user, session_key,
                               app_id](AppEntry* entry) {
      proto::SelectAppReply out;
      ClientSession* sess = s.session_of(session_key);
      if (entry == nullptr || sess == nullptr) {
        out.message = "application not found: " + app_id.to_string();
        ++s.stats_.selects_failed;
        finish(body_response(404, proto::encode_body(out)));
        return;
      }
      // Per-app admission: refuse NEW subscribers beyond the cap (sessions
      // that already selected the app pass — their re-select is idempotent).
      if (s.config_.max_sessions_per_app != 0 &&
          sess->apps.count(app_id) == 0 &&
          s.subscriber_count(app_id) >= s.config_.max_sessions_per_app) {
        out.admission = proto::AdmissionError::app_sessions;
        out.retry_after = s.config_.admission_retry_after;
        out.message = "application " + app_id.to_string() + " is full";
        ++s.stats_.admission_rejected_selects;
        ++s.stats_.selects_failed;
        finish(admission_response(proto::encode_body(out), out.retry_after));
        return;
      }
      if (entry->local) {
        // Level-2 authentication against the application ACL (§5.2.2).
        const security::Privilege p = entry->acl.privilege_of(user);
        if (p == security::Privilege::none) {
          out.message = user + " has no access to " + entry->name;
          ++s.stats_.selects_failed;
          finish(body_response(403, proto::encode_body(out)));
          return;
        }
        ClientSub& sub = s.subscribe_session(*sess, app_id);
        sub.privilege = p;
        out.ok = true;
        out.privilege = p;
        out.interface_spec = entry->params;
        out.history_seq = entry->event_seq;
        ++s.stats_.selects_ok;
        finish(body_response(200, proto::encode_body(out)));
        return;
      }
      // Remote application: level-2 authentication at the host through its
      // CorbaProxy, then subscribe this server to its event stream.
      wire::Encoder args;
      args.str(user);
      s.invoke_peer(
          entry->corba_proxy.node, entry->corba_proxy, "get_interface",
          std::move(args),
          [&s, finish, user, session_key, app_id](
              util::Result<util::Bytes> r) {
            proto::SelectAppReply out2;
            ClientSession* sess2 = s.session_of(session_key);
            AppEntry* entry2 = s.find_app(app_id);
            if (!r.ok() || sess2 == nullptr || entry2 == nullptr) {
              out2.message = !r.ok() ? r.error().message : "session gone";
              ++s.stats_.selects_failed;
              finish(body_response(403, proto::encode_body(out2)));
              return;
            }
            wire::Decoder d(r.value());
            const auto p = static_cast<security::Privilege>(d.u8());
            const std::uint32_t n = d.u32();
            std::vector<proto::ParamSpec> params;
            params.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
              params.push_back(proto::decode_param_spec(d));
            }
            const std::uint64_t history_seq = d.u64();
            // Authoritative admission re-check: concurrent selects may have
            // filled the app while our get_interface was in flight.
            if (s.config_.max_sessions_per_app != 0 &&
                sess2->apps.count(app_id) == 0 &&
                s.subscriber_count(app_id) >=
                    s.config_.max_sessions_per_app) {
              out2.admission = proto::AdmissionError::app_sessions;
              out2.retry_after = s.config_.admission_retry_after;
              out2.message = "application " + app_id.to_string() + " is full";
              ++s.stats_.admission_rejected_selects;
              ++s.stats_.selects_failed;
              finish(admission_response(proto::encode_body(out2),
                                        out2.retry_after));
              return;
            }
            entry2->params = params;
            if (!entry2->remote_subscribed && entry2->remote_known_seq == 0) {
              // First subscription: events up to the level-2 handshake are
              // history the watcher never asked for.  Anything the host
              // publishes after this point must reach us — the subscribe
              // reply backfills the gap instead of skipping over it.
              entry2->remote_known_seq = history_seq;
            }
            ClientSub& sub = s.subscribe_session(*sess2, app_id);
            sub.privilege = p;
            s.subscribe_remote(*entry2);
            out2.ok = true;
            out2.privilege = p;
            out2.interface_spec = std::move(params);
            out2.history_seq = history_seq;
            ++s.stats_.selects_ok;
            finish(body_response(200, proto::encode_body(out2)));
          },
          s.config_.orb_call_timeout);
    });
  }

  void logout(const http::HttpRequest& request, http::HttpResponse& response,
              http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const proto::LogoutRequest req =
        proto::decode_logout_request(request.body);
    proto::CollabAck ack;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      ack.message = v.error().message;
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    s.drop_session(ctx.session->id());
    ack.ok = true;
    ack.message = "logged out";
    set_body(response, proto::encode_body(ack));
  }

  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Command servlet: "manages all client view/command requests" (paper §4.1)
// ---------------------------------------------------------------------------

class DiscoverServer::CommandServlet final : public http::Servlet {
 public:
  explicit CommandServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    DiscoverServer& s = server_;
    proto::CommandRequest req;
    try {
      req = proto::decode_command_request(request.body);
    } catch (const wire::DecodeError& err) {
      response = body_response(400, util::to_bytes(err.what()));
      return;
    }

    proto::CommandAck ack;
    ack.request_id = req.request_id;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      ack.message = v.error().message;
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr) {
      ack.message = "no active login session";
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    const auto sub_it = session->apps.find(req.app_id);
    if (sub_it == session->apps.end()) {
      ack.message = "application not selected";
      set_body(response, proto::encode_body(ack));
      response.status = 400;
      return;
    }
    ClientSub& sub = sub_it->second;
    // Fast-fail on the cached privilege; the host re-checks authoritatively.
    if (!security::allows(sub.privilege,
                          proto::required_privilege(req.kind))) {
      ack.message = "insufficient privilege";
      ++s.stats_.commands_rejected;
      set_body(response, proto::encode_body(ack));
      response.status = 403;
      return;
    }

    // Cross-shard command (DESIGN.md §5i): the cached-privilege fast-fail
    // ran against our session sub; the owner core re-checks authoritatively
    // in admit_command, exactly like the unsharded local path.
    if (const std::uint32_t owner = s.shard_owner_of(req.app_id);
        s.sharded() && owner != s.shard_index_) {
      auto deferred = ctx.defer();
      const std::uint32_t me = s.shard_index_;
      DiscoverServer* grp = s.group_;
      const std::string user = session->user;
      const std::uint32_t origin = s.self_.value();
      const proto::CommandRequest creq = req;
      const bool collab = sub.collab_enabled;
      const std::string subgroup = sub.subgroup;
      grp->post_shard(owner, [grp, owner, me, user, origin, creq, collab,
                              subgroup, deferred] {
        DiscoverServer& host = grp->core_at(owner);
        proto::CommandAck out;
        out.request_id = creq.request_id;
        int status = 200;
        AppEntry* entry = host.find_app(creq.app_id);
        if (entry != nullptr && !entry->local) {
          // Remote app owned by this core (§5j): relay through the host's
          // CorbaProxy like the unsharded remote path, ack after the
          // host's admission verdict.
          ++host.stats_.remote_commands_out;
          wire::Encoder args;
          args.str(user);
          args.u64(creq.request_id);
          args.u8(static_cast<std::uint8_t>(creq.kind));
          args.str(creq.param);
          proto::encode(args, creq.value);
          args.boolean(collab);
          args.str(subgroup);
          const std::uint64_t rid = creq.request_id;
          host.invoke_peer(
              entry->corba_proxy.node, entry->corba_proxy, "send_command",
              std::move(args),
              [grp, me, deferred, rid](util::Result<util::Bytes> r) {
                proto::CommandAck relayed;
                relayed.request_id = rid;
                int rstatus = 200;
                if (!r.ok()) {
                  relayed.message = r.error().message;
                  rstatus = 503;
                } else {
                  wire::Decoder d(r.value());
                  relayed.accepted = d.boolean();
                  relayed.message = d.str();
                }
                grp->post_shard(me, [deferred, relayed, rstatus] {
                  deferred->complete(
                      body_response(rstatus, proto::encode_body(relayed)));
                });
              },
              host.config_.orb_call_timeout);
          return;
        }
        if (entry == nullptr) {
          out.message = "application not found";
          status = 404;
        } else {
          out = host.admit_command(*entry, user, origin, creq.request_id,
                                   creq.kind, creq.param, creq.value, collab,
                                   subgroup);
        }
        grp->post_shard(me, [deferred, out, status] {
          deferred->complete(body_response(status, proto::encode_body(out)));
        });
      });
      return;
    }

    AppEntry* entry = s.find_app(req.app_id);
    if (entry == nullptr) {
      ack.message = "application not found";
      set_body(response, proto::encode_body(ack));
      response.status = 404;
      return;
    }

    if (entry->local) {
      ack = s.admit_command(*entry, session->user, s.self_.value(),
                            req.request_id, req.kind, req.param, req.value,
                            sub.collab_enabled, sub.subgroup);
      set_body(response, proto::encode_body(ack));
      return;
    }

    // Remote application: relay through the host's CorbaProxy (§5.1.2) and
    // defer the HTTP ack until the host's admission verdict returns.
    ++s.stats_.remote_commands_out;
    auto deferred = ctx.defer();
    wire::Encoder args;
    args.str(session->user);
    args.u64(req.request_id);
    args.u8(static_cast<std::uint8_t>(req.kind));
    args.str(req.param);
    proto::encode(args, req.value);
    args.boolean(sub.collab_enabled);
    args.str(sub.subgroup);
    const std::uint64_t rid = req.request_id;
    s.invoke_peer(
        entry->corba_proxy.node, entry->corba_proxy, "send_command",
        std::move(args),
        [deferred, rid](util::Result<util::Bytes> r) {
          proto::CommandAck out;
          out.request_id = rid;
          if (!r.ok()) {
            out.message = r.error().message;
            deferred->complete(
                body_response(503, proto::encode_body(out)));
            return;
          }
          wire::Decoder d(r.value());
          out.accepted = d.boolean();
          out.message = d.str();
          deferred->complete(body_response(200, proto::encode_body(out)));
        },
        s.config_.orb_call_timeout);
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Collaboration servlet: poll, chat/whiteboard, sub-groups (paper §4.1)
// ---------------------------------------------------------------------------

class DiscoverServer::CollabServlet final : public http::Servlet {
 public:
  explicit CollabServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    const std::string path = request.path_without_query();
    try {
      if (path == kPathPoll) {
        poll(request, response, ctx);
      } else if (path == kPathCollabPost) {
        post(request, response, ctx);
      } else if (path == kPathGroup) {
        group(request, response, ctx);
      } else {
        response.status = 404;
      }
    } catch (const wire::DecodeError& err) {
      response = body_response(400, util::to_bytes(err.what()));
    }
  }

 private:
  void poll(const http::HttpRequest& request, http::HttpResponse& response,
            http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const bool timed = s.stage_sample() && s.stage_poll_ != nullptr;
    const util::TimePoint t0 = ctx.now;
    const proto::PollRequest req = proto::decode_poll_request(request.body);
    proto::PollReply reply;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      reply.message = v.error().message;
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr) {
      reply.message = "no active login session";
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }
    const auto sub_it = session->apps.find(req.app_id);
    if (sub_it == session->apps.end()) {
      reply.message = "application not selected";
      set_body(response, proto::encode_body(reply));
      response.status = 400;
      return;
    }
    // Poll-and-pull (paper §6.2): drain the per-client FIFO buffer.  The
    // FIFO holds shared event instances, so draining moves pointers and the
    // reply is serialized straight from them — no event copies on the poll
    // path (wire format identical to encode_body(PollReply)).
    ClientSub& sub = sub_it->second;
    const std::uint32_t max = req.max_events == 0 ? 64 : req.max_events;
    std::vector<proto::SharedClientEvent> events;
    events.reserve(std::min<std::size_t>(sub.fifo.size(), max) + 1);
    if (sub.shed_since_poll > 0) {
      // The shed policy dropped events since this client last drained.  Lead
      // the reply with a resync marker (before any survivors) carrying the
      // shed count, so the client knows to catch up via the archive.
      proto::ClientEvent marker;
      marker.kind = proto::EventKind::resync;
      marker.app = req.app_id;
      marker.at = s.network_.now();
      marker.text = "events shed by server backpressure; resync via archive";
      marker.value =
          proto::ParamValue{static_cast<std::int64_t>(sub.shed_since_poll)};
      events.push_back(
          std::make_shared<const proto::ClientEvent>(std::move(marker)));
      sub.shed_since_poll = 0;
      ++s.stats_.resync_markers;
    }
    while (!sub.fifo.empty() && events.size() < max) {
      events.push_back(sub.fifo.front());
      s.fifo_pop_front(sub);
    }
    const auto backlog = static_cast<std::uint32_t>(sub.fifo.size());
    ++s.stats_.polls_served;
    set_body(response, proto::encode_poll_reply_shared(true, std::string(),
                                                       events, backlog));
    if (timed) s.stage_poll_->record(s.network_.now() - t0);
  }

  void post(const http::HttpRequest& request, http::HttpResponse& response,
            http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const proto::CollabPost req = proto::decode_collab_post(request.body);
    proto::CollabAck ack;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      ack.message = v.error().message;
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr) {
      ack.message = "no active login session";
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    const auto sub_it = session->apps.find(req.app_id);
    if (sub_it == session->apps.end()) {
      ack.message = "application not selected";
      set_body(response, proto::encode_body(ack));
      response.status = 400;
      return;
    }
    if (req.kind != proto::EventKind::chat &&
        req.kind != proto::EventKind::whiteboard) {
      ack.message = "only chat and whiteboard posts are allowed";
      set_body(response, proto::encode_body(ack));
      response.status = 400;
      return;
    }

    ClientSub& sub = sub_it->second;
    proto::ClientEvent ev;
    ev.kind = req.kind;
    ev.app = req.app_id;
    ev.user = session->user;
    ev.text = req.text;
    ev.value = req.payload;
    ev.subgroup = sub.subgroup;
    ev.shared = sub.collab_enabled;
    ++s.stats_.collab_posts;

    // Cross-shard collaboration post (DESIGN.md §5i): the event is built
    // here from our session state, but stamping/archiving/redistribution is
    // the owner core's job — same split as the unsharded host relay.
    if (const std::uint32_t owner = s.shard_owner_of(req.app_id);
        s.sharded() && owner != s.shard_index_) {
      auto deferred = ctx.defer();
      const std::uint32_t me = s.shard_index_;
      DiscoverServer* grp = s.group_;
      grp->post_shard(owner, [grp, owner, me, ev = std::move(ev),
                              app_id = req.app_id, deferred]() mutable {
        DiscoverServer& host = grp->core_at(owner);
        proto::CollabAck out;
        int status = 200;
        AppEntry* entry = host.find_app(app_id);
        if (entry == nullptr) {
          out.message = "application not found";
          status = 404;
        } else if (!entry->local) {
          // Remote app owned by this core (§5j): relay to its host server —
          // through this core's outbox when batching is on — and ack
          // optimistically like the unsharded relay does.
          host.relay_collab_to_host(*entry, std::move(ev));
          out.ok = true;
          out.message = "posted";
        } else {
          host.publish_event(*entry, std::move(ev));
          out.ok = true;
          out.message = "posted";
        }
        grp->post_shard(me, [deferred, out, status] {
          deferred->complete(body_response(status, proto::encode_body(out)));
        });
      });
      return;
    }

    AppEntry* entry = s.find_app(req.app_id);
    if (entry == nullptr) {
      ack.message = "application not found";
      set_body(response, proto::encode_body(ack));
      response.status = 404;
      return;
    }
    if (entry->local) {
      s.publish_event(*entry, std::move(ev));
    } else {
      // Relay to the host, which stamps/archives/redistributes (§5.2.3) —
      // through the host's outbox when batching is on.
      s.relay_collab_to_host(*entry, std::move(ev));
    }
    ack.ok = true;
    ack.message = "posted";
    set_body(response, proto::encode_body(ack));
  }

  void group(const http::HttpRequest& request, http::HttpResponse& response,
             http::ServletContext& ctx) {
    DiscoverServer& s = server_;
    const proto::GroupRequest req = proto::decode_group_request(request.body);
    proto::CollabAck ack;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      ack.message = v.error().message;
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr) {
      ack.message = "no active login session";
      set_body(response, proto::encode_body(ack));
      response.status = 401;
      return;
    }
    const auto sub_it = session->apps.find(req.app_id);
    if (sub_it == session->apps.end()) {
      ack.message = "application not selected";
      set_body(response, proto::encode_body(ack));
      response.status = 400;
      return;
    }
    ClientSub& sub = sub_it->second;
    switch (req.op) {
      case proto::GroupOp::join_subgroup:
        sub.subgroup = req.subgroup;
        break;
      case proto::GroupOp::leave_subgroup:
        sub.subgroup.clear();
        break;
      case proto::GroupOp::enable_collab:
        sub.collab_enabled = true;
        break;
      case proto::GroupOp::disable_collab:
        sub.collab_enabled = false;
        break;
      case proto::GroupOp::enable_push:
        sub.push = true;
        break;
      case proto::GroupOp::disable_push:
        sub.push = false;
        break;
    }
    ack.ok = true;
    ack.message = "group state updated";
    set_body(response, proto::encode_body(ack));
  }

  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Archive servlet: session replay and latecomer catch-up (paper §5.2.5)
// ---------------------------------------------------------------------------

class DiscoverServer::ArchiveServlet final : public http::Servlet {
 public:
  explicit ArchiveServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    DiscoverServer& s = server_;
    proto::HistoryRequest req;
    try {
      req = proto::decode_history_request(request.body);
    } catch (const wire::DecodeError& err) {
      response = body_response(400, util::to_bytes(err.what()));
      return;
    }
    proto::HistoryReply reply;
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      reply.message = v.error().message;
      set_body(response, proto::encode_body(reply));
      response.status = 401;
      return;
    }
    ClientSession* session = s.session_by_token(req.token, ctx.session->id());
    if (session == nullptr || session->apps.count(req.app_id) == 0) {
      reply.message = "application not selected";
      set_body(response, proto::encode_body(reply));
      response.status = 400;
      return;
    }
    // Cross-shard history (DESIGN.md §5i): the application log lives on the
    // owner core's archive; fetch there and encode back here.
    if (const std::uint32_t owner = s.shard_owner_of(req.app_id);
        s.sharded() && owner != s.shard_index_) {
      auto deferred = ctx.defer();
      const std::uint32_t me = s.shard_index_;
      DiscoverServer* grp = s.group_;
      grp->post_shard(owner, [grp, owner, me, app_id = req.app_id,
                              from_seq = req.from_seq,
                              max_events = req.max_events, deferred] {
        DiscoverServer& host = grp->core_at(owner);
        proto::HistoryReply out;
        int status = 200;
        AppEntry* entry = host.find_app(app_id);
        if (entry != nullptr && !entry->local) {
          // Remote app owned by this core (§5j): the authoritative log is
          // at the host server — fetch it from there.
          wire::Encoder args;
          args.u64(from_seq);
          args.u32(max_events);
          host.invoke_peer(
              entry->corba_proxy.node, entry->corba_proxy, "poll_events",
              std::move(args),
              [grp, me, deferred](util::Result<util::Bytes> r) {
                proto::HistoryReply fetched;
                int rstatus = 200;
                if (!r.ok()) {
                  fetched.message = r.error().message;
                  rstatus = 503;
                } else {
                  wire::Decoder d(r.value());
                  const std::uint32_t n = d.u32();
                  fetched.events.reserve(n);
                  for (std::uint32_t i = 0; i < n; ++i) {
                    fetched.events.push_back(proto::decode_client_event(d));
                  }
                  fetched.ok = true;
                }
                grp->post_shard(me, [deferred, fetched = std::move(fetched),
                                     rstatus] {
                  deferred->complete(
                      body_response(rstatus, proto::encode_body(fetched)));
                });
              },
              host.config_.orb_call_timeout);
          return;
        }
        if (entry == nullptr) {
          out.message = "application not found";
          status = 404;
        } else {
          out.ok = true;
          out.events = host.archive_.app_history(app_id, from_seq, max_events);
        }
        grp->post_shard(me, [deferred, out = std::move(out), status] {
          deferred->complete(body_response(status, proto::encode_body(out)));
        });
      });
      return;
    }

    AppEntry* entry = s.find_app(req.app_id);
    if (entry == nullptr) {
      reply.message = "application not found";
      set_body(response, proto::encode_body(reply));
      response.status = 404;
      return;
    }
    if (entry->local) {
      // The application log lives here, at the host (§5.2.5).
      reply.ok = true;
      reply.events =
          s.archive_.app_history(req.app_id, req.from_seq, req.max_events);
      set_body(response, proto::encode_body(reply));
      return;
    }
    // Remote history: fetch from the host's application log.
    auto deferred = ctx.defer();
    wire::Encoder args;
    args.u64(req.from_seq);
    args.u32(req.max_events);
    s.invoke_peer(
        entry->corba_proxy.node, entry->corba_proxy, "poll_events",
        std::move(args),
        [deferred](util::Result<util::Bytes> r) {
          proto::HistoryReply out;
          if (!r.ok()) {
            out.message = r.error().message;
            deferred->complete(body_response(503, proto::encode_body(out)));
            return;
          }
          wire::Decoder d(r.value());
          const std::uint32_t n = d.u32();
          out.events.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            out.events.push_back(proto::decode_client_event(d));
          }
          out.ok = true;
          deferred->complete(body_response(200, proto::encode_body(out)));
        },
        s.config_.orb_call_timeout);
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Redirect servlet: the "request redirection" auxiliary service (paper
// §4.1).  Tells a client which server hosts an application so the portal
// can connect to it directly — the host is extractable from the
// application identifier itself (§5.2.1).
// ---------------------------------------------------------------------------

class DiscoverServer::RedirectServlet final : public http::Servlet {
 public:
  explicit RedirectServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    (void)ctx;
    DiscoverServer& s = server_;
    proto::SelectAppRequest req;
    try {
      req = proto::decode_select_app_request(request.body);
    } catch (const wire::DecodeError& err) {
      response = body_response(400, util::to_bytes(err.what()));
      return;
    }
    if (const auto v = s.verify_token(req.token); !v.ok()) {
      response.status = 401;
      response.body = util::to_bytes(v.error().message);
      return;
    }
    response.headers.set(kHostHeader, std::to_string(req.app_id.host));
    if (req.app_id.host == s.self_.value()) {
      response.status = 200;  // already at the host
    } else {
      response.status = 307;  // temporary redirect to the host server
    }
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Visualization servlet: another §4.1 auxiliary service.  Renders a
// metric's recent history (from the application log) as a browser-friendly
// text report with an ASCII sparkline:
//   GET /discover/viz?app=<host:local>&metric=<name>&n=<width>
// Authorization comes from the HTTP session: the client must have selected
// the application (level-2) through this server first.
// ---------------------------------------------------------------------------

class DiscoverServer::VisualizationServlet final : public http::Servlet {
 public:
  explicit VisualizationServlet(DiscoverServer& server) : server_(server) {}

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    DiscoverServer& s = server_;
    const auto app_param = request.query_param("app");
    const auto metric = request.query_param("metric");
    if (!app_param || !metric) {
      response.status = 400;
      response.body = util::to_bytes("usage: ?app=<host:local>&metric=<name>"
                                     "[&n=<width>]");
      return;
    }
    const proto::AppId app = proto::AppId::parse(*app_param);
    ClientSession* session = s.session_of(ctx.session->id());
    if (session == nullptr || session->apps.count(app) == 0) {
      response.status = 403;
      response.body = util::to_bytes("select the application first");
      return;
    }
    std::size_t width = 60;
    if (const auto n = request.query_param("n")) {
      width = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::strtoul(n->c_str(), nullptr, 10)), 5,
          400);
    }

    // Cross-shard visualization (DESIGN.md §5i): the application log lives
    // on the owner core; the whole report renders there, off our worker.
    if (const std::uint32_t owner = s.shard_owner_of(app);
        s.sharded() && owner != s.shard_index_) {
      auto deferred = ctx.defer();
      const std::uint32_t me = s.shard_index_;
      DiscoverServer* grp = s.group_;
      const std::string metric_name = *metric;
      grp->post_shard(owner, [grp, owner, me, app, metric_name, width,
                              deferred] {
        auto resp = std::make_shared<http::HttpResponse>();
        render(grp->core_at(owner), app, metric_name, width, *resp);
        grp->post_shard(me, [deferred, resp] {
          deferred->complete(std::move(*resp));
        });
      });
      return;
    }

    render(s, app, *metric, width, response);
  }

 private:
  /// Renders the report against `s`'s app table and archive; must run on
  /// `s`'s execution context.
  static void render(DiscoverServer& s, const proto::AppId& app,
                     const std::string& metric, std::size_t width,
                     http::HttpResponse& response) {
    const AppEntry* entry = s.find_app(app);
    if (entry == nullptr) {
      response.status = 404;
      response.body = util::to_bytes("application not found");
      return;
    }
    if (!entry->local) {
      // The application log lives at the host (§5.2.5); point the browser
      // there rather than proxying bulk history.
      response.status = 307;
      response.headers.set(kHostHeader, std::to_string(app.host));
      response.body = util::to_bytes("visualization served by host server " +
                                     std::to_string(app.host));
      return;
    }

    // Newest `width` samples of the metric from the application log.
    std::vector<double> series;
    for (const auto& ev :
         s.archive_.app_history(app, 0, 0)) {
      if (ev.kind != proto::EventKind::update) continue;
      const auto it = ev.metrics.find(metric);
      if (it != ev.metrics.end()) series.push_back(it->second);
    }
    if (series.size() > width) {
      series.erase(series.begin(),
                   series.end() - static_cast<std::ptrdiff_t>(width));
    }
    if (series.empty()) {
      response.status = 404;
      response.body = util::to_bytes("no samples for metric " + metric);
      return;
    }

    double lo = series.front();
    double hi = series.front();
    double sum = 0;
    for (const double v : series) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    static constexpr const char* kBars[] = {"_", ".", ":", "-", "=", "+",
                                            "*", "#"};
    std::string spark;
    for (const double v : series) {
      const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
      spark += kBars[static_cast<int>(t * 7.0 + 0.5)];
    }
    char head[256];
    std::snprintf(head, sizeof(head),
                  "%s @ %s\nsamples=%zu min=%g max=%g avg=%g\n",
                  metric.c_str(), entry->name.c_str(), series.size(), lo,
                  hi, sum / static_cast<double>(series.size()));
    response.headers.set("Content-Type", "text/plain");
    response.body = util::to_bytes(std::string(head) + spark + "\n");
  }

  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Metrics servlet: exposes the server's MetricsRegistry.
//   GET /discover/metrics             -> Prometheus-style text exposition
//   GET /discover/metrics?format=json -> JSON variant
// Scrapes are observability traffic, not collaboratory work: the servlet is
// untraced so a scraper does not pollute the span ring it is inspecting.
// ---------------------------------------------------------------------------

class DiscoverServer::MetricsServlet final : public http::Servlet {
 public:
  explicit MetricsServlet(DiscoverServer& server) : server_(server) {}

  [[nodiscard]] bool traced() const override { return false; }

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    const auto format = request.query_param("format");
    const bool json = format && *format == "json";

    // Sharded scrape (DESIGN.md §5i): every core keeps its own registry so
    // the hot paths never share counters; one scrape visits each core on
    // its own worker and merges the snapshots into a single exposition.
    if (server_.sharded()) {
      auto deferred = ctx.defer();
      auto snaps = std::make_shared<std::vector<util::MetricsRegistry::Snapshot>>();
      server_.gather_across_cores(
          [snaps](DiscoverServer& core) {
            snaps->push_back(core.metrics_.snapshot());
          },
          [snaps, deferred, json] {
            const auto merged = util::MetricsRegistry::merge(*snaps);
            http::HttpResponse resp;
            resp.status = 200;
            if (json) {
              resp.headers.set("Content-Type", "application/json");
              resp.body =
                  util::to_bytes(util::MetricsRegistry::render_json(merged));
            } else {
              resp.headers.set("Content-Type", "text/plain");
              resp.body = util::to_bytes(
                  util::MetricsRegistry::render_prometheus(merged));
            }
            deferred->complete(std::move(resp));
          });
      return;
    }

    if (json) {
      response.headers.set("Content-Type", "application/json");
      response.body = util::to_bytes(server_.metrics_.json());
    } else {
      response.headers.set("Content-Type", "text/plain");
      response.body = util::to_bytes(server_.metrics_.prometheus_text());
    }
    response.status = 200;
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Trace servlet: dumps the bounded span ring.
//   GET /discover/trace             -> one line per span, oldest first
//   GET /discover/trace?format=json -> JSON variant
// ---------------------------------------------------------------------------

class DiscoverServer::TraceServlet final : public http::Servlet {
 public:
  explicit TraceServlet(DiscoverServer& server) : server_(server) {}

  [[nodiscard]] bool traced() const override { return false; }

  void service(const http::HttpRequest& request, http::HttpResponse& response,
               http::ServletContext& ctx) override {
    const auto format = request.query_param("format");
    const bool json = format && *format == "json";

    // Sharded scrape: each core keeps its own span ring; dump them in shard
    // order.  Trace ids carry the shard index (util::Tracer shard minting),
    // so the concatenation stays unambiguous.
    if (server_.sharded()) {
      auto deferred = ctx.defer();
      auto parts = std::make_shared<std::vector<std::string>>();
      server_.gather_across_cores(
          [parts, json](DiscoverServer& core) {
            parts->push_back(json ? core.tracer_.dump_json()
                                  : core.tracer_.dump_text());
          },
          [parts, deferred, json] {
            http::HttpResponse resp;
            resp.status = 200;
            std::string body;
            if (json) {
              body = "{\"shards\":[";
              for (std::size_t i = 0; i < parts->size(); ++i) {
                if (i != 0) body += ',';
                body += (*parts)[i];
              }
              body += "]}";
              resp.headers.set("Content-Type", "application/json");
            } else {
              for (const auto& part : *parts) body += part;
              resp.headers.set("Content-Type", "text/plain");
            }
            resp.body = util::to_bytes(body);
            deferred->complete(std::move(resp));
          });
      return;
    }

    if (json) {
      response.headers.set("Content-Type", "application/json");
      response.body = util::to_bytes(server_.tracer_.dump_json());
    } else {
      response.headers.set("Content-Type", "text/plain");
      response.body = util::to_bytes(server_.tracer_.dump_text());
    }
    response.status = 200;
  }

 private:
  DiscoverServer& server_;
};

void DiscoverServer::mount_servlets() {
  container_->mount("/discover/master", std::make_shared<MasterServlet>(*this));
  container_->mount(kPathCommand, std::make_shared<CommandServlet>(*this));
  container_->mount("/discover/collab", std::make_shared<CollabServlet>(*this));
  container_->mount(kPathArchive, std::make_shared<ArchiveServlet>(*this));
  container_->mount(kPathRedirect,
                    std::make_shared<RedirectServlet>(*this));
  container_->mount(kPathViz,
                    std::make_shared<VisualizationServlet>(*this));
  container_->mount(kPathMetrics, std::make_shared<MetricsServlet>(*this));
  container_->mount(kPathTrace, std::make_shared<TraceServlet>(*this));
}

}  // namespace discover::core
