// Distributed logging (paper §5.2.5).
//
// Two logs per the paper:
//  * the interaction log — "all interactions between a client(s) and an
//    application", kept at the server the client is connected to; enables
//    replaying one's own session;
//  * the application log — "all requests, responses, and status messages for
//    each application", kept at the application's host server; gives any
//    authorized client the full history and lets latecomers to a
//    collaboration group "get up to speed".
//
// Events are optionally mirrored into a db::RecordStore table so the
// ownership rules of §6.3 are exercised (owner = originating user for
// interaction records, application owner for periodic records).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "db/record_store.h"
#include "proto/types.h"

namespace discover::core {

class SessionArchive {
 public:
  /// `max_events_per_app` bounds each application log (ring semantics:
  /// oldest entries fall off).  0 means unbounded.
  explicit SessionArchive(std::size_t max_events_per_app = 4096,
                          db::RecordStore* mirror = nullptr);

  // -- application log (host server) ---------------------------------------
  void log_app_event(const proto::ClientEvent& event,
                     const std::string& app_owner);
  /// Events with seq > from_seq, oldest first, at most max_events.
  [[nodiscard]] std::vector<proto::ClientEvent> app_history(
      const proto::AppId& app, std::uint64_t from_seq,
      std::uint32_t max_events) const;
  [[nodiscard]] std::uint64_t latest_seq(const proto::AppId& app) const;
  void drop_app(const proto::AppId& app);

  // -- interaction log (client's local server) ------------------------------
  void log_interaction(const std::string& user,
                       const proto::ClientEvent& event);
  [[nodiscard]] std::vector<proto::ClientEvent> interactions(
      const std::string& user, const proto::AppId& app) const;

  /// Replays set_param responses in an event stream, producing the final
  /// parameter assignment — the invariant checked by the archive property
  /// tests (replay == live state).
  static std::map<std::string, proto::ParamValue> replay_params(
      const std::vector<proto::ClientEvent>& events);

  [[nodiscard]] std::uint64_t app_events_logged() const {
    return app_events_logged_;
  }
  [[nodiscard]] std::uint64_t interactions_logged() const {
    return interactions_logged_;
  }

 private:
  std::size_t cap_;
  db::RecordStore* mirror_;
  std::map<proto::AppId, std::deque<proto::ClientEvent>> app_logs_;
  std::map<std::pair<std::string, proto::AppId>,
           std::vector<proto::ClientEvent>>
      interaction_logs_;
  std::uint64_t app_events_logged_ = 0;
  std::uint64_t interactions_logged_ = 0;
};

}  // namespace discover::core
