// The "pool of services" model (paper §3): besides DISCOVER servers, the
// middleware can expose arbitrary backend services — "a monitoring
// service, an archival service or grid services" — that are published in
// the trader under their own service type and accessed purely through
// level-2 interfaces.  "The availability of these servers is not
// guaranteed and must be determined at runtime."
//
// ServiceHost is a minimal node that hosts such servants; the
// MonitoringService is a concrete instance that DISCOVER servers can
// (optionally) report their statistics to.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "orb/orb.h"
#include "orb/trader.h"
#include "util/clock.h"

namespace discover::core {

inline constexpr const char* kMonitoringServiceType = "MONITORING";

class ServiceHost : public net::MessageHandler {
 public:
  explicit ServiceHost(net::Network& network);

  void attach(net::NodeId self);
  void set_registry(orb::ObjectRef trader);

  /// Activates the servant and exports a trader offer of `service_type`
  /// with `properties`; returns the servant's reference immediately (the
  /// export completes asynchronously).
  orb::ObjectRef publish(const std::string& service_type,
                         std::shared_ptr<orb::Servant> servant,
                         std::map<std::string, std::string> properties);

  /// Withdraws every exported offer (simulates the service going away —
  /// peers must cope, per §3's availability caveat).
  void withdraw_all();

  void on_message(const net::Message& msg) override;

  [[nodiscard]] orb::Orb& orb() { return *orb_; }
  [[nodiscard]] net::NodeId node() const { return self_; }

 private:
  net::Network& network_;
  net::NodeId self_{0};
  std::unique_ptr<orb::Orb> orb_;
  orb::TraderClient trader_;
  std::vector<std::uint64_t> offers_;
};

/// A monitoring service in the pool: servers push statistics snapshots;
/// operators (or tests) read the aggregate back.
///
/// Methods:
///   report(reporter: str, metrics: map<str, i64>) -> ()
///   snapshot() -> seq<(reporter, map<str, i64>, last_report_time)>
class MonitoringService final : public orb::Servant {
 public:
  explicit MonitoringService(const util::Clock& clock) : clock_(clock) {}

  [[nodiscard]] std::string interface_name() const override {
    return "MonitoringService";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override;

  [[nodiscard]] std::size_t reporter_count() const { return reports_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const { return received_; }

 private:
  struct Report {
    std::map<std::string, std::int64_t> metrics;
    util::TimePoint at = 0;
  };

  const util::Clock& clock_;
  std::map<std::string, Report> reports_;
  std::uint64_t received_ = 0;
};

}  // namespace discover::core
