#include "core/session_archive.h"

#include <algorithm>

namespace discover::core {

SessionArchive::SessionArchive(std::size_t max_events_per_app,
                               db::RecordStore* mirror)
    : cap_(max_events_per_app), mirror_(mirror) {}

void SessionArchive::log_app_event(const proto::ClientEvent& event,
                                   const std::string& app_owner) {
  auto& log = app_logs_[event.app];
  log.push_back(event);
  if (cap_ != 0 && log.size() > cap_) log.pop_front();
  ++app_events_logged_;

  if (mirror_ != nullptr) {
    // §6.3: periodic application data is owned by the application's owner;
    // responses to a client's request are owned by that user.
    const std::string owner =
        event.kind == proto::EventKind::response && !event.user.empty()
            ? event.user
            : app_owner;
    db::Table& table = mirror_->table("app_log_" + event.app.to_string());
    table.insert(owner, event.at,
                 {{"seq", static_cast<std::int64_t>(event.seq)},
                  {"kind", std::string(proto::event_kind_name(event.kind))},
                  {"user", event.user},
                  {"text", event.text}});
  }
}

std::vector<proto::ClientEvent> SessionArchive::app_history(
    const proto::AppId& app, std::uint64_t from_seq,
    std::uint32_t max_events) const {
  std::vector<proto::ClientEvent> out;
  const auto it = app_logs_.find(app);
  if (it == app_logs_.end()) return out;
  for (const auto& ev : it->second) {
    if (ev.seq <= from_seq) continue;
    out.push_back(ev);
    if (max_events != 0 && out.size() >= max_events) break;
  }
  return out;
}

std::uint64_t SessionArchive::latest_seq(const proto::AppId& app) const {
  const auto it = app_logs_.find(app);
  if (it == app_logs_.end() || it->second.empty()) return 0;
  return it->second.back().seq;
}

void SessionArchive::drop_app(const proto::AppId& app) {
  app_logs_.erase(app);
}

void SessionArchive::log_interaction(const std::string& user,
                                     const proto::ClientEvent& event) {
  interaction_logs_[{user, event.app}].push_back(event);
  ++interactions_logged_;
}

std::vector<proto::ClientEvent> SessionArchive::interactions(
    const std::string& user, const proto::AppId& app) const {
  const auto it = interaction_logs_.find({user, app});
  return it != interaction_logs_.end() ? it->second
                                       : std::vector<proto::ClientEvent>{};
}

std::map<std::string, proto::ParamValue> SessionArchive::replay_params(
    const std::vector<proto::ClientEvent>& events) {
  std::map<std::string, proto::ParamValue> params;
  for (const auto& ev : events) {
    if (ev.kind == proto::EventKind::response && !ev.param.empty()) {
      params[ev.param] = ev.value;
    }
  }
  return params;
}

}  // namespace discover::core
