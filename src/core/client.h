// DiscoverClient: the thin web-portal client (paper §4, front end).
//
// Speaks plain HTTP GET/POST to its local server, keeps the session token,
// and implements the poll-and-pull loop (paper §6.2) that fetches queued
// events from its server-side FIFO.  Fully asynchronous: every operation
// takes a completion callback that fires in the client node's context.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "http/http_client.h"
#include "net/network.h"
#include "net/retry.h"
#include "proto/messages.h"
#include "security/token.h"

namespace discover::core {

struct ClientConfig {
  std::string user = "guest";
  std::string password;
  util::Duration poll_period = util::milliseconds(100);
  std::uint32_t poll_max_events = 64;
  util::Duration request_timeout = util::seconds(10);
  /// Retry policy for portal HTTP requests (disabled by default: legacy
  /// single-shot semantics).  Retries reuse the request id, so the server
  /// deduplicates re-executions.
  net::RetryPolicy request_retry{};
  /// Keep every received event in memory (received_events()).  Large-scale
  /// scenarios turn this off; events_received()/events_of_kind() then run
  /// on counters instead of the stored record.
  bool record_events = true;
};

class DiscoverClient final : public net::MessageHandler {
 public:
  using EventHandler = std::function<void(const proto::ClientEvent&)>;

  DiscoverClient(net::Network& network, ClientConfig config);

  /// Must be called with the NodeId returned by Network::add_node(this).
  void attach(net::NodeId self);
  /// The portal talks to its "closest" server; all remote access is the
  /// middleware's job (paper §4.2).
  void set_server(net::NodeId server);

  void on_message(const net::Message& msg) override;

  // -- portal operations ------------------------------------------------------
  void login(std::function<void(util::Result<proto::LoginReply>)> cb);
  void select_app(const proto::AppId& app,
                  std::function<void(util::Result<proto::SelectAppReply>)> cb);
  void send_command(const proto::AppId& app, proto::CommandKind kind,
                    const std::string& param, const proto::ParamValue& value,
                    std::function<void(util::Result<proto::CommandAck>)> cb);
  void poll(const proto::AppId& app,
            std::function<void(util::Result<proto::PollReply>)> cb);
  void post_collab(const proto::AppId& app, proto::EventKind kind,
                   const std::string& text,
                   std::function<void(util::Result<proto::CollabAck>)> cb);
  void group_op(const proto::AppId& app, proto::GroupOp op,
                const std::string& subgroup,
                std::function<void(util::Result<proto::CollabAck>)> cb);
  void fetch_history(
      const proto::AppId& app, std::uint64_t from_seq, std::uint32_t max,
      std::function<void(util::Result<proto::HistoryReply>)> cb);
  void logout(std::function<void(util::Result<proto::CollabAck>)> cb);
  /// Asks the current server which node hosts `app` (the request-redirection
  /// auxiliary service).  The portal can then set_server() to the host and
  /// log in there for direct access.
  void resolve_home(const proto::AppId& app,
                    std::function<void(util::Result<net::NodeId>)> cb);

  // Convenience verbs.
  void set_param(const proto::AppId& app, const std::string& param,
                 double value,
                 std::function<void(util::Result<proto::CommandAck>)> cb) {
    send_command(app, proto::CommandKind::set_param, param,
                 proto::ParamValue{value}, std::move(cb));
  }
  void acquire_lock(const proto::AppId& app,
                    std::function<void(util::Result<proto::CommandAck>)> cb) {
    send_command(app, proto::CommandKind::acquire_lock, "", {},
                 std::move(cb));
  }
  void release_lock(const proto::AppId& app,
                    std::function<void(util::Result<proto::CommandAck>)> cb) {
    send_command(app, proto::CommandKind::release_lock, "", {},
                 std::move(cb));
  }

  /// Starts the periodic poll-and-pull loop for one application; received
  /// events go to the event handler and the in-memory record.
  void start_polling(const proto::AppId& app);
  void stop_polling(const proto::AppId& app);

  void set_event_handler(EventHandler handler) {
    event_handler_ = std::move(handler);
  }

  // -- state ------------------------------------------------------------------
  [[nodiscard]] bool logged_in() const { return logged_in_; }
  [[nodiscard]] const security::SessionToken& token() const { return token_; }
  [[nodiscard]] const std::vector<proto::AppInfo>& known_apps() const {
    return known_apps_;
  }
  /// Empty when config.record_events is false; use the counters instead.
  [[nodiscard]] const std::vector<proto::ClientEvent>& received_events()
      const {
    return received_;
  }
  [[nodiscard]] std::uint64_t events_received() const {
    return events_count_;
  }
  [[nodiscard]] std::uint64_t events_of_kind(proto::EventKind k) const;
  [[nodiscard]] const http::HttpClient& http() const { return http_; }
  [[nodiscard]] const std::string& user() const { return config_.user; }
  [[nodiscard]] net::NodeId node() const { return self_; }
  [[nodiscard]] std::uint64_t next_request_id() { return next_rid_++; }
  /// Highest backlog the server reported in any poll reply (A2 metric).
  [[nodiscard]] std::uint32_t max_backlog_seen() const {
    return max_backlog_;
  }
  /// Events received via the server-push extension (A2 metric).
  [[nodiscard]] std::uint64_t pushed_events() const { return pushed_events_; }

 private:
  void post(const std::string& path, util::Bytes body,
            std::function<void(util::Result<http::HttpResponse>)> cb);
  void poll_once(const proto::AppId& app);
  /// Counts (and, when configured, stores) one received event.
  void record(const proto::ClientEvent& ev);

  net::Network& network_;
  ClientConfig config_;
  net::NodeId self_{0};
  net::NodeId server_{0};
  http::HttpClient http_;
  security::SessionToken token_;
  bool logged_in_ = false;
  std::vector<proto::AppInfo> known_apps_;
  std::vector<proto::ClientEvent> received_;
  std::uint64_t events_count_ = 0;
  std::map<proto::EventKind, std::uint64_t> kind_counts_;
  std::set<proto::AppId> polling_;
  EventHandler event_handler_;
  std::uint64_t next_rid_ = 1;
  std::uint32_t max_backlog_ = 0;
  std::uint64_t pushed_events_ = 0;
};

}  // namespace discover::core
