#include "core/lock_manager.h"

#include <algorithm>

namespace discover::core {

LockRequest LockManager::request(const proto::AppId& app,
                                 const LockIdentity& who,
                                 GrantCallback on_grant) {
  LockState& state = locks_[app];
  if (!state.holder) {
    state.holder = who;
    ++state.generation;
    ++grants_;
    on_grant(true);
    return {true, 0};
  }
  if (*state.holder == who) {
    // Idempotent re-acquire by the current holder.  Bumping the generation
    // is what makes this a lease *renewal*: the timer armed at the original
    // grant sees a generation mismatch and no longer expires the lock.
    ++state.generation;
    ++renewals_;
    on_grant(true);
    return {true, 0};
  }
  const std::uint64_t ticket = next_ticket_++;
  state.queue.push_back(Waiter{who, std::move(on_grant), ticket});
  return {false, ticket};
}

util::Status LockManager::release(const proto::AppId& app,
                                  const LockIdentity& who) {
  const auto it = locks_.find(app);
  if (it == locks_.end() || !it->second.holder) {
    return {util::Errc::failed_precondition, "lock not held"};
  }
  if (!(*it->second.holder == who)) {
    return {util::Errc::permission_denied,
            who.user + " does not hold the lock"};
  }
  it->second.holder.reset();
  ++releases_;
  grant_next(it->second);
  return {};
}

void LockManager::grant_next(LockState& state) {
  if (state.holder || state.queue.empty()) return;
  Waiter next = std::move(state.queue.front());
  state.queue.pop_front();
  state.holder = next.who;
  ++state.generation;
  ++grants_;
  next.on_grant(true);
}

void LockManager::forget(const proto::AppId& app, const LockIdentity& who) {
  const auto it = locks_.find(app);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  for (auto w = state.queue.begin(); w != state.queue.end();) {
    if (w->who == who) {
      w->on_grant(false);
      w = state.queue.erase(w);
    } else {
      ++w;
    }
  }
  if (state.holder && *state.holder == who) {
    state.holder.reset();
    ++releases_;
    grant_next(state);
  }
}

std::optional<LockIdentity> LockManager::drop_app(const proto::AppId& app) {
  const auto it = locks_.find(app);
  if (it == locks_.end()) return std::nullopt;
  std::optional<LockIdentity> evicted = std::move(it->second.holder);
  if (evicted) ++releases_;
  for (Waiter& w : it->second.queue) w.on_grant(false);
  locks_.erase(it);
  return evicted;
}

bool LockManager::expire_ticket(const proto::AppId& app,
                                std::uint64_t ticket) {
  const auto it = locks_.find(app);
  if (it == locks_.end()) return false;
  auto& queue = it->second.queue;
  const auto w = std::find_if(queue.begin(), queue.end(), [&](const Waiter& x) {
    return x.ticket == ticket;
  });
  if (w == queue.end()) return false;
  GrantCallback cb = std::move(w->on_grant);
  queue.erase(w);
  cb(false);
  return true;
}

std::vector<LockReap> LockManager::reap_server(std::uint32_t server) {
  std::vector<LockReap> out;
  for (auto& [app, state] : locks_) {
    LockReap reap{app, {}, {}, {}};
    // Purge queued waiters from the dead server first so the promotion
    // below can never hand the lock to one of them.
    for (auto w = state.queue.begin(); w != state.queue.end();) {
      if (w->who.server == server) {
        reap.dropped_waiters.push_back(w->who);
        w->on_grant(false);
        w = state.queue.erase(w);
      } else {
        ++w;
      }
    }
    if (state.holder && state.holder->server == server) {
      reap.evicted_holder = std::move(state.holder);
      state.holder.reset();
      ++releases_;
      grant_next(state);
      reap.promoted = state.holder;
    }
    if (reap.evicted_holder || !reap.dropped_waiters.empty()) {
      out.push_back(std::move(reap));
    }
  }
  return out;
}

std::optional<LockIdentity> LockManager::holder(
    const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.holder : std::nullopt;
}

std::size_t LockManager::queue_length(const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.queue.size() : 0;
}

std::uint64_t LockManager::generation(const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.generation : 0;
}

}  // namespace discover::core
