#include "core/lock_manager.h"

#include <algorithm>

namespace discover::core {

bool LockManager::request(const proto::AppId& app, const LockIdentity& who,
                          GrantCallback on_grant) {
  LockState& state = locks_[app];
  if (!state.holder) {
    state.holder = who;
    ++state.generation;
    ++grants_;
    on_grant(true);
    return true;
  }
  if (*state.holder == who) {
    // Idempotent re-acquire by the current holder.
    on_grant(true);
    return true;
  }
  state.queue.push_back(Waiter{who, std::move(on_grant)});
  return false;
}

util::Status LockManager::release(const proto::AppId& app,
                                  const LockIdentity& who) {
  const auto it = locks_.find(app);
  if (it == locks_.end() || !it->second.holder) {
    return {util::Errc::failed_precondition, "lock not held"};
  }
  if (!(*it->second.holder == who)) {
    return {util::Errc::permission_denied,
            who.user + " does not hold the lock"};
  }
  it->second.holder.reset();
  ++releases_;
  grant_next(it->second);
  return {};
}

void LockManager::grant_next(LockState& state) {
  if (state.holder || state.queue.empty()) return;
  Waiter next = std::move(state.queue.front());
  state.queue.pop_front();
  state.holder = next.who;
  ++state.generation;
  ++grants_;
  next.on_grant(true);
}

void LockManager::forget(const proto::AppId& app, const LockIdentity& who) {
  const auto it = locks_.find(app);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  for (auto w = state.queue.begin(); w != state.queue.end();) {
    if (w->who == who) {
      w->on_grant(false);
      w = state.queue.erase(w);
    } else {
      ++w;
    }
  }
  if (state.holder && *state.holder == who) {
    state.holder.reset();
    ++releases_;
    grant_next(state);
  }
}

void LockManager::drop_app(const proto::AppId& app) {
  const auto it = locks_.find(app);
  if (it == locks_.end()) return;
  for (Waiter& w : it->second.queue) w.on_grant(false);
  locks_.erase(it);
}

std::optional<LockIdentity> LockManager::holder(
    const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.holder : std::nullopt;
}

std::size_t LockManager::queue_length(const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.queue.size() : 0;
}

std::uint64_t LockManager::generation(const proto::AppId& app) const {
  const auto it = locks_.find(app);
  return it != locks_.end() ? it->second.generation : 0;
}

}  // namespace discover::core
