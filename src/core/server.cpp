// DiscoverServer: lifecycle, channel demux, the daemon-servlet side
// (application registration/updates/responses), event distribution and
// command admission.  Servlets live in server_servlets.cpp; the ORB
// servants and peer logic live in server_remote.cpp.
#include "core/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "util/log.h"

namespace discover::core {

DiscoverServer::DiscoverServer(net::Network& network, ServerConfig config)
    : network_(network),
      config_(std::move(config)),
      tokens_(0, config_.token_secret),
      archive_(config_.archive_cap_per_app,
               config_.mirror_archive_to_db ? &db_ : nullptr) {}

DiscoverServer::~DiscoverServer() {
  // Shard workers capture `this` and the inner cores; join them before
  // members start destructing.
  if (pool_) pool_->stop();
}

void DiscoverServer::attach(net::NodeId self) {
  self_ = self;
  // Shard resolution (DESIGN.md §5i): a shard_count > 1 turns this
  // instance into core 0 plus a dispatcher, with shard_count - 1 inner
  // cores sharing the node id.  Inner cores (group_ already set) skip
  // this; backends that cannot shard clamp to the unsharded path.
  if (group_ == nullptr && config_.shard_count > 1) {
    if (!network_.supports_sharding()) {
      DISCOVER_LOG(warn, "server")
          << config_.name << ": shard_count=" << config_.shard_count
          << " ignored: network backend is single-threaded per node";
    } else {
      group_ = this;
      group_shards_ = config_.shard_count;
      shard_index_ = 0;
      while ((1u << shard_bits_) < group_shards_) ++shard_bits_;
      pool_ = std::make_unique<net::ShardPool>(group_shards_);
      for (std::uint32_t i = 1; i < group_shards_; ++i) {
        auto core = std::make_unique<DiscoverServer>(network_, config_);
        core->configure_shard(i, shard_bits_, this);
        cores_.push_back(std::move(core));
      }
    }
  }
  // Directory epoch: distinct per node and bumpable within a lifetime, so
  // peers can tell "same server, newer state" from "don't trust your cache".
  dir_epoch_ = (static_cast<std::uint64_t>(self.value()) << 32) | 1;
  tokens_ = security::TokenAuthority(self.value(), config_.token_secret);
  container_ = std::make_unique<http::ServletContainer>(network_, self_);
  orb_ = std::make_unique<orb::Orb>(network_, self_);
  orb_->set_retry_policy(config_.orb_retry);
  orb_->set_retry_seed(0x9e37 + self.value());
  if (group_ != nullptr) {
    // Sharded federation (DESIGN.md §5j): tag every id this core's ORB
    // mints with its shard index (the dispatcher routes inbound GIOP by
    // those low bits), run ORB timers on this core's own shard queue, and
    // bounce collocated calls through the dispatcher so the core owning
    // the target servant serves them.  Must precede activate_servants().
    orb_->set_id_partition(shard_index_, shard_bits_);
    orb_->set_scheduler([this](util::Duration d, std::function<void()> fn) {
      return schedule_self(d, std::move(fn));
    });
    orb_->set_loopback(
        [grp = group_](net::Message msg) { grp->route_message(msg); });
  }
  tracer_.configure(self.value(), config_.trace_sample_every,
                    config_.trace_ring_cap, shard_index_, shard_bits_);
  container_->set_tracer(&tracer_);
  orb_->set_tracer(&tracer_);
  register_metrics();
  mount_servlets();
  activate_servants();
  if (pool_) {
    routed_ = &metrics_.sharded_counter("shard_routed_total", group_shards_);
    for (auto& core : cores_) core->attach(self);
    pool_->start();
  }
}

void DiscoverServer::register_metrics() {
  const auto counter = [this](const char* name, const std::uint64_t* v) {
    metrics_.register_counter(name, v);
  };
  counter("logins_ok", &stats_.logins_ok);
  counter("logins_failed", &stats_.logins_failed);
  counter("selects_ok", &stats_.selects_ok);
  counter("selects_failed", &stats_.selects_failed);
  counter("commands_accepted", &stats_.commands_accepted);
  counter("commands_rejected", &stats_.commands_rejected);
  counter("commands_buffered", &stats_.commands_buffered);
  counter("updates_processed", &stats_.updates_processed);
  counter("responses_processed", &stats_.responses_processed);
  counter("events_delivered", &stats_.events_delivered);
  counter("events_dropped", &stats_.events_dropped);
  counter("resync_markers", &stats_.resync_markers);
  counter("overflow_disconnects", &stats_.overflow_disconnects);
  counter("admission_rejected_logins", &stats_.admission_rejected_logins);
  counter("admission_rejected_selects", &stats_.admission_rejected_selects);
  counter("peak_fifo_backlog", &stats_.peak_fifo_backlog);
  counter("peak_fifo_backlog_bytes", &stats_.peak_fifo_backlog_bytes);
  counter("polls_served", &stats_.polls_served);
  counter("collab_posts", &stats_.collab_posts);
  counter("remote_commands_in", &stats_.remote_commands_in);
  counter("remote_commands_out", &stats_.remote_commands_out);
  counter("peer_events_in", &stats_.peer_events_in);
  counter("peer_events_out", &stats_.peer_events_out);
  counter("peer_rate_limited", &stats_.peer_rate_limited);
  counter("peer_batches_out", &stats_.peer_batches_out);
  counter("peer_batch_events_max", &stats_.peer_batch_events_max);
  counter("flushes_by_count", &stats_.flushes_by_count);
  counter("flushes_by_bytes", &stats_.flushes_by_bytes);
  counter("flushes_by_timer", &stats_.flushes_by_timer);
  counter("outbox_dropped", &stats_.outbox_dropped);
  counter("dir_deltas_in", &stats_.dir_deltas_in);
  counter("dir_fulls_in", &stats_.dir_fulls_in);
  counter("dir_refresh_bytes", &stats_.dir_refresh_bytes);
  counter("system_events", &stats_.system_events);
  counter("apps_registered", &stats_.apps_registered);
  counter("apps_departed", &stats_.apps_departed);
  counter("lock_notices", &stats_.lock_notices);
  counter("lock_leases_expired", &stats_.lock_leases_expired);
  counter("lock_waiters_expired", &stats_.lock_waiters_expired);
  counter("lock_holders_reaped", &stats_.lock_holders_reaped);
  counter("lock_waiters_reaped", &stats_.lock_waiters_reaped);
  counter("forget_locks_retries", &stats_.forget_locks_retries);
  counter("forget_locks_abandoned", &stats_.forget_locks_abandoned);
  counter("monitoring_reports", &stats_.monitoring_reports);
  counter("monitoring_failures", &stats_.monitoring_failures);

  // Live state sampled at scrape time.
  const auto gauge = [this](const char* name,
                            std::function<std::int64_t()> fn) {
    metrics_.register_gauge(name, std::move(fn));
  };
  gauge("apps", [this] {
    return static_cast<std::int64_t>(local_app_count());
  });
  gauge("sessions", [this] {
    return static_cast<std::int64_t>(sessions_.size());
  });
  gauge("peers", [this] {
    return static_cast<std::int64_t>(peers_.size());
  });
  gauge("fifo_backlog", [this] {
    return static_cast<std::int64_t>(fifo_entries_);
  });
  gauge("fifo_backlog_bytes", [this] {
    return static_cast<std::int64_t>(fifo_bytes_);
  });
  gauge("http_requests_served", [this] {
    return static_cast<std::int64_t>(container_->requests_served());
  });
  gauge("http_dedup_hits", [this] {
    return static_cast<std::int64_t>(container_->dedup_hits());
  });
  gauge("orb_invocations", [this] {
    return static_cast<std::int64_t>(orb_->invocations());
  });
  gauge("orb_bytes_marshalled", [this] {
    return static_cast<std::int64_t>(orb_->bytes_marshalled());
  });
  gauge("orb_pending_calls", [this] {
    return static_cast<std::int64_t>(orb_->pending_calls());
  });
  gauge("orb_retries", [this] {
    return static_cast<std::int64_t>(orb_->retries());
  });
  gauge("lock_grants", [this] {
    return static_cast<std::int64_t>(locks_.grants());
  });
  gauge("lock_releases", [this] {
    return static_cast<std::int64_t>(locks_.releases());
  });
  gauge("lock_renewals", [this] {
    return static_cast<std::int64_t>(locks_.renewals());
  });
  gauge("trace_spans_recorded", [this] {
    return static_cast<std::int64_t>(tracer_.spans_recorded());
  });
  gauge("trace_spans_evicted", [this] {
    return static_cast<std::int64_t>(tracer_.spans_evicted());
  });

  // Cumulative subsystem latency (owned by container/orb; exposition only).
  metrics_.register_histogram("http_service_ns",
                              &container_->service_latency());
  metrics_.register_histogram("orb_call_ns", &orb_->call_latency());

  // Per-stage latency, owned by the registry and fed through the stage_*
  // pointers (gated by stage_sample()).
  stage_login_ = &metrics_.histogram("stage_login_ns");
  stage_select_ = &metrics_.histogram("stage_select_ns");
  stage_poll_ = &metrics_.histogram("stage_poll_ns");
  stage_deliver_ = &metrics_.histogram("stage_deliver_ns");
  stage_flush_rtt_ = &metrics_.histogram("stage_peer_flush_rtt_ns");
  stage_lock_grant_ = &metrics_.histogram("stage_lock_grant_ns");
}

std::string DiscoverServer::describe() const {
  return config_.name + "@" + std::to_string(self_.value());
}

void DiscoverServer::on_message(const net::Message& msg) {
  if (pool_) {
    // Sharded: the node's network worker is a pure dispatcher; all state
    // (including core 0's) is touched only from shard workers.
    route_message(msg);
    return;
  }
  dispatch_message(msg);
}

void DiscoverServer::dispatch_message(const net::Message& msg) {
  switch (msg.channel) {
    case net::Channel::http:
      if (config_.servlet_cpu_cost > 0) {
        // Calibrated servlet-processing burn (see ServerConfig).
        if (config_.servlet_cost_sleeps) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(config_.servlet_cpu_cost));
        } else {
          const auto until = std::chrono::steady_clock::now() +
                             std::chrono::nanoseconds(config_.servlet_cpu_cost);
          while (std::chrono::steady_clock::now() < until) {
          }
        }
      }
      container_->handle(msg);
      live_requests_.fetch_add(1, std::memory_order_relaxed);
      return;
    case net::Channel::giop:
      orb_->handle(msg);
      return;
    case net::Channel::main_channel:
      if (config_.app_event_cpu_cost > 0) {
        // Calibrated app-event processing burn (see ServerConfig): models
        // the per-update ingest + fan-out work that sharding parallelizes,
        // paid on the owning core.
        if (config_.servlet_cost_sleeps) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(config_.app_event_cpu_cost));
        } else {
          const auto until =
              std::chrono::steady_clock::now() +
              std::chrono::nanoseconds(config_.app_event_cpu_cost);
          while (std::chrono::steady_clock::now() < until) {
          }
        }
      }
      handle_app_channel(msg);
      return;
    case net::Channel::response:
      handle_app_channel(msg);
      return;
    case net::Channel::control:
      handle_control_channel(msg);
      return;
    case net::Channel::command:
      // Servers send commands; they do not receive them.
      DISCOVER_LOG(warn, "server") << describe()
                                   << ": unexpected command-channel message";
      return;
  }
}

// ---------------------------------------------------------------------------
// Daemon servlet: the application gateway (paper §4.1)
// ---------------------------------------------------------------------------

void DiscoverServer::handle_app_channel(const net::Message& msg) {
  auto decoded = proto::decode_framed(msg.payload);
  if (!decoded.ok()) {
    DISCOVER_LOG(warn, "server")
        << describe() << ": bad app frame: " << decoded.error();
    return;
  }
  const proto::FramedMessage& frame = decoded.value();
  // Any traffic from the application's node refreshes its liveness clock.
  if (const auto by_node = apps_by_node_.find(msg.src.value());
      by_node != apps_by_node_.end()) {
    if (AppEntry* entry = find_app(by_node->second)) {
      entry->last_seen = network_.now();
    }
  }
  if (const auto* reg = std::get_if<proto::AppRegister>(&frame)) {
    handle_app_register(msg.src, *reg);
  } else if (const auto* update = std::get_if<proto::AppUpdate>(&frame)) {
    handle_app_update(*update);
  } else if (const auto* phase = std::get_if<proto::AppPhaseNotice>(&frame)) {
    handle_app_phase(*phase);
  } else if (const auto* dereg = std::get_if<proto::AppDeregister>(&frame)) {
    handle_app_deregister(*dereg);
  } else if (const auto* resp = std::get_if<proto::AppResponse>(&frame)) {
    handle_app_response(*resp);
  } else if (const auto* err = std::get_if<proto::AppError>(&frame)) {
    handle_app_error(*err);
  }
}

void DiscoverServer::handle_app_register(net::NodeId src,
                                         const proto::AppRegister& reg) {
  proto::AppRegisterAck ack;
  if (!config_.accept_any_app &&
      config_.accepted_app_keys.count(reg.auth_key) == 0) {
    ack.accepted = false;
    ack.message = "application key not accepted";
    network_.send(self_, src, net::Channel::main_channel,
                  proto::encode_framed(proto::FramedMessage{ack}));
    return;
  }

  // Globally unique id: host server "address" + local counter (§5.2.1).
  // On a sharded node each core mints ids with its shard index in the low
  // shard_bits_ — cores never collide and shard_of_app() recovers the
  // owner.  shard_bits_ == 0 reduces to the original plain counter.
  proto::AppId id;
  id.host = self_.value();
  id.local = (++app_counter_ << shard_bits_) | shard_index_;

  AppEntry entry;
  entry.id = id;
  entry.name = reg.app_name;
  entry.description = reg.description;
  entry.local = true;
  entry.app_node = src;
  entry.acl = security::AccessControlList(reg.acl);
  entry.params = reg.params;
  entry.phase = proto::AppPhase::computing;
  entry.last_seen = network_.now();
  entry.advertised_period = reg.update_period;
  // Record ownership (§6.3): the application's owner is its most privileged
  // registered user.
  security::Privilege best = security::Privilege::none;
  for (const auto& e : reg.acl) {
    if (static_cast<int>(e.privilege) > static_cast<int>(best)) {
      best = e.privilege;
      entry.owner = e.user;
    }
  }
  if (entry.owner.empty()) entry.owner = reg.app_name;

  auto [it, inserted] = apps_.emplace(id, std::move(entry));
  assert(inserted);
  apps_by_node_[src.value()] = id;
  bump_directory(id, /*removed=*/false);
  ++stats_.apps_registered;
  live_registrations_.fetch_add(1, std::memory_order_relaxed);

  // Export the level-2 interface: activate a CorbaProxy servant and bind it
  // in the naming service under the application id (§5.1.2).
  AppEntry& stored = it->second;
  stored.corba_proxy = activate_corba_proxy(stored);
  if (naming_.configured()) {
    naming_.rebind(id.to_string(), stored.corba_proxy, [this](util::Status s) {
      if (!s.ok()) {
        DISCOVER_LOG(warn, "server")
            << describe() << ": naming bind failed: " << s.error();
      }
    });
  }

  ack.accepted = true;
  ack.app_id = id;
  ack.message = "registered with " + config_.name;
  network_.send(self_, src, net::Channel::main_channel,
                proto::encode_framed(proto::FramedMessage{ack}));

  broadcast_system_event(proto::SystemEventKind::app_registered, id,
                         reg.app_name);

  proto::ClientEvent ev;
  ev.kind = proto::EventKind::system;
  ev.app = id;
  ev.text = "application " + reg.app_name + " registered";
  publish_event(stored, std::move(ev));

  DISCOVER_LOG(info, "server")
      << describe() << ": registered " << reg.app_name << " as "
      << id.to_string();
}

void DiscoverServer::handle_app_update(const proto::AppUpdate& update) {
  AppEntry* entry = find_app(update.app_id);
  if (entry == nullptr || !entry->local) return;
  entry->latest_metrics = update.metrics;
  entry->latest_iteration = update.iteration;
  entry->latest_sim_time = update.sim_time;
  entry->phase = update.phase;
  ++stats_.updates_processed;
  live_updates_.fetch_add(1, std::memory_order_relaxed);

  proto::ClientEvent ev;
  ev.kind = proto::EventKind::update;
  ev.app = update.app_id;
  ev.metrics = update.metrics;
  ev.iteration = update.iteration;
  publish_event(*entry, std::move(ev));
}

void DiscoverServer::handle_app_phase(const proto::AppPhaseNotice& notice) {
  AppEntry* entry = find_app(notice.app_id);
  if (entry == nullptr || !entry->local) return;
  if (entry->phase != notice.phase) {
    bump_directory(notice.app_id, /*removed=*/false);
  }
  entry->phase = notice.phase;
  if (notice.phase == proto::AppPhase::interacting) {
    flush_buffered_commands(*entry);
  }
}

void DiscoverServer::flush_buffered_commands(AppEntry& entry) {
  while (!entry.buffered.empty()) {
    proto::AppCommand cmd = std::move(entry.buffered.front());
    entry.buffered.pop_front();
    network_.send(self_, entry.app_node, net::Channel::command,
                  proto::encode_framed(proto::FramedMessage{cmd}));
  }
}

void DiscoverServer::handle_app_deregister(const proto::AppDeregister& msg) {
  AppEntry* entry = find_app(msg.app_id);
  if (entry == nullptr || !entry->local) return;
  bump_directory(msg.app_id, /*removed=*/true);
  ++stats_.apps_departed;

  proto::ClientEvent ev;
  ev.kind = proto::EventKind::system;
  ev.app = msg.app_id;
  ev.text = "application departed: " + msg.reason;
  publish_event(*entry, std::move(ev));

  broadcast_system_event(proto::SystemEventKind::app_departed, msg.app_id,
                         msg.reason);
  if (naming_.configured()) {
    naming_.unbind(msg.app_id.to_string(), [](util::Status) {});
  }
  if (const auto evicted = locks_.drop_app(msg.app_id)) {
    // Waiter callbacks above already published their "denied" notices; the
    // evicted holder gets an explicit one before the entry disappears.
    publish_lock_notice(msg.app_id, evicted->user, 0,
                        "released: application departed");
  }
  if (entry->servant_key != 0) orb_->deactivate(entry->servant_key);
  apps_by_node_.erase(entry->app_node.value());
  apps_.erase(msg.app_id);
  // Client subs keep their FIFOs so the departure event can still be polled.
}

void DiscoverServer::handle_app_response(const proto::AppResponse& resp) {
  AppEntry* entry = find_app(resp.app_id);
  if (entry == nullptr || !entry->local) return;
  ++stats_.responses_processed;

  const auto pending = pending_cmds_.find(resp.request_id);
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::response;
  ev.app = resp.app_id;
  ev.param = resp.param;
  ev.value = resp.value;
  ev.text = resp.ok ? resp.message : "error: " + resp.message;
  if (!resp.ok) ev.kind = proto::EventKind::error;
  if (pending != pending_cmds_.end()) {
    ev.user = pending->second.user;
    ev.request_id = pending->second.client_rid;
    ev.shared = pending->second.shared;
    ev.subgroup = pending->second.subgroup;
    pending_cmds_.erase(pending);
  }
  // Cache parameter changes on the proxy so later interface queries and
  // archive replay agree with the application.
  if (resp.ok && !resp.param.empty()) {
    for (auto& spec : entry->params) {
      if (spec.name == resp.param) spec.value = resp.value;
    }
  }
  if (!resp.params.empty()) entry->params = resp.params;
  publish_event(*entry, std::move(ev));
}

void DiscoverServer::handle_app_error(const proto::AppError& err) {
  AppEntry* entry = find_app(err.app_id);
  if (entry == nullptr || !entry->local) return;
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::error;
  ev.app = err.app_id;
  ev.request_id = err.request_id;
  ev.text = err.message;
  publish_event(*entry, std::move(ev));
}

// ---------------------------------------------------------------------------
// Event distribution (collaboration handler, paper §4.1/§5.2.3)
// ---------------------------------------------------------------------------

void DiscoverServer::publish_event(AppEntry& entry, proto::ClientEvent event) {
  assert(entry.local);
  event.seq = ++entry.event_seq;
  event.at = network_.now();
  archive_.log_app_event(event, entry.owner);
  deliver_local(entry.id, event);
  if (config_.remote_update_mode == RemoteUpdateMode::push) {
    push_to_subscribers(entry, event);
  }
  // Sharded: sessions on other cores that selected this app get the event
  // through one queue hop per watching shard (DESIGN.md §5i).
  if (!entry.watcher_shards.empty()) {
    fan_out_to_watcher_shards(entry, event);
  }
}

bool DiscoverServer::should_deliver(const ClientSession& session,
                                    const ClientSub& sub,
                                    const proto::ClientEvent& ev) const {
  switch (ev.kind) {
    case proto::EventKind::update:
    case proto::EventKind::lock_notice:
    case proto::EventKind::system:
      return true;  // global broadcasts reach the whole group
    case proto::EventKind::chat:
    case proto::EventKind::whiteboard:
      // Sub-group scoped; a client that disabled collaboration neither
      // sends nor receives the shared stream (own messages still echo).
      if (session.user == ev.user) return true;
      return sub.collab_enabled && sub.subgroup == ev.subgroup && ev.shared;
    case proto::EventKind::response:
    case proto::EventKind::error:
      if (session.user == ev.user) return true;  // requester always sees it
      return config_.broadcast_responses && ev.shared && sub.collab_enabled &&
             sub.subgroup == ev.subgroup;
  }
  return false;
}

namespace {

/// Builds the push-extension HTTP message for one event and returns its wire
/// bytes.  should_deliver gates only WHO receives an event, never what it
/// looks like, so every recipient shares this single serialization.
util::Bytes serialize_push_message(const proto::ClientEvent& ev) {
  proto::PollReply push_body;
  push_body.ok = true;
  push_body.events.push_back(ev);
  http::HttpResponse push_msg;
  push_msg.status = 200;
  push_msg.headers.set("X-Push", "1");
  push_msg.body = proto::encode_body(push_body);
  return http::serialize(push_msg);
}

}  // namespace

void DiscoverServer::deliver_local(const proto::AppId& app,
                                   const proto::ClientEvent& ev) {
  // Observability shell around the fan-out: a stage-histogram sample and,
  // when an ambient trace context exists (HTTP or ORB ingress), a span —
  // the remote end of a cross-server delivery records here under the trace
  // id minted at the origin server.
  const bool sampled = stage_sample() && stage_deliver_ != nullptr;
  const bool traced = tracer_.current().valid();
  if (!sampled && !traced) {
    deliver_local_impl(app, ev);
    return;
  }
  const util::TimePoint t0 = network_.now();
  deliver_local_impl(app, ev);
  const util::Duration elapsed = network_.now() - t0;
  if (sampled) stage_deliver_->record(elapsed);
  if (traced) {
    tracer_.record(tracer_.child_of(tracer_.current()), "core.deliver", t0,
                   elapsed, "app=" + app.to_string());
  }
}

void DiscoverServer::deliver_local_impl(const proto::AppId& app,
                                        const proto::ClientEvent& ev) {
  // Sessions whose FIFO overflowed under the disconnect policy; dropped
  // only after the delivery loop finishes iterating.
  std::vector<std::uint64_t> overflow_keys;
  if (!config_.fanout_fast_path) {
    // Legacy path (pre-index cost model, kept for A/B benchmarking): scan
    // every session and re-serialize / re-copy the event per recipient.
    for (auto& [key, session] : sessions_) {
      const auto it = session.apps.find(app);
      if (it == session.apps.end()) continue;
      ClientSub& sub = it->second;
      if (!should_deliver(session, sub, ev)) continue;
      if (sub.push) {
        network_.send(self_, session.client_node, net::Channel::http,
                      serialize_push_message(ev));
      } else {
        fifo_push(sub, std::make_shared<const proto::ClientEvent>(ev));
        if (fifo_over_limit(sub)) {
          if (config_.fifo_overflow == FifoOverflowPolicy::shed_oldest) {
            shed_fifo_overflow(sub);
          } else {
            overflow_keys.push_back(key);
          }
        }
      }
      ++stats_.events_delivered;
      if ((ev.kind == proto::EventKind::response ||
           ev.kind == proto::EventKind::error) &&
          session.user == ev.user) {
        archive_.log_interaction(session.user, ev);
      }
    }
    // Disconnect-policy enforcement is deferred past the loop: drop_session
    // mutates sessions_ (and the subscriber index) under our feet.
    for (const std::uint64_t key : overflow_keys) {
      ++stats_.overflow_disconnects;
      drop_session(key);
    }
    return;
  }

  // Fast path: O(subscribers of this app), with all per-event work hoisted
  // out of the recipient loop and materialized lazily on first use.
  const auto idx = subscribers_.find(app);
  if (idx == subscribers_.end()) return;
  net::Payload push_wire;          // encode-once wire bytes (push recipients)
  bool push_encoded = false;
  proto::SharedClientEvent shared;  // one allocation (poll recipients)
  for (const SubscriberRef& ref : idx->second) {
    ClientSession& session = *ref.session;
    ClientSub& sub = *ref.sub;
    if (!should_deliver(session, sub, ev)) continue;
    if (sub.push) {
      // Server-push extension: deliver immediately, no FIFO memory cost.
      // Every push recipient gets the same refcounted buffer.
      if (!push_encoded) {
        push_wire = serialize_push_message(ev);
        push_encoded = true;
      }
      network_.send(self_, session.client_node, net::Channel::http,
                    push_wire);
    } else {
      if (!shared) shared = std::make_shared<const proto::ClientEvent>(ev);
      fifo_push(sub, shared);
      if (fifo_over_limit(sub)) {
        if (config_.fifo_overflow == FifoOverflowPolicy::shed_oldest) {
          shed_fifo_overflow(sub);
        } else {
          overflow_keys.push_back(ref.session_key);
        }
      }
    }
    ++stats_.events_delivered;
    // Interaction log (§5.2.5): the client's own command results, kept at
    // the server the client is connected to.
    if ((ev.kind == proto::EventKind::response ||
         ev.kind == proto::EventKind::error) &&
        session.user == ev.user) {
      archive_.log_interaction(session.user, ev);
    }
  }
  for (const std::uint64_t key : overflow_keys) {
    ++stats_.overflow_disconnects;
    drop_session(key);
  }
}

// ---------------------------------------------------------------------------
// Command handler (paper §4.1): admission, locks, buffering
// ---------------------------------------------------------------------------

proto::CommandAck DiscoverServer::admit_command(
    AppEntry& entry, const std::string& user, std::uint32_t origin_server,
    std::uint64_t client_rid, proto::CommandKind kind,
    const std::string& param, const proto::ParamValue& value, bool shared,
    const std::string& subgroup) {
  assert(entry.local);
  proto::CommandAck ack;
  ack.request_id = client_rid;

  // Authoritative privilege check at the host (§5.2.2).
  const security::Privilege have = entry.acl.privilege_of(user);
  if (!security::allows(have, proto::required_privilege(kind))) {
    ack.accepted = false;
    ack.message = std::string("privilege ") + security::privilege_name(have) +
                  " does not allow " + proto::command_name(kind);
    ++stats_.commands_rejected;
    return ack;
  }

  if (kind == proto::CommandKind::acquire_lock ||
      kind == proto::CommandKind::release_lock) {
    handle_lock_command(entry, user, origin_server, client_rid,
                        kind == proto::CommandKind::acquire_lock, shared,
                        subgroup);
    ack.accepted = true;
    ack.message = "lock request processed";
    ++stats_.commands_accepted;
    return ack;
  }

  // Mutating commands require the steering lock (§5.2.4: one driver).
  if (proto::required_privilege(kind) != security::Privilege::read_only) {
    const auto holder = locks_.holder(entry.id);
    const LockIdentity me{user, origin_server};
    if (!holder || !(*holder == me)) {
      ack.accepted = false;
      ack.message = holder ? "steering lock held by " + holder->user
                           : "steering lock not held; acquire it first";
      ++stats_.commands_rejected;
      return ack;
    }
  }

  proto::AppCommand cmd;
  cmd.app_id = entry.id;
  cmd.request_id = next_host_rid_++;
  cmd.user = user;
  cmd.kind = kind;
  cmd.param = param;
  cmd.value = value;
  pending_cmds_[cmd.request_id] =
      PendingCmd{user, client_rid, shared, subgroup, origin_server};

  // Interaction log entry for the command itself (§5.2.5).
  proto::ClientEvent cmd_ev;
  cmd_ev.kind = proto::EventKind::system;
  cmd_ev.app = entry.id;
  cmd_ev.user = user;
  cmd_ev.request_id = client_rid;
  cmd_ev.param = param;
  cmd_ev.value = value;
  cmd_ev.text = std::string("command ") + proto::command_name(kind);
  cmd_ev.at = network_.now();
  archive_.log_interaction(user, cmd_ev);

  forward_to_app(entry, cmd);
  ack.accepted = true;
  ack.message = entry.phase == proto::AppPhase::interacting
                    ? "forwarded to application"
                    : "buffered until interaction phase";
  ++stats_.commands_accepted;
  return ack;
}

void DiscoverServer::forward_to_app(AppEntry& entry,
                                    const proto::AppCommand& cmd) {
  // The daemon servlet "buffers all client requests and sends them to the
  // application when the application is in the interaction phase" (§4.1).
  if (entry.phase == proto::AppPhase::interacting) {
    network_.send(self_, entry.app_node, net::Channel::command,
                  proto::encode_framed(proto::FramedMessage{cmd}));
  } else {
    entry.buffered.push_back(cmd);
    ++stats_.commands_buffered;
  }
}

void DiscoverServer::handle_lock_command(AppEntry& entry,
                                         const std::string& user,
                                         std::uint32_t origin_server,
                                         std::uint64_t client_rid,
                                         bool acquire, bool shared,
                                         const std::string& subgroup) {
  (void)shared;
  (void)subgroup;
  const LockIdentity who{user, origin_server};
  const proto::AppId app = entry.id;
  if (acquire) {
    // Acquire->grant latency: sampled at request time so queued grants
    // measure their full wait, not just the promotion callback.
    const bool sampled = stage_sample() && stage_lock_grant_ != nullptr;
    const util::TimePoint requested_at = network_.now();
    const LockRequest req = locks_.request(
        app, who,
        [this, app, who, user, client_rid, sampled,
         requested_at](bool granted) {
          if (granted && sampled) {
            stage_lock_grant_->record(network_.now() - requested_at);
          }
          publish_lock_notice(app, user, client_rid,
                              granted ? "granted" : "denied");
          if (granted) arm_lock_lease(app, who);
        });
    // Queued requests produce no immediate notice; the grant arrives later.
    // A waiter deadline bounds that wait: if the ticket is still queued
    // when the timer fires, the waiter is expired and its callback above
    // publishes the "denied" notice.
    if (!req.granted && config_.lock_wait_deadline > 0) {
      const std::uint64_t ticket = req.ticket;
      schedule_self(config_.lock_wait_deadline, [this, app, ticket] {
        if (locks_.expire_ticket(app, ticket)) {
          ++stats_.lock_waiters_expired;
        }
      });
    }
  } else {
    const util::Status s = locks_.release(app, who);
    publish_lock_notice(app, user, client_rid,
                        s.ok() ? "released" : "release failed: " +
                                                  s.error().message);
  }
}

void DiscoverServer::publish_lock_notice(const proto::AppId& app,
                                         const std::string& user,
                                         std::uint64_t client_rid,
                                         const std::string& what) {
  AppEntry* entry = find_app(app);
  if (entry == nullptr || !entry->local) return;
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::lock_notice;
  ev.app = app;
  ev.user = user;
  ev.request_id = client_rid;
  ev.text = what;
  ++stats_.lock_notices;
  publish_event(*entry, std::move(ev));
}

void DiscoverServer::reap_server_locks(std::uint32_t node,
                                       const std::string& why) {
  if (!config_.lock_reap_on_suspect) return;
  for (const auto& reap : locks_.reap_server(node)) {
    stats_.lock_waiters_reaped += reap.dropped_waiters.size();
    // Dropped waiters' callbacks already published "denied" notices, and a
    // promoted waiter's callback published "granted" and armed its lease.
    if (reap.evicted_holder) {
      ++stats_.lock_holders_reaped;
      publish_lock_notice(reap.app, reap.evicted_holder->user, 0,
                          "holder reaped: " + why);
    }
  }
}

// ---------------------------------------------------------------------------
// Housekeeping: liveness, leases, idle sessions
// ---------------------------------------------------------------------------

void DiscoverServer::arm_lock_lease(const proto::AppId& app,
                                    const LockIdentity& who) {
  if (config_.lock_lease <= 0) return;
  const std::uint64_t generation = locks_.generation(app);
  schedule_self(config_.lock_lease, [this, app, who, generation] {
    const auto holder = locks_.holder(app);
    if (!holder || !(*holder == who) ||
        locks_.generation(app) != generation) {
      return;  // released (or re-granted) in the meantime
    }
    locks_.forget(app, who);  // releases + promotes the next waiter
    ++stats_.lock_leases_expired;
    publish_lock_notice(app, who.user, 0, "lease expired");
  });
}

void DiscoverServer::sweep_app_liveness() {
  if (!started_) return;
  if (config_.app_liveness_factor > 0) {
    const util::TimePoint now = network_.now();
    std::vector<proto::AppId> dead;
    for (const auto& [id, entry] : apps_) {
      if (!entry.local || entry.advertised_period <= 0) continue;
      const util::Duration budget =
          entry.advertised_period *
          static_cast<util::Duration>(config_.app_liveness_factor);
      if (now - entry.last_seen > budget) dead.push_back(id);
    }
    for (const proto::AppId& id : dead) {
      DISCOVER_LOG(warn, "server")
          << describe() << ": application " << id.to_string()
          << " missed its liveness budget; deregistering";
      proto::AppDeregister msg;
      msg.app_id = id;
      msg.reason = "liveness timeout";
      handle_app_deregister(msg);
    }
  }
  liveness_timer_ = schedule_self(config_.app_liveness_sweep,
                                  [this] { sweep_app_liveness(); });
}

void DiscoverServer::sweep_idle_sessions() {
  if (!started_) return;
  if (config_.session_max_idle > 0) {
    container_->expire_sessions(config_.session_max_idle);
    std::vector<std::uint64_t> gone;
    for (const auto& [key, _] : sessions_) {
      if (!container_->has_session(key)) gone.push_back(key);
    }
    for (const std::uint64_t key : gone) drop_session(key);
  }
  session_timer_ = schedule_self(
      std::max<util::Duration>(config_.session_max_idle / 4,
                               util::seconds(1)),
      [this] { sweep_idle_sessions(); });
}

// ---------------------------------------------------------------------------
// Security handler (paper §4.1/§5.2.2)
// ---------------------------------------------------------------------------

util::Status DiscoverServer::verify_token(
    const security::SessionToken& token) const {
  return tokens_.verify(token, network_.now());
}

bool DiscoverServer::authenticate_local(const std::string& user,
                                        std::uint64_t password_digest) const {
  // Level 1: the user must appear on at least one local application's ACL
  // (§5.2.2 / §6.3: identities belong to applications, not servers).
  for (const auto& [_, entry] : apps_) {
    if (entry.local && entry.acl.knows(user) &&
        entry.acl.check_password(user, password_digest)) {
      return true;
    }
  }
  // §6.3's suggested alternative: a global GIS-style identity directory,
  // pulled into a local cache, so users without a local application can
  // still reach their remote ones through this server.
  const auto it = identity_cache_.find(user);
  return it != identity_cache_.end() &&
         (it->second == 0 || it->second == password_digest);
}

std::vector<proto::AppInfo> DiscoverServer::visible_apps(
    const std::string& user) const {
  std::vector<proto::AppInfo> out;
  for (const auto& [id, entry] : apps_) {
    if (!entry.local) continue;
    const security::Privilege p = entry.acl.privilege_of(user);
    if (p == security::Privilege::none) continue;
    proto::AppInfo info = app_info_of(entry);
    info.privilege = p;
    out.push_back(std::move(info));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

DiscoverServer::ClientSession* DiscoverServer::session_of(std::uint64_t key) {
  const auto it = sessions_.find(key);
  return it != sessions_.end() ? &it->second : nullptr;
}

DiscoverServer::ClientSession* DiscoverServer::session_by_token(
    const security::SessionToken& token, std::uint64_t http_session) {
  ClientSession* session = session_of(http_session);
  if (session == nullptr || session->user != token.user) return nullptr;
  return session;
}

void DiscoverServer::drop_session(std::uint64_t key) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  ClientSession& session = it->second;
  for (auto& [app_id, sub] : session.apps) {
    fifo_forget(sub);
    // Release/forget any lock interest, locally or at the remote host
    // (§5.2.4).
    AppEntry* entry = find_app(app_id);
    if (entry != nullptr) {
      if (entry->local) {
        locks_.forget(app_id, LockIdentity{session.user, self_.value()});
      } else {
        send_forget_locks(app_id, session.user, 1);
      }
    } else if (sharded() && shard_owner_of(app_id) != shard_index_) {
      // The app lives on a sibling core: one hop drops this session's lock
      // interest and its watcher refcount there.
      const std::uint32_t owner = shard_owner_of(app_id);
      const std::uint32_t me = shard_index_;
      const std::string user = session.user;
      group_->post_shard(owner, [grp = group_, owner, app_id, user, me] {
        DiscoverServer& host = grp->core_at(owner);
        if (AppEntry* owned = host.find_app(app_id);
            owned != nullptr && !owned->local) {
          // Remote app on the owning core: the lock interest lives at the
          // app's host server, not in this node's lock manager.
          host.send_forget_locks(app_id, user, 1);
        } else {
          host.locks_.forget(app_id, LockIdentity{user, host.self_.value()});
        }
        host.release_shard_watcher(app_id, me);
      });
    }
    // Drop the session's index rows.  The row count is the local watcher
    // refcount: when it reaches zero for a remote app, nobody here needs
    // its event stream any more — unsubscribe at the host in O(1) instead
    // of the old O(apps x sessions) rescan.
    const auto idx = subscribers_.find(app_id);
    if (idx == subscribers_.end()) continue;
    auto& refs = idx->second;
    std::erase_if(refs,
                  [key](const SubscriberRef& r) { return r.session_key == key; });
    if (refs.empty()) {
      subscribers_.erase(idx);
      // Keep the host-side subscription while sibling cores still hold
      // watchers on this entry (they drop through release_shard_watcher).
      if (entry != nullptr && !entry->local && entry->watcher_shards.empty()) {
        unsubscribe_remote(*entry);
      }
    }
  }
  sessions_.erase(it);
}

void DiscoverServer::send_forget_locks(const proto::AppId& app,
                                       const std::string& user,
                                       std::uint32_t attempt) {
  AppEntry* entry = find_app(app);
  // Remote entry gone (host suspect/departed) or the app moved home: the
  // host's own lease/reaping reclaims the lock, nothing left to relay.
  if (entry == nullptr || entry->local) return;
  wire::Encoder args;
  args.str(user);
  args.u32(self_.value());
  invoke_peer(
      entry->corba_proxy.node, entry->corba_proxy, "forget_locks",
      std::move(args),
      [this, app, user, attempt](util::Result<util::Bytes> r) {
        if (r.ok()) return;
        if (attempt >= config_.forget_locks_attempts) {
          ++stats_.forget_locks_abandoned;  // lease expiry is the backstop
          return;
        }
        ++stats_.forget_locks_retries;
        const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 16);
        const util::Duration delay =
            config_.forget_locks_backoff * (util::Duration{1} << shift);
        schedule_self(delay, [this, app, user, attempt] {
          send_forget_locks(app, user, attempt + 1);
        });
      },
      config_.orb_call_timeout);
}

DiscoverServer::ClientSub& DiscoverServer::subscribe_session(
    ClientSession& session, const proto::AppId& app) {
  const auto [it, inserted] = session.apps.try_emplace(app);
  if (inserted) {
    subscribers_[app].push_back(
        SubscriberRef{session.key, &session, &it->second});
  }
  return it->second;
}

std::size_t DiscoverServer::subscriber_count(const proto::AppId& app) const {
  const auto it = subscribers_.find(app);
  return it != subscribers_.end() ? it->second.size() : 0;
}

bool DiscoverServer::app_remote_subscribed(const proto::AppId& app) const {
  const AppEntry* entry = find_app(app);
  return entry != nullptr && !entry->local && entry->remote_subscribed;
}

bool DiscoverServer::subscriber_index_consistent() const {
  // Brute-force oracle: rebuild the expected index from sessions_ and
  // require an exact match (keys, row counts, and pointer identity).
  std::map<proto::AppId, std::size_t> expected;
  for (const auto& [key, session] : sessions_) {
    for (const auto& [app_id, sub] : session.apps) ++expected[app_id];
  }
  std::map<proto::AppId, std::size_t> actual;
  for (const auto& [app_id, refs] : subscribers_) {
    if (refs.empty()) return false;  // empty rows must be erased
    actual[app_id] = refs.size();
    for (const SubscriberRef& ref : refs) {
      const auto sit = sessions_.find(ref.session_key);
      if (sit == sessions_.end()) return false;
      if (ref.session != &sit->second) return false;
      const auto ait = sit->second.apps.find(app_id);
      if (ait == sit->second.apps.end()) return false;
      if (ref.sub != &ait->second) return false;
    }
  }
  return expected == actual;
}

DiscoverServer::AppEntry* DiscoverServer::find_app(const proto::AppId& id) {
  const auto it = apps_.find(id);
  return it != apps_.end() ? &it->second : nullptr;
}

const DiscoverServer::AppEntry* DiscoverServer::find_app(
    const proto::AppId& id) const {
  const auto it = apps_.find(id);
  return it != apps_.end() ? &it->second : nullptr;
}

std::size_t DiscoverServer::local_app_count() const {
  std::size_t n = 0;
  for (const auto& [_, entry] : apps_) {
    if (entry.local) ++n;
  }
  return n;
}

std::size_t DiscoverServer::total_fifo_backlog() const {
  std::size_t n = 0;
  for (const auto& [_, session] : sessions_) {
    for (const auto& [__, sub] : session.apps) n += sub.fifo.size();
  }
  return n;
}

std::size_t DiscoverServer::total_fifo_backlog_bytes() const {
  std::size_t n = 0;
  for (const auto& [_, session] : sessions_) {
    for (const auto& [__, sub] : session.apps) n += sub.fifo_bytes;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Bounded-FIFO backpressure (§6.2 slow clients)
// ---------------------------------------------------------------------------

const char* fifo_overflow_policy_name(FifoOverflowPolicy p) {
  switch (p) {
    case FifoOverflowPolicy::shed_oldest: return "shed_oldest";
    case FifoOverflowPolicy::disconnect: return "disconnect";
  }
  return "?";
}

void DiscoverServer::fifo_push(ClientSub& sub, proto::SharedClientEvent ev) {
  const std::size_t bytes = proto::approx_footprint(*ev);
  sub.fifo.push_back(std::move(ev));
  sub.fifo_bytes += bytes;
  ++fifo_entries_;
  fifo_bytes_ += bytes;
  stats_.peak_fifo_backlog =
      std::max<std::uint64_t>(stats_.peak_fifo_backlog, fifo_entries_);
  stats_.peak_fifo_backlog_bytes =
      std::max<std::uint64_t>(stats_.peak_fifo_backlog_bytes, fifo_bytes_);
}

void DiscoverServer::fifo_pop_front(ClientSub& sub) {
  assert(!sub.fifo.empty());
  const std::size_t bytes = proto::approx_footprint(*sub.fifo.front());
  sub.fifo.pop_front();
  sub.fifo_bytes -= bytes;
  --fifo_entries_;
  fifo_bytes_ -= bytes;
}

bool DiscoverServer::fifo_over_limit(const ClientSub& sub) const {
  if (config_.client_fifo_cap != 0 &&
      sub.fifo.size() > config_.client_fifo_cap) {
    return true;
  }
  return config_.client_fifo_max_bytes != 0 &&
         sub.fifo_bytes > config_.client_fifo_max_bytes;
}

void DiscoverServer::shed_fifo_overflow(ClientSub& sub) {
  while (fifo_over_limit(sub) && !sub.fifo.empty()) {
    fifo_pop_front(sub);
    ++sub.dropped;
    ++sub.shed_since_poll;
    ++stats_.events_dropped;
  }
}

void DiscoverServer::fifo_forget(ClientSub& sub) {
  fifo_entries_ -= sub.fifo.size();
  fifo_bytes_ -= sub.fifo_bytes;
  sub.fifo.clear();
  sub.fifo_bytes = 0;
}

}  // namespace discover::core
