// Steering-lock management (paper §5.2.4).
//
// "A simple locking mechanism is used to ensure that the application remains
// in a consistent state during collaborative interactions ... only one
// client `drives' the application at any time.  In a distributed server
// framework, locking information is only maintained at the application's
// host server; servers providing remote access only relay lock requests."
//
// This class is that host-side authority.  Identity of a lock owner is
// (user, origin server) so the same user portal at two different servers is
// two distinct requesters.  Grants are FIFO; the grant callback fires
// exactly once — immediately for an uncontended lock, later when a release
// promotes the head waiter (for remote requesters the callback completes a
// deferred ORB reply, which is exactly the "relay" the paper describes).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "proto/types.h"
#include "util/result.h"

namespace discover::core {

struct LockIdentity {
  std::string user;
  std::uint32_t server = 0;  // origin server NodeId value

  friend bool operator==(const LockIdentity&, const LockIdentity&) = default;
};

class LockManager {
 public:
  using GrantCallback = std::function<void(bool granted)>;

  /// Requests the steering lock for `app`.  Returns true if granted
  /// immediately (callback already invoked), false if queued.
  /// Re-acquisition by the current holder is granted immediately.
  bool request(const proto::AppId& app, const LockIdentity& who,
               GrantCallback on_grant);

  /// Releases the lock if `who` holds it, then grants the next waiter.
  /// Fails with failed_precondition otherwise.
  util::Status release(const proto::AppId& app, const LockIdentity& who);

  /// Removes `who` from the wait queue (client disconnect); their callback
  /// fires with granted=false.  If `who` holds the lock, releases it.
  void forget(const proto::AppId& app, const LockIdentity& who);

  /// Drops all lock state for an application that went away; every waiter's
  /// callback fires with granted=false.
  void drop_app(const proto::AppId& app);

  [[nodiscard]] std::optional<LockIdentity> holder(
      const proto::AppId& app) const;
  [[nodiscard]] std::size_t queue_length(const proto::AppId& app) const;
  /// Monotone per-app counter bumped on every grant; lets lease timers
  /// detect "same holder, same grant" without storing the identity.
  [[nodiscard]] std::uint64_t generation(const proto::AppId& app) const;

  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

 private:
  struct Waiter {
    LockIdentity who;
    GrantCallback on_grant;
  };

  struct LockState {
    std::optional<LockIdentity> holder;
    std::deque<Waiter> queue;
    std::uint64_t generation = 0;
  };

  void grant_next(LockState& state);

  std::map<proto::AppId, LockState> locks_;
  std::uint64_t grants_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace discover::core
