// Steering-lock management (paper §5.2.4).
//
// "A simple locking mechanism is used to ensure that the application remains
// in a consistent state during collaborative interactions ... only one
// client `drives' the application at any time.  In a distributed server
// framework, locking information is only maintained at the application's
// host server; servers providing remote access only relay lock requests."
//
// This class is that host-side authority.  Identity of a lock owner is
// (user, origin server) so the same user portal at two different servers is
// two distinct requesters.  Grants are FIFO; the grant callback fires
// exactly once — immediately for an uncontended lock, later when a release
// promotes the head waiter (for remote requesters the callback completes a
// deferred ORB reply, which is exactly the "relay" the paper describes).
//
// Lifecycle hardening beyond the paper: every grant (including an
// idempotent re-acquire, which doubles as a lease renewal) bumps the
// per-app generation so stale lease timers can detect they no longer
// apply; queued waiters carry a monotone ticket so a deadline timer can
// expire exactly the wait it was armed for; and `reap_server` evicts all
// holders and waiters whose origin server has been declared dead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/types.h"
#include "util/result.h"

namespace discover::core {

struct LockIdentity {
  std::string user;
  std::uint32_t server = 0;  // origin server NodeId value

  friend bool operator==(const LockIdentity&, const LockIdentity&) = default;
};

/// Outcome of `request`: either the lock was granted on the spot (callback
/// already invoked) or the requester was queued under `ticket`.
struct LockRequest {
  bool granted = false;
  std::uint64_t ticket = 0;  // nonzero iff queued
};

/// What `reap_server` did to one application's lock state.
struct LockReap {
  proto::AppId app;
  std::optional<LockIdentity> evicted_holder;
  std::vector<LockIdentity> dropped_waiters;
  std::optional<LockIdentity> promoted;  // new holder after the eviction
};

class LockManager {
 public:
  using GrantCallback = std::function<void(bool granted)>;

  /// Requests the steering lock for `app`.  Granted immediately (callback
  /// already invoked) when uncontended; a re-acquire by the current holder
  /// is granted immediately AND bumps the generation, renewing any lease
  /// keyed to it.  Otherwise the requester is queued and the returned
  /// ticket identifies the wait for `expire_ticket`.
  LockRequest request(const proto::AppId& app, const LockIdentity& who,
                      GrantCallback on_grant);

  /// Releases the lock if `who` holds it, then grants the next waiter.
  /// Fails with failed_precondition otherwise.
  util::Status release(const proto::AppId& app, const LockIdentity& who);

  /// Removes `who` from the wait queue (client disconnect); their callback
  /// fires with granted=false.  If `who` holds the lock, releases it.
  void forget(const proto::AppId& app, const LockIdentity& who);

  /// Drops all lock state for an application that went away; every waiter's
  /// callback fires with granted=false.  An evicted holder counts as a
  /// release and is returned so the caller can publish a notice.
  std::optional<LockIdentity> drop_app(const proto::AppId& app);

  /// Expires a queued wait by ticket (deadline passed); the waiter's
  /// callback fires with granted=false.  Returns false when the ticket is
  /// no longer queued (already granted, forgotten, or reaped) — the timer
  /// that armed it must then do nothing.
  bool expire_ticket(const proto::AppId& app, std::uint64_t ticket);

  /// Evicts every holder and queued waiter whose origin server is `server`
  /// (declared dead by the peer health tracker).  Waiters from the dead
  /// server are purged first so they can never be promoted; then each
  /// evicted holder's lock passes to the next surviving waiter.  Returns
  /// one record per application that changed.
  std::vector<LockReap> reap_server(std::uint32_t server);

  [[nodiscard]] std::optional<LockIdentity> holder(
      const proto::AppId& app) const;
  [[nodiscard]] std::size_t queue_length(const proto::AppId& app) const;
  /// Monotone per-app counter bumped on every grant and renewal; lets
  /// lease timers detect "same holder, same grant" without storing the
  /// identity.
  [[nodiscard]] std::uint64_t generation(const proto::AppId& app) const;

  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }
  [[nodiscard]] std::uint64_t renewals() const { return renewals_; }

 private:
  struct Waiter {
    LockIdentity who;
    GrantCallback on_grant;
    std::uint64_t ticket = 0;
  };

  struct LockState {
    std::optional<LockIdentity> holder;
    std::deque<Waiter> queue;
    std::uint64_t generation = 0;
  };

  void grant_next(LockState& state);

  std::map<proto::AppId, LockState> locks_;
  std::uint64_t grants_ = 0;
  std::uint64_t releases_ = 0;
  std::uint64_t renewals_ = 0;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace discover::core
