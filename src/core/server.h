// The DISCOVER interaction and collaboration server (paper §4.1, §5).
//
// One DiscoverServer is one middle-tier node: a servlet-extended web server
// facing thin HTTP clients, a daemon endpoint facing applications over the
// Main/Command/Response channels, and an ORB endpoint facing peer servers
// (DiscoverCorbaServer level-1 interface + one CorbaProxy level-2 interface
// per local application), discovered through the trader service.
//
// Core service handlers (paper §4.1) and where they live here:
//  * Master handler        -> MasterServlet   (login/select/logout, sessions)
//  * Command handler       -> CommandServlet  (steering requests -> proxy)
//  * Collaboration handler -> CollabServlet   (poll, chat/whiteboard, groups)
//  * Security handler      -> Authenticator logic inside the server (2-level
//                             auth, ACLs from app registration, tokens)
//  * Daemon servlet        -> the Main/Command/Response channel demux
//                             (application registration, buffering)
//  * Session archival      -> ArchiveServlet + SessionArchive
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/lock_manager.h"
#include "core/session_archive.h"
#include "db/record_store.h"
#include "http/http_client.h"
#include "http/servlet_container.h"
#include "net/network.h"
#include "net/retry.h"
#include "net/shard_pool.h"
#include "orb/naming.h"
#include "orb/orb.h"
#include "orb/trader.h"
#include "proto/messages.h"
#include "security/rate_limit.h"
#include "security/token.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace discover::core {

// Servlet mount points (the portal URL namespace).
inline constexpr const char* kPathLogin = "/discover/master/login";
inline constexpr const char* kPathSelect = "/discover/master/select";
inline constexpr const char* kPathLogout = "/discover/master/logout";
inline constexpr const char* kPathCommand = "/discover/command";
inline constexpr const char* kPathPoll = "/discover/collab/poll";
inline constexpr const char* kPathCollabPost = "/discover/collab/post";
inline constexpr const char* kPathGroup = "/discover/collab/group";
inline constexpr const char* kPathArchive = "/discover/archive";
inline constexpr const char* kPathRedirect = "/discover/redirect";
inline constexpr const char* kPathViz = "/discover/viz";
inline constexpr const char* kPathMetrics = "/discover/metrics";
inline constexpr const char* kPathTrace = "/discover/trace";
/// Response header carrying the application's host-server node id on
/// /discover/redirect replies (the "request redirection" auxiliary
/// service of paper §4.1).
inline constexpr const char* kHostHeader = "X-Discover-Host";

/// How a server that is NOT an application's host learns about new events:
/// push (host forwards each event to subscribed servers — one message per
/// remote server, §5.2.3) or poll (the subscriber's CorbaProxy-side polls
/// periodically, as the prototype did).
enum class RemoteUpdateMode { push, poll };

/// What happens when a client's poll FIFO exceeds its bound (§6.2 slow
/// clients).  `shed_oldest` drops from the front and the client observes a
/// `resync` marker event on its next poll (value = number shed), telling it
/// to catch up via the archive.  `disconnect` drops the whole session — the
/// client's next request fails authentication and it must re-login.
enum class FifoOverflowPolicy : std::uint8_t { shed_oldest = 0,
                                               disconnect = 1 };
const char* fifo_overflow_policy_name(FifoOverflowPolicy p);

struct ServerConfig {
  std::string name = "discover";
  /// Application authentication (paper §4.1: "pre-assigned unique
  /// identifier").  When accept_any_app is false, only keys in
  /// accepted_app_keys may register.
  bool accept_any_app = true;
  std::set<std::uint64_t> accepted_app_keys;

  std::uint64_t token_secret = 0x5eed;
  util::Duration token_ttl = util::seconds(3600);

  /// Per-client per-app FIFO buffer capacity ("FIFO buffers at the server
  /// for each client to support slow clients", §6.2).  0 = unbounded.
  std::size_t client_fifo_cap = 256;
  /// Byte bound on the same FIFO (approx_footprint sum); 0 = entries-only.
  /// Whichever bound trips first triggers `fifo_overflow`.
  std::size_t client_fifo_max_bytes = 0;
  /// Policy applied when a FIFO exceeds either bound.
  FifoOverflowPolicy fifo_overflow = FifoOverflowPolicy::shed_oldest;

  /// Login admission control: refuse new sessions beyond this many
  /// (existing sessions may always re-login).  0 = unlimited.
  std::size_t max_sessions = 0;
  /// Per-application subscriber cap enforced at select time.  0 = unlimited.
  std::size_t max_sessions_per_app = 0;
  /// Suggested client back-off carried in admission rejections (also sent
  /// as an HTTP Retry-After header, rounded up to whole seconds).
  util::Duration admission_retry_after = util::seconds(2);

  util::Duration peer_refresh_period = util::seconds(2);
  util::Duration orb_call_timeout = util::seconds(10);
  /// Login aggregation waits at most this long for slow peers.
  util::Duration login_fanout_timeout = util::seconds(3);

  /// Peer health: after this many consecutive ORB timeouts a peer is marked
  /// suspect — its remote apps are withdrawn from the directory and no more
  /// calls are routed to it until a re-probe (sent each peer_refresh_period)
  /// succeeds.  0 disables suspicion.
  std::uint32_t peer_suspect_threshold = 3;
  /// Retry policy for ORB calls to peers (disabled by default: legacy
  /// single-shot semantics).
  net::RetryPolicy orb_retry{};

  RemoteUpdateMode remote_update_mode = RemoteUpdateMode::push;
  util::Duration remote_poll_period = util::milliseconds(100);

  /// Peer outbox (batched server-to-server propagation, DESIGN.md "Peer
  /// outbox & directory deltas").  Push-mode events and relayed collab
  /// posts bound for a peer queue in a per-peer outbox and leave as one
  /// forward_events batch when the first of three triggers fires: the
  /// batch reaches peer_batch_max_events, its encoded payload reaches
  /// peer_batch_max_bytes, or peer_flush_delay elapses since the first
  /// queued event (Nagle).  A zero delay disables the outbox entirely and
  /// reproduces the legacy one-ORB-call-per-event wire behaviour — kept
  /// for A/B, mirroring fanout_fast_path.
  util::Duration peer_flush_delay = util::milliseconds(5);
  std::size_t peer_batch_max_events = 64;
  std::size_t peer_batch_max_bytes = 48 * 1024;
  /// Outbox backpressure: while a peer cannot be flushed (suspect, or a
  /// batch is in flight) the queue is bounded here; at the cap the oldest
  /// coalescible event (kind==update) — or failing that the oldest event —
  /// is dropped and counted in outbox_dropped.
  std::size_t peer_outbox_cap = 1024;

  /// Versioned peer directory: each refresh round fetch every live peer's
  /// application directory via list_apps_since as a delta against the last
  /// seen (epoch, version).  false = request a full snapshot every round
  /// (legacy A/B for the delta machinery).
  bool peer_dir_deltas = true;
  /// Disables the per-round directory fetch entirely (discovery then works
  /// only through logins and the control channel, as it did before the
  /// versioned directory existed).
  bool peer_dir_refresh = true;
  /// Bounded host-side directory change log; callers further behind than
  /// this get a full snapshot.
  std::size_t dir_log_cap = 128;

  /// TEST ONLY (mixed-version rolling upgrade): emulate a pre-outbox peer
  /// build whose DiscoverCorbaServer knows neither forward_events nor
  /// list_apps_since.  New hosts must detect the rejection and fall back
  /// to singular forward_event calls.
  bool emulate_legacy_peer = false;

  std::size_t archive_cap_per_app = 4096;
  /// Mirror archived events into the record store (exercises §6.3
  /// ownership); costs memory in long benches, so optional.
  bool mirror_archive_to_db = false;

  /// Resource-usage policy applied to each peer server (§6.3); zero limits
  /// disable enforcement.
  security::AccessPolicy peer_policy{};

  /// Share command responses with the requester's collaboration (sub)group.
  bool broadcast_responses = true;

  /// Fan-out fast path (see DESIGN.md "Fan-out fast path"): deliver events
  /// through the per-app subscriber index with one serialization per event
  /// and shared event instances in the poll FIFOs.  When false,
  /// deliver_local falls back to the legacy full-session scan with
  /// per-recipient encoding — kept for A/B benchmarking of the fast path.
  bool fanout_fast_path = true;

  /// Application liveness: a local application is force-deregistered when
  /// no Main/Response-channel traffic arrives for `app_liveness_factor`
  /// times its advertised update period.  Paused applications stay alive
  /// by sending keep-alive phase notices.  Factor 0 disables the check;
  /// applications that advertise no period are exempt.
  std::uint32_t app_liveness_factor = 8;
  util::Duration app_liveness_sweep = util::seconds(1);

  /// Steering-lock lease: the host force-releases a lock held longer than
  /// this, un-wedging the group when a driver walks away (0 = no lease —
  /// the paper's behaviour).
  util::Duration lock_lease = 0;

  /// Queued lock requesters wait at most this long for a grant; on expiry
  /// the waiter is removed and receives a `denied` lock notice instead of
  /// starving forever (0 = wait forever — the paper's behaviour).
  util::Duration lock_wait_deadline = 0;

  /// Reap steering-lock holders and queued waiters whose origin server has
  /// been declared dead (marked suspect, or announced server_down).  The
  /// lock passes to the next surviving waiter and survivors see a
  /// lock_notice.  Leases remain the backstop when disabled.
  bool lock_reap_on_suspect = true;

  /// Retry schedule for the forget_locks relay sent to a remote host when
  /// a local session drops.  These are whole-call resends on top of the
  /// ORB-level retransmits of `orb_retry`; the relay is idempotent at the
  /// host, so duplicates are harmless.  Lease expiry (or reaping) is the
  /// backstop when every attempt fails.
  std::uint32_t forget_locks_attempts = 4;
  util::Duration forget_locks_backoff = util::milliseconds(250);

  /// Client sessions idle at the HTTP layer longer than this are dropped
  /// (their lock interest is released, remote subscriptions ref-counted
  /// down).
  util::Duration session_max_idle = util::seconds(600);

  /// Report server statistics to a MONITORING service from the pool of
  /// services (§3), discovered at runtime via the trader.  Off by default.
  bool report_to_monitoring = false;
  util::Duration monitoring_period = util::seconds(1);

  /// Refresh cadence for the optional global identity directory (§6.3's
  /// "centralized directory service like the GIS that maintains user-IDs");
  /// active once set_identity_directory() provides a reference.
  util::Duration identity_refresh_period = util::seconds(1);

  /// Observability (DESIGN.md §5h).  Request tracing: sampled ingress
  /// requests mint a trace context that rides the X-Trace-Context HTTP
  /// header and ORB request-frame metadata across servers; every hop
  /// records spans into a bounded per-server ring served by /discover/trace.
  /// 0 disables tracing, 1 traces every root, N traces the first root of
  /// each stride of N.  Ids are counter-based, so Sim runs stay
  /// byte-identical per seed.
  std::uint64_t trace_sample_every = 16;
  std::size_t trace_ring_cap = 2048;
  /// Per-stage latency histograms (login, select, poll, deliver_local,
  /// outbox flush RTT, lock acquire->grant), exported via /discover/metrics.
  /// Same stride semantics as trace_sample_every; 0 disables the
  /// timestamping entirely.
  std::uint32_t stage_sample_every = 1;

  /// CALIBRATION (ThreadNetwork experiments only): CPU burned per HTTP
  /// request before servicing it, emulating the cost of the original Java
  /// servlet stack on 2001 hardware.  The paper's ~20-client knee (§6.1)
  /// exists because each servlet request was expensive; a 2026 core makes
  /// the same request sub-microsecond, which would shift the knee far
  /// right.  Zero disables the burn (default).  Has no effect on virtual
  /// time under SimNetwork.
  util::Duration servlet_cpu_cost = 0;

  /// How the calibrated burn is spent.  `false` (default) busy-spins,
  /// pinning a hardware thread — right for measuring a CPU-bound knee.
  /// `true` sleeps instead, modelling the cost as blocking service time
  /// (the 2001 servlet stack spent most of its budget in blocking I/O);
  /// shard workers then overlap service even on hosts with fewer physical
  /// cores than shards, which is what the shard sweep measures.
  bool servlet_cost_sleeps = false;

  /// Worker shards per server node (DESIGN.md §5i).  With shard_count > 1
  /// the node splits into N independent cores: a dispatcher on the node's
  /// network worker hashes each message's source node to its owning core
  /// and every core runs its own event loop over its own queue, so the hot
  /// paths (deliver_local, FIFO drains, lock operations) execute with no
  /// shared locks; cross-core interactions are explicit queue hops.  Only
  /// honoured on backends whose supports_sharding() is true (ThreadNetwork)
  /// — the Sim backend clamps to 1 so deterministic suites are unaffected —
  /// and shard_count = 1 is exactly the unsharded code path.  Federation
  /// composes with sharding (DESIGN.md §5j): every core runs its own ORB
  /// with shard-tagged servant keys / request ids and its own per-peer
  /// outboxes, the dispatcher routes inbound GIOP frames to the owning
  /// core from the header alone, and registry discovery / peer health /
  /// the versioned directory are centralised on core 0.
  std::uint32_t shard_count = 1;

  /// CALIBRATION (ThreadNetwork experiments only): CPU burned per
  /// main-channel application update and per ingested peer event before
  /// processing it, emulating the 2001-era per-event server cost (decode +
  /// archive + fan-out on period hardware).  The burn runs on the owning
  /// shard core, so the federation bench measures how event processing
  /// parallelises across shards.
  /// Spends via servlet_cost_sleeps like servlet_cpu_cost.  Zero (default)
  /// disables it.
  util::Duration app_event_cpu_cost = 0;
};

struct ServerStats {
  std::uint64_t logins_ok = 0;
  std::uint64_t logins_failed = 0;
  std::uint64_t selects_ok = 0;
  std::uint64_t selects_failed = 0;
  std::uint64_t commands_accepted = 0;
  std::uint64_t commands_rejected = 0;
  std::uint64_t commands_buffered = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t responses_processed = 0;
  std::uint64_t events_delivered = 0;
  std::uint64_t events_dropped = 0;  // shed from client FIFOs (both policies)
  // Backpressure (bounded FIFOs + admission control).
  std::uint64_t resync_markers = 0;        // synthesized on post-shed polls
  std::uint64_t overflow_disconnects = 0;  // sessions dropped by policy
  std::uint64_t admission_rejected_logins = 0;
  std::uint64_t admission_rejected_selects = 0;
  std::uint64_t peak_fifo_backlog = 0;        // entries, across all FIFOs
  std::uint64_t peak_fifo_backlog_bytes = 0;  // approx_footprint sum
  std::uint64_t polls_served = 0;
  std::uint64_t collab_posts = 0;
  std::uint64_t remote_commands_in = 0;
  std::uint64_t remote_commands_out = 0;
  std::uint64_t peer_events_in = 0;
  std::uint64_t peer_events_out = 0;
  std::uint64_t peer_rate_limited = 0;
  // Peer outbox pipeline.
  std::uint64_t peer_batches_out = 0;
  std::uint64_t peer_batch_events_max = 0;  // largest batch flushed so far
  std::uint64_t flushes_by_count = 0;
  std::uint64_t flushes_by_bytes = 0;
  std::uint64_t flushes_by_timer = 0;
  std::uint64_t outbox_dropped = 0;
  // Versioned peer directory.
  std::uint64_t dir_deltas_in = 0;
  std::uint64_t dir_fulls_in = 0;
  std::uint64_t dir_refresh_bytes = 0;
  std::uint64_t system_events = 0;
  std::uint64_t apps_registered = 0;
  std::uint64_t apps_departed = 0;
  // Steering-lock lifecycle.
  std::uint64_t lock_notices = 0;
  std::uint64_t lock_leases_expired = 0;
  std::uint64_t lock_waiters_expired = 0;
  std::uint64_t lock_holders_reaped = 0;
  std::uint64_t lock_waiters_reaped = 0;
  std::uint64_t forget_locks_retries = 0;
  std::uint64_t forget_locks_abandoned = 0;
  // Monitoring pushes (report_monitoring): completed reports and failed
  // ones (service unreachable / call timed out).  Failures are counted,
  // warn-logged with backoff, and trigger re-discovery — never silent.
  std::uint64_t monitoring_reports = 0;
  std::uint64_t monitoring_failures = 0;

  /// Field-wise accumulate (shard cores sum their stats at scrape time).
  void add(const ServerStats& other);
};

class DiscoverServer final : public net::MessageHandler {
 public:
  DiscoverServer(net::Network& network, ServerConfig config);
  ~DiscoverServer() override;

  DiscoverServer(const DiscoverServer&) = delete;
  DiscoverServer& operator=(const DiscoverServer&) = delete;

  /// Must be called with the NodeId returned by Network::add_node(this).
  void attach(net::NodeId self);
  /// Initial references to the shared naming/trader services (the CORBA
  /// "resolve_initial_references" analogue).  Optional: a server without a
  /// registry runs standalone.  On a sharded server (call after attach())
  /// every core gets the naming service — each resolves remote apps through
  /// its own ORB — while trader discovery, export and peer health stay on
  /// core 0.  Throws std::invalid_argument for config combinations that
  /// cannot federate (shard_count > 1 with emulate_legacy_peer: the
  /// emulated pre-outbox build predates sharding).
  void set_registry(orb::ObjectRef naming, orb::ObjectRef trader);
  /// Optional global identity directory (a GIS-style servant answering
  /// "list_identities"); §6.3: lets users log in at servers where no local
  /// application lists them, using globally consistent user-IDs.
  void set_identity_directory(orb::ObjectRef directory);
  /// Exports the DISCOVER trader offer and starts the peer-refresh loop.
  void start();
  /// Broadcasts server_down to peers and stops refreshing.
  void shutdown();

  void on_message(const net::Message& msg) override;

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] net::NodeId node() const { return self_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// Snapshot of internal counters.  Only safe once the server's execution
  /// context is quiescent (SimNetwork, or after ThreadNetwork::stop()).
  /// On a sharded server this is core 0's share only; use stats_sum().
  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  /// Field-wise sum of every shard core's stats (== stats() when
  /// unsharded).  Same quiescence requirement as stats().
  [[nodiscard]] ServerStats stats_sum() const;
  /// Live counters safe to poll from other threads while the server runs.
  /// Summed across shard cores.
  [[nodiscard]] std::uint64_t live_updates_processed() const {
    std::uint64_t v = live_updates_.load(std::memory_order_relaxed);
    for (const auto& core : cores_) {
      v += core->live_updates_.load(std::memory_order_relaxed);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t live_requests_served() const {
    std::uint64_t v = live_requests_.load(std::memory_order_relaxed);
    for (const auto& core : cores_) {
      v += core->live_requests_.load(std::memory_order_relaxed);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t live_apps_registered() const {
    std::uint64_t v = live_registrations_.load(std::memory_order_relaxed);
    for (const auto& core : cores_) {
      v += core->live_registrations_.load(std::memory_order_relaxed);
    }
    return v;
  }
  /// Events ingested from peer servers (push batches, polls, backfills),
  /// summed across shard cores; safe to poll while running.
  [[nodiscard]] std::uint64_t live_peer_events_in() const {
    std::uint64_t v = live_peer_events_.load(std::memory_order_relaxed);
    for (const auto& core : cores_) {
      v += core->live_peer_events_.load(std::memory_order_relaxed);
    }
    return v;
  }
  // -- sharding (DESIGN.md §5i) ----------------------------------------------
  /// Effective shard count (1 when the config asked for more but the
  /// network cannot shard).  Meaningful after attach().
  [[nodiscard]] std::uint32_t shard_count() const { return group_shards_; }
  [[nodiscard]] std::uint32_t shard_index() const { return shard_index_; }
  [[nodiscard]] bool sharded() const { return group_shards_ > 1; }
  /// Shard core `idx` (0 = this instance).  Only safe to introspect once
  /// quiescent, like stats().
  [[nodiscard]] const DiscoverServer& shard_core(std::uint32_t idx) const {
    return idx == 0 ? *this : *cores_[idx - 1];
  }
  /// Affinity hash: the shard owning a session-less request from `node`
  /// (clients and applications alike).  Pure; pinned by the routing
  /// property test.
  [[nodiscard]] static std::uint32_t shard_of_node(std::uint32_t node,
                                                   std::uint32_t shards) {
    return shards <= 1 ? 0
                       : static_cast<std::uint32_t>(
                             (node * 2654435761ULL) % shards);
  }
  /// The shard encoded in a minted app id's low `bits` (app ids are minted
  /// on the core that owns the app's node, so both hashes agree).
  [[nodiscard]] static std::uint32_t shard_of_app(const proto::AppId& id,
                                                  std::uint32_t bits,
                                                  std::uint32_t shards) {
    return bits == 0 ? 0
                     : static_cast<std::uint32_t>(id.local &
                                                  ((1u << bits) - 1u)) %
                           (shards == 0 ? 1 : shards);
  }
  /// Blocks until every shard queue drained, then joins the shard workers.
  /// Call after the network stopped and before reading stats_sum().
  void drain_shards();
  [[nodiscard]] const SessionArchive& archive() const { return archive_; }
  [[nodiscard]] const LockManager& locks() const { return locks_; }
  [[nodiscard]] const orb::Orb& orb() const { return *orb_; }
  [[nodiscard]] const http::ServletContainer& container() const {
    return *container_;
  }
  /// Metric catalogue behind /discover/metrics (counters reference the
  /// ServerStats fields; stage histograms are registry-owned).
  [[nodiscard]] const util::MetricsRegistry& metrics() const {
    return metrics_;
  }
  [[nodiscard]] util::MetricsRegistry& metrics() { return metrics_; }
  /// Span ring behind /discover/trace.
  [[nodiscard]] const util::Tracer& tracer() const { return tracer_; }
  [[nodiscard]] util::Tracer& tracer() { return tracer_; }
  [[nodiscard]] db::RecordStore& record_store() { return db_; }
  [[nodiscard]] std::size_t peer_count() const {
    return peer_count_cache_.load(std::memory_order_relaxed);
  }
  /// True while `node` is a known peer currently marked suspect.
  [[nodiscard]] bool peer_suspect(net::NodeId node) const;
  [[nodiscard]] std::size_t local_app_count() const;
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  /// Applications (local only) visible to `user` per the ACLs.
  [[nodiscard]] std::vector<proto::AppInfo> visible_apps(
      const std::string& user) const;
  [[nodiscard]] std::optional<LockIdentity> lock_holder(
      const proto::AppId& app) const {
    return locks_.holder(app);
  }
  [[nodiscard]] std::size_t lock_queue_length(const proto::AppId& app) const {
    return locks_.queue_length(app);
  }
  /// Total backlog across all client FIFOs (server memory pressure, A2).
  /// Brute-force entry scan — the oracle the running counters are checked
  /// against in tests.
  [[nodiscard]] std::size_t total_fifo_backlog() const;
  /// Same, in approximate bytes (sum of ClientSub::fifo_bytes).
  [[nodiscard]] std::size_t total_fifo_backlog_bytes() const;
  /// Subscribers of `app` per the fan-out index (sessions that selected it).
  [[nodiscard]] std::size_t subscriber_count(const proto::AppId& app) const;
  /// True iff the subscriber index exactly mirrors a brute-force scan of
  /// every session's selected apps — the oracle of the index property test.
  [[nodiscard]] bool subscriber_index_consistent() const;
  /// True while this (non-host) server holds a live event subscription at
  /// the app's host.  False for local/unknown apps.
  [[nodiscard]] bool app_remote_subscribed(const proto::AppId& app) const;
  /// Events currently queued in `node`'s outbox (0 when none exists).
  [[nodiscard]] std::size_t outbox_depth(std::uint32_t node) const;
  /// Cached directory of `node`'s local applications (versioned-directory
  /// refresh); empty until the first list_apps_since reply.
  [[nodiscard]] std::vector<proto::AppInfo> peer_directory(
      std::uint32_t node) const;
  /// This server's own directory version (bumped on local membership and
  /// phase changes).
  [[nodiscard]] std::uint64_t directory_version() const {
    return dir_version_;
  }
  /// Invalidates every peer's cached directory view of this server: the
  /// next list_apps_since from any peer gets a full snapshot.  An operator
  /// escape hatch (and the epoch-mismatch test hook).
  void bump_directory_epoch();

 private:
  // -- internal data ---------------------------------------------------------
  struct ClientSub {
    /// Shared event instances: one ClientEvent allocation is pushed into
    /// every subscriber's FIFO, so fan-out cost is independent of group
    /// size.  Events are immutable once published.
    std::deque<proto::SharedClientEvent> fifo;
    /// approx_footprint sum of `fifo` (byte-bound accounting).
    std::size_t fifo_bytes = 0;
    std::uint64_t dropped = 0;
    /// Events shed since the last poll; nonzero makes the next poll lead
    /// with a resync marker carrying this count.
    std::uint64_t shed_since_poll = 0;
    bool collab_enabled = true;
    /// Server-push extension: events go straight to the client instead of
    /// the poll FIFO.
    bool push = false;
    std::string subgroup;
    security::Privilege privilege = security::Privilege::none;
  };

  struct ClientSession {
    std::uint64_t key = 0;  // http session id
    std::string user;
    net::NodeId client_node{0};
    std::map<proto::AppId, ClientSub> apps;
  };

  /// One row of the per-app subscriber index.  The raw pointers stay valid
  /// because both maps (sessions_ and ClientSession::apps) have node-stable
  /// elements and rows are removed in drop_session before the session is
  /// erased; subs are never removed individually.
  struct SubscriberRef {
    std::uint64_t session_key = 0;
    ClientSession* session = nullptr;
    ClientSub* sub = nullptr;
  };

  /// ApplicationProxy (paper §4.1/§5.1.2): full context for one application,
  /// local (we are its host) or remote (we relay to its host's CorbaProxy).
  struct AppEntry {
    proto::AppId id;
    std::string name;
    std::string description;
    std::string owner;  // highest-privilege ACL user (record ownership §6.3)
    bool local = true;
    net::NodeId app_node{0};        // local only
    orb::ObjectRef corba_proxy;     // local: our servant; remote: resolved
    std::uint64_t servant_key = 0;  // local only
    security::AccessControlList acl;  // authoritative at host only
    std::vector<proto::ParamSpec> params;
    proto::AppPhase phase = proto::AppPhase::computing;
    std::uint64_t event_seq = 0;  // host-side event numbering
    std::map<std::string, double> latest_metrics;
    std::uint64_t latest_iteration = 0;
    double latest_sim_time = 0;
    std::deque<proto::AppCommand> buffered;  // host: while app computes
    util::TimePoint last_seen = 0;           // host: liveness tracking
    util::Duration advertised_period = 0;    // from AppRegister
    /// Host: subscribed remote servers -> their DiscoverCorbaServer ref.
    std::map<std::uint32_t, orb::ObjectRef> subscribers;
    /// Remote-side: last event seq received from the host.
    std::uint64_t remote_known_seq = 0;
    net::TimerId poll_timer{0};  // remote-side, poll mode
    bool remote_subscribed = false;
    bool departed = false;
    /// Remote-side, push mode: nonzero while a subscribe-gap fetch is in
    /// flight (events the host published before our subscribe landed).
    /// Pushes that arrive meanwhile wait in the buffer so the gap events
    /// still come out in per-app order.
    std::uint64_t backfill_upto = 0;
    std::vector<proto::ClientEvent> backfill_buffer;
    /// Sharded host core only: watcher refcounts per *other* shard core
    /// (clients whose sessions live on this core are counted by the
    /// subscriber index instead).  Each published event is posted once to
    /// every shard listed here.
    std::map<std::uint32_t, std::uint64_t> watcher_shards;
  };

  struct PendingCmd {
    std::string user;
    std::uint64_t client_rid = 0;
    bool shared = true;
    std::string subgroup;
    std::uint32_t origin_server = 0;
  };

  struct Peer {
    std::uint32_t node = 0;
    std::string name;
    orb::ObjectRef server_ref;  // their DiscoverCorbaServer
    std::unique_ptr<security::RateLimiter> limiter;
    // Health tracking: consecutive ORB timeouts; at
    // config_.peer_suspect_threshold the peer goes suspect and is only
    // re-probed (not routed to) until a probe succeeds.
    std::uint32_t consecutive_failures = 0;
    bool suspect = false;
    // Versioned directory cache: the peer's local applications as of the
    // last list_apps_since reply, and the (epoch, version) to present on
    // the next one.
    std::map<proto::AppId, proto::AppInfo> directory;
    std::uint64_t dir_epoch = 0;
    std::uint64_t dir_version = 0;
    bool dir_inflight = false;
    bool dir_unsupported = false;  // pre-outbox build; stop asking
  };

  /// One queued outbox event.  `encoded` is the standalone CDR encoding of
  /// the event, produced once and shared by every peer outbox the event
  /// lands in; flushes splice it into the batch without re-encoding.  The
  /// decoded event is kept alongside for the legacy singular fallback.
  struct OutboxItem {
    proto::EventFrameKind frame_kind = proto::EventFrameKind::push;
    proto::AppId app;
    std::uint64_t seq = 0;  // 0 for collab_relay
    proto::EventKind kind = proto::EventKind::system;
    proto::SharedClientEvent event;
    std::shared_ptr<const util::Bytes> encoded;
    /// Ambient trace context at enqueue time (invalid when unsampled).  A
    /// flush runs under the first traced item's context so the batched
    /// forward_events call joins the trace that queued it.
    util::TraceContext trace;
  };

  /// Why a flush fired (for the flushes_by_* stats).  `drain` flushes —
  /// peer heal, shutdown, retry after a failed batch — bump no trigger
  /// counter.
  enum class FlushTrigger { count, bytes, timer, drain };

  /// Per-peer outbox: FIFO across applications and frame kinds, so a
  /// peer observes our send order.  At most one batch is in flight per
  /// peer; newer events queue behind it and leave in the next batch (flow
  /// control: batch size adapts to peer RTT).
  struct PeerOutbox {
    orb::ObjectRef ref;  // the peer's DiscoverCorbaServer
    std::deque<OutboxItem> items;
    std::size_t bytes = 0;  // encoded payload estimate of `items`
    net::TimerId flush_timer{0};
    bool inflight = false;
    bool legacy_peer = false;  // peer rejected forward_events; go singular
  };

  class MasterServlet;
  class CommandServlet;
  class CollabServlet;
  class ArchiveServlet;
  class RedirectServlet;
  class VisualizationServlet;
  class MetricsServlet;
  class TraceServlet;
  class DiscoverCorbaServerServant;
  class CorbaProxyServant;
  friend class MasterServlet;
  friend class CommandServlet;
  friend class CollabServlet;
  friend class ArchiveServlet;
  friend class RedirectServlet;
  friend class VisualizationServlet;
  friend class MetricsServlet;
  friend class TraceServlet;
  friend class DiscoverCorbaServerServant;
  friend class CorbaProxyServant;

  // -- sharding (DESIGN.md §5i) ----------------------------------------------
  /// Marks this instance as inner shard core `index` of `group` (the
  /// user-facing server, which is core 0).  Must precede attach().
  void configure_shard(std::uint32_t index, std::uint32_t bits,
                       DiscoverServer* group);
  /// Sharded dispatcher: runs on the node's network worker and only
  /// routes — client/app channels to hash(src)'s core; GIOP frames to the
  /// core whose ORB owns them (requests by servant key, replies by request
  /// id — both carry the minting core in their low shard bits); control
  /// framing and unparseable GIOP to core 0.
  void route_message(const net::Message& msg);
  /// The pre-shard on_message body; on a sharded server it runs on the
  /// owning core's shard worker.
  void dispatch_message(const net::Message& msg);
  /// Runs `fn` in shard `idx`'s execution context (inline when unsharded
  /// or already on that shard's worker).
  void post_shard(std::uint32_t idx, std::function<void()> fn);
  [[nodiscard]] DiscoverServer& core_at(std::uint32_t idx) {
    return idx == 0 ? *this : *cores_[idx - 1];
  }
  /// The shard core owning app `id` (self when unsharded).
  [[nodiscard]] std::uint32_t shard_owner_of(const proto::AppId& id) const {
    return sharded() ? shard_of_app(id, shard_bits_, group_shards_)
                     : shard_index_;
  }
  /// network_.schedule(self_, ...) whose callback hops back onto this
  /// core's shard worker (plain schedule when unsharded).  Every timer
  /// touching core state must go through this.
  net::TimerId schedule_self(util::Duration delay, std::function<void()> fn);
  /// Visits every core on its own shard worker in index order, then runs
  /// `done` back on the calling core (used by login and the metrics/trace
  /// scrapes).  Sharded servers only.
  struct GatherJob {
    std::function<void(DiscoverServer&)> visit;
    std::function<void()> done;
    std::uint32_t origin = 0;
  };
  void gather_across_cores(std::function<void(DiscoverServer&)> visit,
                           std::function<void()> done);
  void gather_step(const std::shared_ptr<GatherJob>& job, std::uint32_t idx);
  /// Owner-core half of a cross-shard select: ACL/phase/admission check
  /// plus watcher-refcount bump for the client's shard.
  struct ShardSelectGrant {
    bool found = false;
    bool admission_rejected = false;
    security::Privilege privilege = security::Privilege::none;
    std::string name;
    std::vector<proto::ParamSpec> params;
    std::uint64_t history_seq = 0;
  };
  ShardSelectGrant grant_select_on_owner(const proto::AppId& app,
                                         const std::string& user,
                                         std::uint32_t client_shard,
                                         bool already_selected);
  /// Async owner-core half of a cross-shard select that also covers REMOTE
  /// applications: resolves the entry via with_remote_app, fetches the
  /// interface from the host and subscribes, then hands the grant to
  /// `done` (still on the owner core — the caller posts it back).  Local
  /// entries complete inline through grant_select_on_owner.
  void select_on_owner_async(const proto::AppId& app, const std::string& user,
                             std::uint32_t client_shard, bool already_selected,
                             std::function<void(ShardSelectGrant)> done);
  /// Owner-core watcher-refcount drop (client core released a sub).  For a
  /// remote entry whose last watcher left, this also drops the host-side
  /// subscription.
  void release_shard_watcher(const proto::AppId& app,
                             std::uint32_t client_shard);
  /// Watchers for per-app admission: local subscriber index rows plus
  /// cross-shard watcher refcounts.
  [[nodiscard]] std::size_t admission_watchers(const proto::AppId& app) const;
  /// Posts a published event to every shard core with watchers.
  void fan_out_to_watcher_shards(AppEntry& entry,
                                 const proto::ClientEvent& ev);

  // -- daemon-servlet side (application channels) ----------------------------
  void handle_app_channel(const net::Message& msg);
  void handle_app_register(net::NodeId src, const proto::AppRegister& reg);
  void handle_app_update(const proto::AppUpdate& update);
  void handle_app_phase(const proto::AppPhaseNotice& notice);
  void handle_app_deregister(const proto::AppDeregister& msg);
  void handle_app_response(const proto::AppResponse& resp);
  void handle_app_error(const proto::AppError& err);
  void flush_buffered_commands(AppEntry& entry);

  // -- event distribution ------------------------------------------------------
  /// Host side: stamps seq + time, archives, delivers locally, pushes to
  /// subscribers (push mode).
  void publish_event(AppEntry& entry, proto::ClientEvent event);
  /// Delivers one event to local client FIFOs per the collaboration rules.
  /// Wraps deliver_local_impl with the stage histogram and a trace span.
  void deliver_local(const proto::AppId& app, const proto::ClientEvent& ev);
  void deliver_local_impl(const proto::AppId& app,
                          const proto::ClientEvent& ev);
  bool should_deliver(const ClientSession& session, const ClientSub& sub,
                      const proto::ClientEvent& ev) const;
  void push_to_subscribers(AppEntry& entry, const proto::ClientEvent& ev);
  /// Remote-side ingestion of host-published events (push or poll).
  void ingest_remote_events(AppEntry& entry,
                            const std::vector<proto::ClientEvent>& events);
  /// Delivers one remote-app event locally and fans it out to every other
  /// shard core with watchers (the remote-entry analogue of the
  /// publish_event fan-out).
  void deliver_remote(AppEntry& entry, const proto::ClientEvent& ev);

  // -- peer outbox pipeline ----------------------------------------------------
  /// Queues one event for `node` and fires any flush trigger that tripped.
  void outbox_append(std::uint32_t node, const orb::ObjectRef& ref,
                     OutboxItem item);
  /// Sends the outbox as one forward_events batch (unless empty, in
  /// flight, or the peer is suspect — then items wait for heal).
  void flush_outbox(std::uint32_t node, FlushTrigger trigger);
  /// Drains every outbox best-effort; shutdown path.
  void flush_all_outboxes();
  /// Heal hook: a peer came back; move its queued events immediately.
  void drain_outbox_if_any(std::uint32_t node);
  /// Re-arms the flush timer after a failed batch left requeued items.
  void ob_arm_retry(std::uint32_t node);
  /// Legacy singular send for one item (peer_flush_delay==0 never builds
  /// items; this serves the mixed-version fallback).
  void send_item_legacy(std::uint32_t node, const OutboxItem& item);
  /// Relays a local client's collab post toward the app's host: through
  /// the outbox when batching is on and the host's level-1 ref is known,
  /// else a direct forward_collab (the legacy wire behaviour).
  void relay_collab_to_host(AppEntry& entry, proto::ClientEvent ev);
  /// forward_events servant body.  A sharded receiver scatters the frames
  /// to their owning cores by shard_of_app (a peer batch mixes apps owned
  /// by different cores); each core then applies its own frames.
  void ingest_event_frames(const std::vector<proto::EventFrame>& frames);
  /// Applies push frames to remote entries and publishes collab_relay
  /// frames for local apps — every frame must be owned by this core.
  void apply_event_frames(const std::vector<proto::EventFrame>& frames);

  // -- versioned directory -----------------------------------------------------
  /// Records one local membership/phase change in the change log.  On a
  /// sharded server the owning core posts the change to core 0, which
  /// keeps the single node-wide (epoch, version) sequence and an AppInfo
  /// mirror of every core's local apps for snapshot replies.
  void bump_directory(const proto::AppId& app, bool removed);
  /// Core-0 half of a sharded bump_directory.
  void record_directory_change(const proto::AppId& app, bool removed,
                               const proto::AppInfo& info, bool have_info);
  /// Builds the list_apps_since reply for a caller at (epoch, since).
  [[nodiscard]] proto::DirectoryUpdate directory_update_since(
      std::uint64_t epoch, std::uint64_t since) const;
  [[nodiscard]] proto::AppInfo app_info_of(const AppEntry& entry) const;
  /// Fetches `peer`'s directory (delta or full per config) this round.
  void refresh_peer_directory(Peer& peer);
  void apply_directory_update(Peer& peer, const proto::DirectoryUpdate& upd);

  // -- command path -----------------------------------------------------------
  /// Host-side command admission: privilege, locks, buffering.  Returns the
  /// ack (accepted/rejected) to give the requester.
  proto::CommandAck admit_command(AppEntry& entry, const std::string& user,
                                  std::uint32_t origin_server,
                                  std::uint64_t client_rid,
                                  proto::CommandKind kind,
                                  const std::string& param,
                                  const proto::ParamValue& value, bool shared,
                                  const std::string& subgroup);
  void forward_to_app(AppEntry& entry, const proto::AppCommand& cmd);
  void handle_lock_command(AppEntry& entry, const std::string& user,
                           std::uint32_t origin_server,
                           std::uint64_t client_rid, bool acquire,
                           bool shared, const std::string& subgroup);
  void publish_lock_notice(const proto::AppId& app, const std::string& user,
                           std::uint64_t client_rid, const std::string& what);
  /// Evicts lock holders/waiters whose origin server `node` was declared
  /// dead; publishes notices for evicted holders (waiter/promotion notices
  /// ride the grant callbacks).  No-op unless `lock_reap_on_suspect`.
  void reap_server_locks(std::uint32_t node, const std::string& why);
  /// Relays forget_locks to a remote app's host with bounded exponential
  /// backoff (attempt is 1-based); gives up when the remote entry is gone
  /// or `forget_locks_attempts` is exhausted — the host's lease/reaping
  /// then reclaims the lock.
  void send_forget_locks(const proto::AppId& app, const std::string& user,
                         std::uint32_t attempt);

  // -- security ---------------------------------------------------------------
  [[nodiscard]] util::Status verify_token(
      const security::SessionToken& token) const;
  /// Level-1: is `user` on any local application's ACL (with password)?
  [[nodiscard]] bool authenticate_local(const std::string& user,
                                        std::uint64_t password_digest) const;

  // -- peers / discovery --------------------------------------------------------
  void refresh_peers();
  /// (Re-)advertises this server through the trader; called at start() and
  /// again each refresh round until an offer id is confirmed.
  void export_trader_offer();
  void schedule_refresh();
  void handle_control_channel(const net::Message& msg);
  void broadcast_system_event(proto::SystemEventKind kind,
                              const proto::AppId& app,
                              const std::string& text);
  Peer* peer_by_node(std::uint32_t node);
  /// Applies the per-peer resource policy (§6.3); true = admitted.
  bool admit_peer(std::uint32_t node, std::size_t bytes);
  /// ORB call to a peer with health accounting: feeds note_peer_call() with
  /// the outcome before running `cb`.
  void invoke_peer(std::uint32_t node, const orb::ObjectRef& ref,
                   const std::string& method, wire::Encoder args,
                   orb::Orb::ResultCallback cb, util::Duration timeout);
  /// Records one call outcome; `timed_out` failures accumulate toward
  /// suspicion, any response (even an error) proves liveness and heals.
  void note_peer_call(std::uint32_t node, bool timed_out);
  /// Withdraws the peer's apps from the directory, emits a control-channel
  /// error event, and stops routing to it until a re-probe succeeds.
  void mark_peer_suspect(Peer& peer);
  void probe_suspect_peer(Peer& peer);
  /// Shared tail of a server_down notice: forgets the peer and withdraws
  /// every remote app hosted there (each sharded core runs its own copy).
  void handle_peer_down(std::uint32_t origin);
  /// Encodes and pushes one MONITORING report, then reschedules.  The
  /// metrics map is this core's flat snapshot — or, sharded, the merge of
  /// every core's.
  void send_monitoring_report(std::map<std::string, std::int64_t> metrics,
                              std::function<void()> reschedule);
  // Sharded federation (DESIGN.md §5j): peer discovery and health live on
  // core 0; the entries (ref + per-core limiter + suspect flag) are
  // replicated so every core can reach every peer through its own ORB.
  /// Core 0: copies a newly discovered peer to every other core.
  void replicate_peer_to_cores(const Peer& peer);
  /// Core 0: pushes a suspect/heal transition to every other core.
  void broadcast_peer_state_to_cores(std::uint32_t node, bool suspect);
  /// Any core: local half of a suspect transition — flags the peer,
  /// withdraws its remote apps, reaps its lock interest.  No control
  /// broadcast (core 0 already did that once for the node).
  void apply_peer_suspect(std::uint32_t node);
  /// Any core: local half of a heal — clears the flag, drains the outbox.
  void apply_peer_heal(std::uint32_t node);
  /// Per-core halves of the sharded registry/identity wiring.
  void set_registry_core(const orb::ObjectRef& naming,
                         const orb::ObjectRef& trader, bool with_trader);
  /// Core 0: copies the refreshed identity cache to every other core (each
  /// core authenticates login gathers against its own copy).
  void replicate_identities_to_cores();
  /// Ensures a remote AppEntry exists with a resolved CorbaProxy ref; then
  /// runs `ready` (with nullptr on failure).
  void with_remote_app(const proto::AppId& app,
                       std::function<void(AppEntry*)> ready);
  void subscribe_remote(AppEntry& entry);
  void backfill_remote_gap(AppEntry& entry, std::uint64_t upto);
  void unsubscribe_remote(AppEntry& entry);
  void start_remote_poll(AppEntry& entry);
  void remove_remote_app(const proto::AppId& app, const std::string& reason);

  // -- housekeeping -----------------------------------------------------------
  /// Per-core halves of start()/shutdown(); on a sharded server they run
  /// on each core's own shard worker.
  void start_core();
  void shutdown_core();
  void sweep_app_liveness();
  void sweep_idle_sessions();
  void arm_lock_lease(const proto::AppId& app, const LockIdentity& who);
  /// Pool-of-services integration (§3): find a MONITORING service through
  /// the trader and push a statistics report; re-discovers on failure.
  void report_monitoring();

  // -- observability ----------------------------------------------------------
  /// One-time catalogue setup (attach): every ServerStats field by
  /// reference, gauges for live state, and the registry-owned per-stage
  /// histograms cached in the stage_* pointers below.
  void register_metrics();
  /// Stride sampler for the stage histograms: true on the first of every
  /// `stage_sample_every` calls (always false when 0).  Decide at stage
  /// entry and carry the verdict into deferred completions.
  [[nodiscard]] bool stage_sample() {
    if (config_.stage_sample_every == 0) return false;
    return (stage_seq_++ % config_.stage_sample_every) == 0;
  }
  /// Pulls the global identity directory into the local cache (§6.3).
  void refresh_identities();

  // -- FIFO backpressure ------------------------------------------------------
  /// Appends to a sub's FIFO with entry+byte accounting and peak tracking.
  void fifo_push(ClientSub& sub, proto::SharedClientEvent ev);
  /// Removes the oldest queued event, maintaining the accounting.
  void fifo_pop_front(ClientSub& sub);
  /// True while either configured bound is exceeded.
  [[nodiscard]] bool fifo_over_limit(const ClientSub& sub) const;
  /// shed_oldest enforcement: pops until within bounds, counting sheds.
  void shed_fifo_overflow(ClientSub& sub);
  /// Releases a departing session's FIFO accounting (drop_session).
  void fifo_forget(ClientSub& sub);

  // -- sessions ---------------------------------------------------------------
  ClientSession* session_of(std::uint64_t key);
  ClientSession* session_by_token(const security::SessionToken& token,
                                  std::uint64_t http_session);
  void drop_session(std::uint64_t key);
  /// Creates (or returns) the session's sub for `app`, keeping the
  /// subscriber index in sync.  The only way subs come into existence.
  ClientSub& subscribe_session(ClientSession& session, const proto::AppId& app);

  void mount_servlets();
  void activate_servants();
  /// Exports the level-2 CorbaProxy servant for a newly registered local
  /// application; returns its reference.
  orb::ObjectRef activate_corba_proxy(AppEntry& entry);

  [[nodiscard]] AppEntry* find_app(const proto::AppId& id);
  [[nodiscard]] const AppEntry* find_app(const proto::AppId& id) const;
  [[nodiscard]] std::string describe() const;

  net::Network& network_;
  ServerConfig config_;
  net::NodeId self_{0};
  bool started_ = false;

  // Sharding (DESIGN.md §5i).  group_ points at core 0 (the user-facing
  // instance) and is null until attach() resolves an effective shard count
  // > 1; the unsharded server never touches any of this.
  DiscoverServer* group_ = nullptr;
  std::uint32_t shard_index_ = 0;
  std::uint32_t shard_bits_ = 0;
  std::uint32_t group_shards_ = 1;
  std::unique_ptr<net::ShardPool> pool_;                  // core 0 only
  std::vector<std::unique_ptr<DiscoverServer>> cores_;    // core 0 only
  util::ShardedCounter* routed_ = nullptr;                // core 0 only

  std::unique_ptr<http::ServletContainer> container_;
  std::unique_ptr<orb::Orb> orb_;
  security::TokenAuthority tokens_;
  orb::NamingClient naming_;
  orb::TraderClient trader_;
  orb::ObjectRef own_server_ref_;  // our DiscoverCorbaServer
  std::uint64_t trader_offer_id_ = 0;

  std::map<proto::AppId, AppEntry> apps_;
  std::map<std::uint32_t, proto::AppId> apps_by_node_;  // local app node -> id
  std::uint32_t app_counter_ = 0;

  std::map<std::uint64_t, ClientSession> sessions_;  // by http session id
  /// Running totals across every session's FIFOs (kept in sync by the
  /// fifo_* helpers; total_fifo_backlog*() scans are the oracle).
  std::size_t fifo_entries_ = 0;
  std::size_t fifo_bytes_ = 0;
  /// Fan-out index: app -> every session subscribed to it.  Maintained by
  /// subscribe_session/drop_session; a row's vector length doubles as the
  /// local watcher refcount that gates unsubscribe_remote.
  std::map<proto::AppId, std::vector<SubscriberRef>> subscribers_;
  std::map<std::uint64_t, PendingCmd> pending_cmds_;
  std::uint64_t next_host_rid_ = 1;

  std::map<std::uint32_t, Peer> peers_;
  /// Mirror of peers_.size(), maintained at every insert/erase so tests
  /// and monitors on other threads can poll peer_count() race-free.
  std::atomic<std::size_t> peer_count_cache_{0};
  /// Keyed by peer node, NOT tied to peers_ lifetime: push targets come
  /// from AppEntry::subscribers and may precede trader discovery.
  std::map<std::uint32_t, PeerOutbox> outboxes_;
  /// Directory change log: (version, app, removed).  Bounded by
  /// config_.dir_log_cap; callers behind the tail get a full snapshot.
  struct DirLogEntry {
    std::uint64_t version = 0;
    proto::AppId app;
    bool removed = false;
  };
  std::deque<DirLogEntry> dir_log_;
  std::uint64_t dir_epoch_ = 0;
  std::uint64_t dir_version_ = 0;
  /// Sharded core 0 only: AppInfo of every core's local apps, maintained by
  /// record_directory_change; directory_update_since snapshots read this
  /// instead of apps_ (which holds only core 0's own apps).
  std::map<proto::AppId, proto::AppInfo> dir_mirror_;
  net::TimerId refresh_timer_{0};
  net::TimerId liveness_timer_{0};
  net::TimerId session_timer_{0};
  net::TimerId monitor_timer_{0};
  orb::ObjectRef monitoring_ref_;
  net::TimerId identity_timer_{0};
  orb::ObjectRef identity_directory_;
  std::map<std::string, std::uint64_t> identity_cache_;  // user -> pw digest

  LockManager locks_;
  db::RecordStore db_;
  SessionArchive archive_;
  ServerStats stats_;
  util::MetricsRegistry metrics_;
  util::Tracer tracer_;
  std::uint64_t stage_seq_ = 0;
  /// Registry-owned stage histograms, cached once in register_metrics();
  /// map nodes are stable so the pointers stay valid.
  util::LatencyHistogram* stage_login_ = nullptr;
  util::LatencyHistogram* stage_select_ = nullptr;
  util::LatencyHistogram* stage_poll_ = nullptr;
  util::LatencyHistogram* stage_deliver_ = nullptr;
  util::LatencyHistogram* stage_flush_rtt_ = nullptr;
  util::LatencyHistogram* stage_lock_grant_ = nullptr;
  /// Monitoring-push failure streak (warn-log backoff: 1, 2, 4, 8, ...).
  std::uint64_t monitoring_fail_streak_ = 0;
  std::atomic<std::uint64_t> live_updates_{0};
  std::atomic<std::uint64_t> live_requests_{0};
  std::atomic<std::uint64_t> live_registrations_{0};
  std::atomic<std::uint64_t> live_peer_events_{0};
};

}  // namespace discover::core
