#include "core/service_host.h"

#include "util/log.h"

namespace discover::core {

ServiceHost::ServiceHost(net::Network& network) : network_(network) {}

void ServiceHost::attach(net::NodeId self) {
  self_ = self;
  orb_ = std::make_unique<orb::Orb>(network_, self);
}

void ServiceHost::set_registry(orb::ObjectRef trader) {
  trader_ = orb::TraderClient(*orb_, std::move(trader));
}

orb::ObjectRef ServiceHost::publish(
    const std::string& service_type, std::shared_ptr<orb::Servant> servant,
    std::map<std::string, std::string> properties) {
  const orb::ObjectRef ref = orb_->activate(std::move(servant));
  if (trader_.configured()) {
    trader_.export_offer(service_type, ref, properties,
                         [this](util::Result<std::uint64_t> r) {
                           if (r.ok()) {
                             offers_.push_back(r.value());
                           } else {
                             DISCOVER_LOG(warn, "service")
                                 << "offer export failed: " << r.error();
                           }
                         });
  }
  return ref;
}

void ServiceHost::withdraw_all() {
  if (!trader_.configured()) return;
  for (const std::uint64_t offer : offers_) {
    trader_.withdraw(offer, [](util::Status) {});
  }
  offers_.clear();
}

void ServiceHost::on_message(const net::Message& msg) {
  if (msg.channel == net::Channel::giop) orb_->handle(msg);
}

void MonitoringService::dispatch(const std::string& method,
                                 wire::Decoder& args, wire::Encoder& out,
                                 orb::DispatchContext& ctx) {
  (void)ctx;
  if (method == "report") {
    const std::string reporter = args.str();
    Report report;
    report.metrics = args.map<std::string, std::int64_t>(
        [](wire::Decoder& d) { return d.str(); },
        [](wire::Decoder& d) { return d.i64(); });
    report.at = clock_.now();
    reports_[reporter] = std::move(report);
    ++received_;
  } else if (method == "snapshot") {
    out.u32(static_cast<std::uint32_t>(reports_.size()));
    for (const auto& [reporter, report] : reports_) {
      out.str(reporter);
      out.map(report.metrics,
              [](wire::Encoder& e, const std::string& k) { e.str(k); },
              [](wire::Encoder& e, std::int64_t v) { e.i64(v); });
      out.i64(report.at);
    }
  } else {
    throw orb::OrbException{util::Errc::invalid_argument,
                            "MonitoringService has no method " + method};
  }
}

}  // namespace discover::core
