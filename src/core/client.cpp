#include "core/client.h"

#include "core/server.h"  // servlet path constants

namespace discover::core {

namespace {

/// Maps an HTTP-level failure or non-200 status to an Error; otherwise
/// yields the body for decoding.
util::Result<util::Bytes> body_of(util::Result<http::HttpResponse> r) {
  if (!r.ok()) return r.error();
  http::HttpResponse& resp = r.value();
  if (resp.status != 200 && resp.status != 401 && resp.status != 403 &&
      resp.status != 404 && resp.status != 400 && resp.status != 503) {
    return util::Error{util::Errc::internal,
                       "http status " + std::to_string(resp.status)};
  }
  // Application-level failures still carry a decodable body; let the typed
  // decoder surface the ok/message fields.
  return std::move(resp.body);
}

template <typename Reply, typename DecodeFn>
auto wrap(DecodeFn decode, std::function<void(util::Result<Reply>)> cb) {
  return [decode, cb = std::move(cb)](util::Result<http::HttpResponse> r) {
    auto body = body_of(std::move(r));
    if (!body.ok()) {
      cb(body.error());
      return;
    }
    try {
      cb(decode(body.value()));
    } catch (const wire::DecodeError& err) {
      cb(util::Error{util::Errc::protocol_error, err.what()});
    }
  };
}

}  // namespace

DiscoverClient::DiscoverClient(net::Network& network, ClientConfig config)
    : network_(network),
      config_(std::move(config)),
      http_(network, net::NodeId{0}) {}

void DiscoverClient::attach(net::NodeId self) {
  self_ = self;
  http_.set_self(self);
  http_.set_retry_policy(config_.request_retry);
  http_.set_retry_seed(0x9e37 + self.value());
}

void DiscoverClient::set_server(net::NodeId server) { server_ = server; }

void DiscoverClient::on_message(const net::Message& msg) {
  if (msg.channel != net::Channel::http) return;
  // Server-push extension: unsolicited responses flagged X-Push carry
  // events directly; everything else is a reply the HttpClient correlates.
  auto parsed = http::parse_response(msg.payload);
  if (parsed.ok() && parsed.value().headers.get("X-Push")) {
    try {
      const proto::PollReply reply =
          proto::decode_poll_reply(parsed.value().body);
      for (const auto& ev : reply.events) {
        record(ev);
        pushed_events_++;
        if (event_handler_) event_handler_(ev);
      }
    } catch (const wire::DecodeError&) {
      // Malformed push payloads are dropped.
    }
    return;
  }
  http_.handle(msg);
}

void DiscoverClient::post(
    const std::string& path, util::Bytes body,
    std::function<void(util::Result<http::HttpResponse>)> cb) {
  http::HttpRequest req;
  req.method = http::Method::post;
  req.path = path;
  req.headers.set("Content-Type", "application/x-discover");
  req.body = std::move(body);
  http_.request(server_, std::move(req), std::move(cb),
                config_.request_timeout);
}

void DiscoverClient::login(
    std::function<void(util::Result<proto::LoginReply>)> cb) {
  proto::LoginRequest req;
  req.user = config_.user;
  req.password_digest = config_.password.empty()
                            ? 0
                            : security::digest64(config_.password);
  post(kPathLogin, proto::encode_body(req),
       wrap<proto::LoginReply>(
           [](const util::Bytes& b) { return proto::decode_login_reply(b); },
           [this, cb = std::move(cb)](util::Result<proto::LoginReply> r) {
             if (r.ok() && r.value().ok) {
               logged_in_ = true;
               token_ = r.value().token;
               known_apps_ = r.value().applications;
             }
             cb(std::move(r));
           }));
}

void DiscoverClient::select_app(
    const proto::AppId& app,
    std::function<void(util::Result<proto::SelectAppReply>)> cb) {
  proto::SelectAppRequest req;
  req.token = token_;
  req.app_id = app;
  post(kPathSelect, proto::encode_body(req),
       wrap<proto::SelectAppReply>([](const util::Bytes& b) {
         return proto::decode_select_app_reply(b);
       }, std::move(cb)));
}

void DiscoverClient::send_command(
    const proto::AppId& app, proto::CommandKind kind, const std::string& param,
    const proto::ParamValue& value,
    std::function<void(util::Result<proto::CommandAck>)> cb) {
  proto::CommandRequest req;
  req.token = token_;
  req.app_id = app;
  req.request_id = next_rid_++;
  req.kind = kind;
  req.param = param;
  req.value = value;
  post(kPathCommand, proto::encode_body(req),
       wrap<proto::CommandAck>([](const util::Bytes& b) {
         return proto::decode_command_ack(b);
       }, std::move(cb)));
}

void DiscoverClient::poll(
    const proto::AppId& app,
    std::function<void(util::Result<proto::PollReply>)> cb) {
  proto::PollRequest req;
  req.token = token_;
  req.app_id = app;
  req.max_events = config_.poll_max_events;
  post(kPathPoll, proto::encode_body(req),
       wrap<proto::PollReply>(
           [](const util::Bytes& b) { return proto::decode_poll_reply(b); },
           [this, cb = std::move(cb)](util::Result<proto::PollReply> r) {
             if (r.ok() && r.value().ok) {
               max_backlog_ = std::max(max_backlog_, r.value().backlog);
               for (const auto& ev : r.value().events) {
                 record(ev);
                 if (event_handler_) event_handler_(ev);
               }
             }
             cb(std::move(r));
           }));
}

void DiscoverClient::post_collab(
    const proto::AppId& app, proto::EventKind kind, const std::string& text,
    std::function<void(util::Result<proto::CollabAck>)> cb) {
  proto::CollabPost req;
  req.token = token_;
  req.app_id = app;
  req.kind = kind;
  req.text = text;
  post(kPathCollabPost, proto::encode_body(req),
       wrap<proto::CollabAck>([](const util::Bytes& b) {
         return proto::decode_collab_ack(b);
       }, std::move(cb)));
}

void DiscoverClient::group_op(
    const proto::AppId& app, proto::GroupOp op, const std::string& subgroup,
    std::function<void(util::Result<proto::CollabAck>)> cb) {
  proto::GroupRequest req;
  req.token = token_;
  req.app_id = app;
  req.op = op;
  req.subgroup = subgroup;
  post(kPathGroup, proto::encode_body(req),
       wrap<proto::CollabAck>([](const util::Bytes& b) {
         return proto::decode_collab_ack(b);
       }, std::move(cb)));
}

void DiscoverClient::fetch_history(
    const proto::AppId& app, std::uint64_t from_seq, std::uint32_t max,
    std::function<void(util::Result<proto::HistoryReply>)> cb) {
  proto::HistoryRequest req;
  req.token = token_;
  req.app_id = app;
  req.from_seq = from_seq;
  req.max_events = max;
  post(kPathArchive, proto::encode_body(req),
       wrap<proto::HistoryReply>([](const util::Bytes& b) {
         return proto::decode_history_reply(b);
       }, std::move(cb)));
}

void DiscoverClient::logout(
    std::function<void(util::Result<proto::CollabAck>)> cb) {
  proto::LogoutRequest req;
  req.token = token_;
  post(kPathLogout, proto::encode_body(req),
       wrap<proto::CollabAck>(
           [](const util::Bytes& b) { return proto::decode_collab_ack(b); },
           [this, cb = std::move(cb)](util::Result<proto::CollabAck> r) {
             if (r.ok() && r.value().ok) logged_in_ = false;
             cb(std::move(r));
           }));
}

void DiscoverClient::resolve_home(
    const proto::AppId& app,
    std::function<void(util::Result<net::NodeId>)> cb) {
  proto::SelectAppRequest req;
  req.token = token_;
  req.app_id = app;
  post(kPathRedirect, proto::encode_body(req),
       [cb = std::move(cb)](util::Result<http::HttpResponse> r) {
         if (!r.ok()) {
           cb(r.error());
           return;
         }
         const http::HttpResponse& resp = r.value();
         const auto host = resp.headers.get(kHostHeader);
         if ((resp.status != 200 && resp.status != 307) || !host) {
           cb(util::Error{util::Errc::unavailable,
                          "redirect failed: status " +
                              std::to_string(resp.status)});
           return;
         }
         cb(net::NodeId{static_cast<std::uint32_t>(
             std::strtoul(host->c_str(), nullptr, 10))});
       });
}

void DiscoverClient::start_polling(const proto::AppId& app) {
  if (polling_.count(app) != 0) return;
  polling_.insert(app);
  poll_once(app);
}

void DiscoverClient::stop_polling(const proto::AppId& app) {
  polling_.erase(app);
}

void DiscoverClient::poll_once(const proto::AppId& app) {
  if (polling_.count(app) == 0) return;
  poll(app, [this, app](util::Result<proto::PollReply>) {
    // Next poll one period after the previous reply, so a slow server is
    // never hit by overlapping polls from the same client.
    network_.schedule(self_, config_.poll_period,
                      [this, app] { poll_once(app); });
  });
}

void DiscoverClient::record(const proto::ClientEvent& ev) {
  ++events_count_;
  ++kind_counts_[ev.kind];
  if (config_.record_events) received_.push_back(ev);
}

std::uint64_t DiscoverClient::events_of_kind(proto::EventKind k) const {
  const auto it = kind_counts_.find(k);
  return it != kind_counts_.end() ? it->second : 0;
}

}  // namespace discover::core
