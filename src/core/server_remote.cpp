// Peer-to-peer side of DiscoverServer: the DiscoverCorbaServer (level-1)
// and CorbaProxy (level-2) servants, trader-based peer discovery, remote
// application access, event push/poll and the control channel.
#include "core/server.h"
#include "util/log.h"

namespace discover::core {

namespace {

void encode_app_info_seq(wire::Encoder& e,
                         const std::vector<proto::AppInfo>& apps) {
  e.u32(static_cast<std::uint32_t>(apps.size()));
  for (const auto& a : apps) proto::encode(e, a);
}

void encode_event_seq(wire::Encoder& e,
                      const std::vector<proto::ClientEvent>& events) {
  e.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& ev : events) proto::encode(e, ev);
}

std::vector<proto::ClientEvent> decode_event_seq(wire::Decoder& d) {
  const std::uint32_t n = d.u32();
  std::vector<proto::ClientEvent> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(proto::decode_client_event(d));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Level-1 interface: DiscoverCorbaServer (paper §5.1.1)
// ---------------------------------------------------------------------------

class DiscoverServer::DiscoverCorbaServerServant final : public orb::Servant {
 public:
  explicit DiscoverCorbaServerServant(DiscoverServer& server)
      : server_(server) {}

  [[nodiscard]] std::string interface_name() const override {
    return "DiscoverCorbaServer";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    DiscoverServer& s = server_;
    if (method == "authenticate") {
      // Cross-server level-1 authentication: checks the user against local
      // application ACLs and returns the applications they may access
      // (paper §5.2.2).
      const std::string user = args.str();
      const std::uint64_t pw = args.u64();
      const bool ok = s.authenticate_local(user, pw);
      out.boolean(ok);
      encode_app_info_seq(out, ok ? s.visible_apps(user)
                                  : std::vector<proto::AppInfo>{});
    } else if (method == "list_users") {
      std::vector<std::string> users;
      for (const auto& [_, session] : s.sessions_) {
        users.push_back(session.user);
      }
      out.u32(static_cast<std::uint32_t>(users.size()));
      for (const auto& u : users) out.str(u);
    } else if (method == "list_services") {
      std::vector<proto::AppInfo> apps;
      for (const auto& [id, entry] : s.apps_) {
        if (!entry.local) continue;
        proto::AppInfo info;
        info.id = id;
        info.name = entry.name;
        info.description = entry.description;
        info.phase = entry.phase;
        info.update_seq = entry.event_seq;
        apps.push_back(std::move(info));
      }
      encode_app_info_seq(out, apps);
    } else if (method == "forward_event") {
      // Push-mode delivery from an application's host server.
      const proto::AppId app = proto::decode_app_id(args);
      const auto events = decode_event_seq(args);
      AppEntry* entry = s.find_app(app);
      if (entry != nullptr && !entry->local) {
        s.ingest_remote_events(*entry, events);
      }
    } else if (method == "ping") {
      out.str(s.config_.name);
    } else {
      throw orb::OrbException{util::Errc::invalid_argument,
                              "DiscoverCorbaServer has no method " + method};
    }
    (void)ctx;
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Level-2 interface: CorbaProxy, one per local application (paper §5.1.2)
// ---------------------------------------------------------------------------

class DiscoverServer::CorbaProxyServant final : public orb::Servant {
 public:
  CorbaProxyServant(DiscoverServer& server, proto::AppId app)
      : server_(server), app_(app) {}

  [[nodiscard]] std::string interface_name() const override {
    return "CorbaProxy";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    DiscoverServer& s = server_;
    AppEntry* entry = s.find_app(app_);
    if (entry == nullptr || !entry->local) {
      throw orb::OrbException{util::Errc::not_found,
                              "application " + app_.to_string() + " is gone"};
    }
    // Resource-usage policy per peer server (§6.3).
    if (ctx.requester != s.self_ &&
        !s.admit_peer(ctx.requester.value(), args.remaining())) {
      throw orb::OrbException{util::Errc::resource_exhausted,
                              "peer rate limit exceeded"};
    }

    if (method == "get_interface") {
      // Level-2 authentication: customized steering interface based on the
      // client's privileges (§5.2.2).
      const std::string user = args.str();
      const security::Privilege p = entry->acl.privilege_of(user);
      if (p == security::Privilege::none) {
        throw orb::OrbException{util::Errc::permission_denied,
                                user + " has no access to " + entry->name};
      }
      out.u8(static_cast<std::uint8_t>(p));
      out.u32(static_cast<std::uint32_t>(entry->params.size()));
      for (const auto& spec : entry->params) proto::encode(out, spec);
      out.u64(entry->event_seq);
    } else if (method == "send_command") {
      const std::string user = args.str();
      const std::uint64_t client_rid = args.u64();
      const auto kind = static_cast<proto::CommandKind>(args.u8());
      const std::string param = args.str();
      const proto::ParamValue value = proto::decode_param_value(args);
      const bool shared = args.boolean();
      const std::string subgroup = args.str();
      ++s.stats_.remote_commands_in;
      const proto::CommandAck ack =
          s.admit_command(*entry, user, ctx.requester.value(), client_rid,
                          kind, param, value, shared, subgroup);
      out.boolean(ack.accepted);
      out.str(ack.message);
      out.u64(ack.request_id);
    } else if (method == "poll_events") {
      const std::uint64_t since = args.u64();
      const std::uint32_t max = args.u32();
      encode_event_seq(out, s.archive_.app_history(app_, since, max));
    } else if (method == "subscribe") {
      const std::uint32_t node = args.u32();
      const orb::ObjectRef ref = orb::decode_object_ref(args);
      entry->subscribers[node] = ref;
      out.u64(entry->event_seq);
    } else if (method == "unsubscribe") {
      entry->subscribers.erase(args.u32());
    } else if (method == "forward_collab") {
      // Collaboration event relayed from a peer whose local client posted
      // it; the host stamps, archives and redistributes (§5.2.3).
      proto::ClientEvent ev = proto::decode_client_event(args);
      ev.app = app_;
      s.publish_event(*entry, ev);
      out.u64(entry->event_seq);
    } else if (method == "get_status") {
      proto::AppInfo info;
      info.id = app_;
      info.name = entry->name;
      info.description = entry->description;
      info.phase = entry->phase;
      info.update_seq = entry->event_seq;
      encode(out, info);
    } else if (method == "forget_locks") {
      const std::string user = args.str();
      const std::uint32_t origin = args.u32();
      s.locks_.forget(app_, LockIdentity{user, origin});
    } else {
      throw orb::OrbException{util::Errc::invalid_argument,
                              "CorbaProxy has no method " + method};
    }
  }

 private:
  DiscoverServer& server_;
  proto::AppId app_;
};

void DiscoverServer::activate_servants() {
  own_server_ref_ =
      orb_->activate(std::make_shared<DiscoverCorbaServerServant>(*this));
}

orb::ObjectRef DiscoverServer::activate_corba_proxy(AppEntry& entry) {
  auto servant = std::make_shared<CorbaProxyServant>(*this, entry.id);
  const orb::ObjectRef ref = orb_->activate(std::move(servant));
  entry.servant_key = ref.key;
  return ref;
}

// ---------------------------------------------------------------------------
// Registry / peer discovery (paper §5.2.1)
// ---------------------------------------------------------------------------

void DiscoverServer::set_registry(orb::ObjectRef naming,
                                  orb::ObjectRef trader) {
  naming_ = orb::NamingClient(*orb_, std::move(naming));
  trader_ = orb::TraderClient(*orb_, std::move(trader));
  // Registry calls must not wait forever: a lost reply on a faulty link
  // would otherwise wedge the refresh loop (its reschedule lives in the
  // query callback).  With a deadline the loop self-heals, and the ORB
  // retry policy (if enabled) rides each call through transient loss.
  naming_.set_call_timeout(config_.orb_call_timeout);
  trader_.set_call_timeout(config_.orb_call_timeout);
}

void DiscoverServer::start() {
  if (started_) return;
  started_ = true;
  sweep_app_liveness();
  sweep_idle_sessions();
  if (identity_directory_.valid()) refresh_identities();
  if (config_.report_to_monitoring && trader_.configured()) {
    monitor_timer_ = network_.schedule(self_, config_.monitoring_period,
                                       [this] { report_monitoring(); });
  }
  if (trader_.configured()) {
    export_trader_offer();
    refresh_peers();
  }
}

void DiscoverServer::export_trader_offer() {
  std::map<std::string, std::string> props;
  props["name"] = config_.name;
  props["domain"] = std::to_string(network_.node_domain(self_).value());
  trader_.export_offer("DISCOVER", own_server_ref_, props,
                       [this](util::Result<std::uint64_t> r) {
                         if (r.ok()) trader_offer_id_ = r.value();
                       });
}

void DiscoverServer::shutdown() {
  if (!started_) return;
  started_ = false;
  if (refresh_timer_.value() != 0) network_.cancel(refresh_timer_);
  if (liveness_timer_.value() != 0) network_.cancel(liveness_timer_);
  if (session_timer_.value() != 0) network_.cancel(session_timer_);
  if (monitor_timer_.value() != 0) network_.cancel(monitor_timer_);
  if (identity_timer_.value() != 0) network_.cancel(identity_timer_);
  broadcast_system_event(proto::SystemEventKind::server_down, proto::AppId{},
                         config_.name + " shutting down");
  if (trader_.configured() && trader_offer_id_ != 0) {
    trader_.withdraw(trader_offer_id_, [](util::Status) {});
  }
}

void DiscoverServer::schedule_refresh() {
  if (!started_) return;
  refresh_timer_ = network_.schedule(self_, config_.peer_refresh_period,
                                     [this] { refresh_peers(); });
}

void DiscoverServer::refresh_peers() {
  if (!trader_.configured()) {
    schedule_refresh();
    return;
  }
  // A lost export_offer reply leaves us unadvertised; retry each round
  // until the offer is confirmed (export is idempotent at the trader: a
  // duplicate simply re-registers the same ref under a new offer id).
  if (started_ && trader_offer_id_ == 0) export_trader_offer();
  trader_.query(
      "DISCOVER", "",
      [this](util::Result<std::vector<orb::ServiceOffer>> r) {
        if (r.ok()) {
          for (const auto& offer : r.value()) {
            if (offer.ref.node == self_.value()) continue;
            if (peers_.count(offer.ref.node) != 0) continue;
            Peer peer;
            peer.node = offer.ref.node;
            const auto name = offer.properties.find("name");
            peer.name = name != offer.properties.end() ? name->second
                                                       : "server";
            peer.server_ref = offer.ref;
            peer.limiter = std::make_unique<security::RateLimiter>(
                config_.peer_policy);
            DISCOVER_LOG(info, "server")
                << describe() << ": discovered peer " << peer.name << "@"
                << peer.node;
            peers_.emplace(offer.ref.node, std::move(peer));
          }
        }
        // Re-probe suspect peers each refresh round; a successful ping
        // heals them and routing resumes.
        for (auto& [_, peer] : peers_) {
          if (peer.suspect) probe_suspect_peer(peer);
        }
        schedule_refresh();
      });
}

void DiscoverServer::set_identity_directory(orb::ObjectRef directory) {
  identity_directory_ = std::move(directory);
  if (started_) refresh_identities();
}

void DiscoverServer::refresh_identities() {
  if (!started_ || !identity_directory_.valid()) return;
  orb_->invoke(
      identity_directory_, "list_identities", wire::Encoder{},
      [this](util::Result<util::Bytes> r) {
        if (r.ok()) {
          try {
            wire::Decoder d(r.value());
            identity_cache_ = d.map<std::string, std::uint64_t>(
                [](wire::Decoder& dd) { return dd.str(); },
                [](wire::Decoder& dd) { return dd.u64(); });
          } catch (const wire::DecodeError&) {
            // Keep the stale cache on malformed replies.
          }
        }
        identity_timer_ = network_.schedule(
            self_, config_.identity_refresh_period,
            [this] { refresh_identities(); });
      },
      config_.orb_call_timeout);
}

void DiscoverServer::report_monitoring() {
  if (!started_) return;
  const auto reschedule = [this] {
    monitor_timer_ = network_.schedule(self_, config_.monitoring_period,
                                       [this] { report_monitoring(); });
  };
  if (!monitoring_ref_.valid()) {
    // Availability "must be determined at runtime" (§3): discover (or
    // re-discover) the monitoring service through the trader.
    trader_.query(
        "MONITORING", "",
        [this, reschedule](util::Result<std::vector<orb::ServiceOffer>> r) {
          if (r.ok() && !r.value().empty()) {
            monitoring_ref_ = r.value().front().ref;
          }
          reschedule();
        });
    return;
  }
  wire::Encoder args;
  args.str(config_.name);
  std::map<std::string, std::int64_t> metrics;
  metrics["apps"] = static_cast<std::int64_t>(local_app_count());
  metrics["sessions"] = static_cast<std::int64_t>(sessions_.size());
  metrics["updates"] = static_cast<std::int64_t>(stats_.updates_processed);
  metrics["commands"] = static_cast<std::int64_t>(stats_.commands_accepted);
  metrics["events_delivered"] =
      static_cast<std::int64_t>(stats_.events_delivered);
  args.map(metrics, [](wire::Encoder& e, const std::string& k) { e.str(k); },
           [](wire::Encoder& e, std::int64_t v) { e.i64(v); });
  orb_->invoke(monitoring_ref_, "report", std::move(args),
               [this, reschedule](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   // The service went away; forget it and re-discover.
                   monitoring_ref_ = orb::ObjectRef{};
                 }
                 reschedule();
               },
               config_.orb_call_timeout);
}

DiscoverServer::Peer* DiscoverServer::peer_by_node(std::uint32_t node) {
  const auto it = peers_.find(node);
  return it != peers_.end() ? &it->second : nullptr;
}

bool DiscoverServer::peer_suspect(net::NodeId node) const {
  const auto it = peers_.find(node.value());
  return it != peers_.end() && it->second.suspect;
}

// ---------------------------------------------------------------------------
// Peer health (suspect / re-probe / heal)
// ---------------------------------------------------------------------------

void DiscoverServer::invoke_peer(std::uint32_t node,
                                 const orb::ObjectRef& ref,
                                 const std::string& method,
                                 wire::Encoder args,
                                 orb::Orb::ResultCallback cb,
                                 util::Duration timeout) {
  Peer* peer = peer_by_node(node);
  if (peer != nullptr && peer->suspect) {
    // Fail fast instead of waiting out a timeout against a peer already
    // known to be unreachable; the refresh loop re-probes it.
    cb(util::Error{util::Errc::unavailable,
                   "peer " + peer->name + " is suspect"});
    return;
  }
  orb_->invoke(
      ref, method, std::move(args),
      [this, node, cb = std::move(cb)](util::Result<util::Bytes> r) {
        note_peer_call(node,
                       !r.ok() && r.error().code == util::Errc::timeout);
        cb(std::move(r));
      },
      timeout);
}

void DiscoverServer::note_peer_call(std::uint32_t node, bool timed_out) {
  Peer* peer = peer_by_node(node);
  if (peer == nullptr) return;
  if (!timed_out) {
    // Any response — even an application error — proves the peer is alive.
    peer->consecutive_failures = 0;
    if (peer->suspect) {
      peer->suspect = false;
      DISCOVER_LOG(info, "server")
          << describe() << ": peer " << peer->name << "@" << peer->node
          << " healed";
    }
    return;
  }
  if (config_.peer_suspect_threshold == 0 || peer->suspect) return;
  if (++peer->consecutive_failures >= config_.peer_suspect_threshold) {
    mark_peer_suspect(*peer);
  }
}

void DiscoverServer::mark_peer_suspect(Peer& peer) {
  peer.suspect = true;
  DISCOVER_LOG(warn, "server")
      << describe() << ": peer " << peer.name << "@" << peer.node
      << " suspect after " << peer.consecutive_failures
      << " consecutive timeouts";
  // Its applications are unreachable: withdraw them from the directory and
  // tell everyone (clients get an "application departed" event inside
  // remove_remote_app; peers get a control-channel error event).
  std::vector<proto::AppId> gone;
  for (const auto& [id, entry] : apps_) {
    if (!entry.local && id.host == peer.node) gone.push_back(id);
  }
  for (const auto& id : gone) {
    remove_remote_app(id, "host server unreachable");
    broadcast_system_event(proto::SystemEventKind::error, id,
                           config_.name + ": application " + id.to_string() +
                               " unreachable (host " + peer.name + ")");
  }
  if (gone.empty()) {
    broadcast_system_event(proto::SystemEventKind::error, proto::AppId{},
                           config_.name + ": peer " + peer.name +
                               " unreachable");
  }
}

void DiscoverServer::probe_suspect_peer(Peer& peer) {
  const std::uint32_t node = peer.node;
  orb_->invoke(
      peer.server_ref, "ping", wire::Encoder{},
      [this, node](util::Result<util::Bytes> r) {
        Peer* p = peer_by_node(node);
        if (p == nullptr || !r.ok()) return;
        p->consecutive_failures = 0;
        if (p->suspect) {
          p->suspect = false;
          DISCOVER_LOG(info, "server")
              << describe() << ": peer " << p->name << "@" << p->node
              << " healed (probe)";
        }
      },
      config_.orb_call_timeout);
}

bool DiscoverServer::admit_peer(std::uint32_t node, std::size_t bytes) {
  Peer* peer = peer_by_node(node);
  if (peer == nullptr || !peer->limiter) return true;
  const bool ok = peer->limiter->admit(network_.now(),
                                       static_cast<std::uint64_t>(bytes));
  if (!ok) ++stats_.peer_rate_limited;
  return ok;
}

// ---------------------------------------------------------------------------
// Control channel (paper §5.1): error messages and system events
// ---------------------------------------------------------------------------

void DiscoverServer::broadcast_system_event(proto::SystemEventKind kind,
                                            const proto::AppId& app,
                                            const std::string& text) {
  proto::SystemEvent ev;
  ev.kind = kind;
  ev.origin_server = self_.value();
  ev.app = app;
  ev.text = text;
  // One serialization shared by every peer (refcounted, not copied).
  const net::Payload payload{proto::encode_framed(proto::FramedMessage{ev})};
  for (const auto& [node, _] : peers_) {
    network_.send(self_, net::NodeId{node}, net::Channel::control, payload);
  }
  ++stats_.system_events;
}

void DiscoverServer::handle_control_channel(const net::Message& msg) {
  auto decoded = proto::decode_framed(msg.payload);
  if (!decoded.ok()) return;
  const auto* ev = std::get_if<proto::SystemEvent>(&decoded.value());
  if (ev == nullptr) return;
  ++stats_.system_events;
  switch (ev->kind) {
    case proto::SystemEventKind::app_departed:
      remove_remote_app(ev->app, ev->text);
      break;
    case proto::SystemEventKind::server_down: {
      peers_.erase(ev->origin_server);
      // Every remote application hosted there is now unreachable.
      std::vector<proto::AppId> gone;
      for (const auto& [id, entry] : apps_) {
        if (!entry.local && id.host == ev->origin_server) gone.push_back(id);
      }
      for (const auto& id : gone) {
        remove_remote_app(id, "host server down");
      }
      break;
    }
    case proto::SystemEventKind::server_up:
      refresh_peers();
      break;
    case proto::SystemEventKind::app_registered:
    case proto::SystemEventKind::error:
      break;  // informational
  }
}

// ---------------------------------------------------------------------------
// Remote applications (paper §5.1.2): resolve, subscribe, ingest
// ---------------------------------------------------------------------------

void DiscoverServer::with_remote_app(const proto::AppId& app,
                                     std::function<void(AppEntry*)> ready) {
  if (AppEntry* existing = find_app(app)) {
    ready(existing);
    return;
  }
  if (app.host == self_.value() || !naming_.configured()) {
    ready(nullptr);  // a local id we don't know, or no registry to resolve
    return;
  }
  if (const Peer* host = peer_by_node(app.host);
      host != nullptr && host->suspect) {
    ready(nullptr);  // its host is unreachable; don't re-resolve until healed
    return;
  }
  naming_.resolve(
      app.to_string(),
      [this, app, ready = std::move(ready)](util::Result<orb::ObjectRef> r) {
        if (!r.ok()) {
          ready(nullptr);
          return;
        }
        if (AppEntry* raced = find_app(app)) {
          ready(raced);
          return;
        }
        AppEntry entry;
        entry.id = app;
        entry.local = false;
        entry.corba_proxy = r.value();
        auto [it, _] = apps_.emplace(app, std::move(entry));
        ready(&it->second);
      });
}

void DiscoverServer::subscribe_remote(AppEntry& entry) {
  if (entry.local || entry.remote_subscribed) return;
  entry.remote_subscribed = true;
  wire::Encoder args;
  args.u32(self_.value());
  encode(args, own_server_ref_);
  const proto::AppId id = entry.id;
  invoke_peer(entry.corba_proxy.node, entry.corba_proxy, "subscribe",
              std::move(args),
              [this, id](util::Result<util::Bytes> r) {
                AppEntry* e = find_app(id);
                if (e == nullptr) return;
                if (!r.ok()) {
                  // A lost subscription would silently starve every local
                  // watcher; keep re-trying while the entry exists (it is
                  // removed when the host goes suspect or the app departs,
                  // which ends this loop).  Failed attempts still feed the
                  // peer failure detector through invoke_peer.
                  e->remote_subscribed = false;
                  network_.schedule(
                      self_, config_.remote_poll_period, [this, id] {
                        AppEntry* e2 = find_app(id);
                        if (e2 != nullptr && !e2->local &&
                            !e2->remote_subscribed) {
                          subscribe_remote(*e2);
                        }
                      });
                  return;
                }
                wire::Decoder d(r.value());
                e->remote_known_seq = std::max(e->remote_known_seq, d.u64());
                if (config_.remote_update_mode == RemoteUpdateMode::poll) {
                  start_remote_poll(*e);
                }
              },
              config_.orb_call_timeout);
}

void DiscoverServer::unsubscribe_remote(AppEntry& entry) {
  if (entry.local || !entry.remote_subscribed) return;
  entry.remote_subscribed = false;
  if (entry.poll_timer.value() != 0) {
    network_.cancel(entry.poll_timer);
    entry.poll_timer = net::TimerId{0};
  }
  wire::Encoder args;
  args.u32(self_.value());
  invoke_peer(entry.corba_proxy.node, entry.corba_proxy, "unsubscribe",
              std::move(args), [](util::Result<util::Bytes>) {},
              config_.orb_call_timeout);
}

void DiscoverServer::start_remote_poll(AppEntry& entry) {
  const proto::AppId id = entry.id;
  entry.poll_timer =
      network_.schedule(self_, config_.remote_poll_period, [this, id] {
        AppEntry* e = find_app(id);
        if (e == nullptr || !e->remote_subscribed) return;
        wire::Encoder args;
        args.u64(e->remote_known_seq);
        args.u32(256);
        invoke_peer(e->corba_proxy.node, e->corba_proxy, "poll_events",
                    std::move(args),
                    [this, id](util::Result<util::Bytes> r) {
                      AppEntry* e2 = find_app(id);
                      if (e2 == nullptr || !e2->remote_subscribed) return;
                      if (r.ok()) {
                        wire::Decoder d(r.value());
                        ingest_remote_events(*e2, decode_event_seq(d));
                      }
                      start_remote_poll(*e2);  // next round after the reply
                    },
                    config_.orb_call_timeout);
      });
}

void DiscoverServer::ingest_remote_events(
    AppEntry& entry, const std::vector<proto::ClientEvent>& events) {
  for (const auto& ev : events) {
    if (ev.seq <= entry.remote_known_seq) continue;  // de-dup push+poll
    entry.remote_known_seq = ev.seq;
    ++stats_.peer_events_in;
    deliver_local(entry.id, ev);
  }
}

void DiscoverServer::push_to_subscribers(AppEntry& entry,
                                         const proto::ClientEvent& ev) {
  if (entry.subscribers.empty()) return;
  for (const auto& [node, ref] : entry.subscribers) {
    // One message per remote server, not per remote client (§5.2.3).
    wire::Encoder args;
    proto::encode(args, entry.id);
    encode_event_seq(args, {ev});
    invoke_peer(node, ref, "forward_event", std::move(args),
                [](util::Result<util::Bytes>) {}, config_.orb_call_timeout);
    ++stats_.peer_events_out;
  }
}

void DiscoverServer::remove_remote_app(const proto::AppId& app,
                                       const std::string& reason) {
  AppEntry* entry = find_app(app);
  if (entry == nullptr || entry->local) return;
  if (entry->poll_timer.value() != 0) network_.cancel(entry->poll_timer);

  // Tell local watchers the application is gone.
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::system;
  ev.app = app;
  ev.seq = entry->remote_known_seq + 1;
  ev.at = network_.now();
  ev.text = "application departed: " + reason;
  deliver_local(app, ev);
  apps_.erase(app);
}

}  // namespace discover::core
