// Peer-to-peer side of DiscoverServer: the DiscoverCorbaServer (level-1)
// and CorbaProxy (level-2) servants, trader-based peer discovery, remote
// application access, event push/poll and the control channel.
#include "core/server.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "util/log.h"

namespace discover::core {

namespace {

void encode_app_info_seq(wire::Encoder& e,
                         const std::vector<proto::AppInfo>& apps) {
  e.u32(static_cast<std::uint32_t>(apps.size()));
  for (const auto& a : apps) proto::encode(e, a);
}

void encode_event_seq(wire::Encoder& e,
                      const std::vector<proto::ClientEvent>& events) {
  e.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& ev : events) proto::encode(e, ev);
}

std::vector<proto::ClientEvent> decode_event_seq(wire::Decoder& d) {
  const std::uint32_t n = d.u32();
  if (d.remaining() < n) {  // each event is at least one byte
    throw wire::DecodeError("truncated event sequence");
  }
  std::vector<proto::ClientEvent> out;
  out.reserve(std::min<std::size_t>(n, wire::kMaxSequencePrereserve));
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(proto::decode_client_event(d));
  }
  return out;
}

/// Standalone encoding of one event — the unit the outbox shares across
/// peers.  Spliced into batches at 8-byte boundaries, where it re-decodes
/// exactly as proto::encode would have produced in place.
std::shared_ptr<const util::Bytes> encode_event_standalone(
    const proto::ClientEvent& ev) {
  wire::Encoder e;
  e.reserve(128);
  proto::encode(e, ev);
  return std::make_shared<const util::Bytes>(std::move(e).take());
}

/// Conservative per-item wire overhead (frame headers, alignment) used for
/// the peer_batch_max_bytes trigger.
constexpr std::size_t kOutboxItemOverhead = 32;

}  // namespace

// ---------------------------------------------------------------------------
// Level-1 interface: DiscoverCorbaServer (paper §5.1.1)
// ---------------------------------------------------------------------------

class DiscoverServer::DiscoverCorbaServerServant final : public orb::Servant {
 public:
  explicit DiscoverCorbaServerServant(DiscoverServer& server)
      : server_(server) {}

  [[nodiscard]] std::string interface_name() const override {
    return "DiscoverCorbaServer";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    DiscoverServer& s = server_;
    if (method == "authenticate") {
      // Cross-server level-1 authentication: checks the user against local
      // application ACLs and returns the applications they may access
      // (paper §5.2.2).  A sharded node answers for every core: apps and
      // sessions are striped, so the reply is a cross-core gather (the
      // deferred handle completes on this core, which owns the ORB reply).
      const std::string user = args.str();
      const std::uint64_t pw = args.u64();
      if (s.sharded()) {
        auto ok_any = std::make_shared<bool>(false);
        auto apps = std::make_shared<std::vector<proto::AppInfo>>();
        const auto deferred = ctx.defer();
        s.gather_across_cores(
            [user, pw, ok_any, apps](DiscoverServer& core) {
              if (core.authenticate_local(user, pw)) *ok_any = true;
              for (auto& info : core.visible_apps(user)) {
                apps->push_back(std::move(info));
              }
            },
            [ok_any, apps, deferred] {
              std::sort(apps->begin(), apps->end(),
                        [](const proto::AppInfo& a, const proto::AppInfo& b) {
                          return a.id < b.id;
                        });
              wire::Encoder reply;
              reply.boolean(*ok_any);
              encode_app_info_seq(reply, *ok_any
                                             ? *apps
                                             : std::vector<proto::AppInfo>{});
              deferred->reply(std::move(reply));
            });
        return;
      }
      const bool ok = s.authenticate_local(user, pw);
      out.boolean(ok);
      encode_app_info_seq(out, ok ? s.visible_apps(user)
                                  : std::vector<proto::AppInfo>{});
    } else if (method == "list_users") {
      if (s.sharded()) {
        auto users = std::make_shared<std::vector<std::string>>();
        const auto deferred = ctx.defer();
        s.gather_across_cores(
            [users](DiscoverServer& core) {
              for (const auto& [_, session] : core.sessions_) {
                users->push_back(session.user);
              }
            },
            [users, deferred] {
              std::sort(users->begin(), users->end());
              wire::Encoder reply;
              reply.u32(static_cast<std::uint32_t>(users->size()));
              for (const auto& u : *users) reply.str(u);
              deferred->reply(std::move(reply));
            });
        return;
      }
      std::vector<std::string> users;
      for (const auto& [_, session] : s.sessions_) {
        users.push_back(session.user);
      }
      out.u32(static_cast<std::uint32_t>(users.size()));
      for (const auto& u : users) out.str(u);
    } else if (method == "list_services") {
      if (s.sharded()) {
        auto apps = std::make_shared<std::vector<proto::AppInfo>>();
        const auto deferred = ctx.defer();
        s.gather_across_cores(
            [apps](DiscoverServer& core) {
              for (const auto& [id, entry] : core.apps_) {
                if (entry.local) apps->push_back(core.app_info_of(entry));
              }
            },
            [apps, deferred] {
              std::sort(apps->begin(), apps->end(),
                        [](const proto::AppInfo& a, const proto::AppInfo& b) {
                          return a.id < b.id;
                        });
              wire::Encoder reply;
              encode_app_info_seq(reply, *apps);
              deferred->reply(std::move(reply));
            });
        return;
      }
      std::vector<proto::AppInfo> apps;
      for (const auto& [id, entry] : s.apps_) {
        if (!entry.local) continue;
        apps.push_back(s.app_info_of(entry));
      }
      encode_app_info_seq(out, apps);
    } else if (method == "forward_event") {
      // Push-mode delivery from an application's host server.  Kept as a
      // compat alias beside forward_events so a new host can push to this
      // server during a rolling upgrade, and as the peer_flush_delay==0
      // legacy wire format.  On a sharded receiver the remote entry lives
      // on shard_of_app's core; hop there.
      const proto::AppId app = proto::decode_app_id(args);
      const auto events = decode_event_seq(args);
      const std::uint32_t owner = s.shard_owner_of(app);
      if (s.sharded() && owner != s.shard_index_) {
        DiscoverServer* core = &s.group_->core_at(owner);
        s.group_->pool_->post(owner, [core, app, events] {
          AppEntry* entry = core->find_app(app);
          if (entry != nullptr && !entry->local) {
            core->ingest_remote_events(*entry, events);
          }
        });
      } else {
        AppEntry* entry = s.find_app(app);
        if (entry != nullptr && !entry->local) {
          s.ingest_remote_events(*entry, events);
        }
      }
    } else if (method == "forward_events" && !s.config_.emulate_legacy_peer) {
      // Batched peer outbox flush: push frames for apps hosted at the
      // caller plus collab posts relayed toward apps hosted here.
      if (ctx.requester != s.self_ &&
          !s.admit_peer(ctx.requester.value(), args.remaining())) {
        throw orb::OrbException{util::Errc::resource_exhausted,
                                "peer rate limit exceeded"};
      }
      s.ingest_event_frames(proto::decode_event_frames(args));
    } else if (method == "list_apps_since" &&
               !s.config_.emulate_legacy_peer) {
      // Versioned directory fetch: delta against the caller's cached
      // (epoch, version), or a full snapshot when it is out of range.
      const std::uint64_t epoch = args.u64();
      const std::uint64_t since = args.u64();
      encode(out, s.directory_update_since(epoch, since));
    } else if (method == "ping") {
      out.str(s.config_.name);
    } else {
      throw orb::OrbException{util::Errc::invalid_argument,
                              "DiscoverCorbaServer has no method " + method};
    }
    (void)ctx;
  }

 private:
  DiscoverServer& server_;
};

// ---------------------------------------------------------------------------
// Level-2 interface: CorbaProxy, one per local application (paper §5.1.2)
// ---------------------------------------------------------------------------

class DiscoverServer::CorbaProxyServant final : public orb::Servant {
 public:
  CorbaProxyServant(DiscoverServer& server, proto::AppId app)
      : server_(server), app_(app) {}

  [[nodiscard]] std::string interface_name() const override {
    return "CorbaProxy";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    DiscoverServer& s = server_;
    AppEntry* entry = s.find_app(app_);
    if (entry == nullptr || !entry->local) {
      throw orb::OrbException{util::Errc::not_found,
                              "application " + app_.to_string() + " is gone"};
    }
    // Resource-usage policy per peer server (§6.3).
    if (ctx.requester != s.self_ &&
        !s.admit_peer(ctx.requester.value(), args.remaining())) {
      throw orb::OrbException{util::Errc::resource_exhausted,
                              "peer rate limit exceeded"};
    }

    if (method == "get_interface") {
      // Level-2 authentication: customized steering interface based on the
      // client's privileges (§5.2.2).
      const std::string user = args.str();
      const security::Privilege p = entry->acl.privilege_of(user);
      if (p == security::Privilege::none) {
        throw orb::OrbException{util::Errc::permission_denied,
                                user + " has no access to " + entry->name};
      }
      out.u8(static_cast<std::uint8_t>(p));
      out.u32(static_cast<std::uint32_t>(entry->params.size()));
      for (const auto& spec : entry->params) proto::encode(out, spec);
      out.u64(entry->event_seq);
    } else if (method == "send_command") {
      const std::string user = args.str();
      const std::uint64_t client_rid = args.u64();
      const auto kind = static_cast<proto::CommandKind>(args.u8());
      const std::string param = args.str();
      const proto::ParamValue value = proto::decode_param_value(args);
      const bool shared = args.boolean();
      const std::string subgroup = args.str();
      ++s.stats_.remote_commands_in;
      const proto::CommandAck ack =
          s.admit_command(*entry, user, ctx.requester.value(), client_rid,
                          kind, param, value, shared, subgroup);
      out.boolean(ack.accepted);
      out.str(ack.message);
      out.u64(ack.request_id);
    } else if (method == "poll_events") {
      const std::uint64_t since = args.u64();
      const std::uint32_t max = args.u32();
      encode_event_seq(out, s.archive_.app_history(app_, since, max));
    } else if (method == "subscribe") {
      const std::uint32_t node = args.u32();
      const orb::ObjectRef ref = orb::decode_object_ref(args);
      entry->subscribers[node] = ref;
      out.u64(entry->event_seq);
    } else if (method == "unsubscribe") {
      entry->subscribers.erase(args.u32());
    } else if (method == "forward_collab") {
      // Collaboration event relayed from a peer whose local client posted
      // it; the host stamps, archives and redistributes (§5.2.3).
      proto::ClientEvent ev = proto::decode_client_event(args);
      ev.app = app_;
      s.publish_event(*entry, ev);
      out.u64(entry->event_seq);
    } else if (method == "get_status") {
      encode(out, s.app_info_of(*entry));
    } else if (method == "forget_locks") {
      const std::string user = args.str();
      const std::uint32_t origin = args.u32();
      s.locks_.forget(app_, LockIdentity{user, origin});
    } else {
      throw orb::OrbException{util::Errc::invalid_argument,
                              "CorbaProxy has no method " + method};
    }
  }

 private:
  DiscoverServer& server_;
  proto::AppId app_;
};

void DiscoverServer::activate_servants() {
  own_server_ref_ =
      orb_->activate(std::make_shared<DiscoverCorbaServerServant>(*this));
}

orb::ObjectRef DiscoverServer::activate_corba_proxy(AppEntry& entry) {
  auto servant = std::make_shared<CorbaProxyServant>(*this, entry.id);
  const orb::ObjectRef ref = orb_->activate(std::move(servant));
  entry.servant_key = ref.key;
  return ref;
}

// ---------------------------------------------------------------------------
// Registry / peer discovery (paper §5.2.1)
// ---------------------------------------------------------------------------

void DiscoverServer::set_registry(orb::ObjectRef naming,
                                  orb::ObjectRef trader) {
  if (sharded() && config_.emulate_legacy_peer) {
    // The emulated pre-outbox peer build predates sharding; refusing at
    // startup beats a half-configured federation that drops batches.
    throw std::invalid_argument(
        "shard_count > 1 cannot federate with emulate_legacy_peer: the "
        "emulated legacy peer build predates sharding");
  }
  if (pool_) {
    // Sharded federation (DESIGN.md §5j): called from outside the shard
    // workers (attach() already started them), so distribute the refs
    // through the shard queues and let each core configure its own ORB
    // clients in its own context.  Every core gets the naming service —
    // app rebinds and remote resolves happen on the owning core — while
    // trader discovery, export and monitoring stay on core 0, the
    // federation coordinator.
    for (std::uint32_t i = 0; i < group_shards_; ++i) {
      DiscoverServer* core = &core_at(i);
      pool_->post(i, [core, naming, trader] {
        core->set_registry_core(naming, trader, core->shard_index_ == 0);
      });
    }
    return;
  }
  set_registry_core(naming, trader, true);
}

void DiscoverServer::set_registry_core(const orb::ObjectRef& naming,
                                       const orb::ObjectRef& trader,
                                       bool with_trader) {
  naming_ = orb::NamingClient(*orb_, naming);
  // Registry calls must not wait forever: a lost reply on a faulty link
  // would otherwise wedge the refresh loop (its reschedule lives in the
  // query callback).  With a deadline the loop self-heals, and the ORB
  // retry policy (if enabled) rides each call through transient loss.
  naming_.set_call_timeout(config_.orb_call_timeout);
  if (with_trader) {
    trader_ = orb::TraderClient(*orb_, trader);
    trader_.set_call_timeout(config_.orb_call_timeout);
  }
}

void DiscoverServer::start() {
  if (started_) return;
  started_ = true;
  if (pool_) {
    // Each core starts its own sweeps — and its own half of federation —
    // on its own shard worker.  Core 0 owns trader export/refresh, the
    // identity pull and monitoring; the other cores' trader_ /
    // identity_directory_ are unset, so those branches no-op there.
    for (std::uint32_t i = 0; i < group_shards_; ++i) {
      DiscoverServer* core = &core_at(i);
      pool_->post(i, [core] {
        core->started_ = true;
        core->start_core();
      });
    }
    return;
  }
  start_core();
}

void DiscoverServer::start_core() {
  sweep_app_liveness();
  sweep_idle_sessions();
  if (identity_directory_.valid()) refresh_identities();
  if (config_.report_to_monitoring && trader_.configured()) {
    monitor_timer_ = schedule_self(config_.monitoring_period,
                                   [this] { report_monitoring(); });
  }
  if (trader_.configured()) {
    export_trader_offer();
    refresh_peers();
  }
}

void DiscoverServer::export_trader_offer() {
  std::map<std::string, std::string> props;
  props["name"] = config_.name;
  props["domain"] = std::to_string(network_.node_domain(self_).value());
  trader_.export_offer("DISCOVER", own_server_ref_, props,
                       [this](util::Result<std::uint64_t> r) {
                         if (r.ok()) trader_offer_id_ = r.value();
                       });
}

void DiscoverServer::shutdown() {
  if (!started_) return;
  started_ = false;
  if (pool_) {
    for (std::uint32_t i = 0; i < group_shards_; ++i) {
      DiscoverServer* core = &core_at(i);
      pool_->post(i, [core] {
        core->started_ = false;
        core->shutdown_core();
      });
    }
    drain_shards();
    return;
  }
  shutdown_core();
}

void DiscoverServer::shutdown_core() {
  if (refresh_timer_.value() != 0) network_.cancel(refresh_timer_);
  if (liveness_timer_.value() != 0) network_.cancel(liveness_timer_);
  if (session_timer_.value() != 0) network_.cancel(session_timer_);
  if (monitor_timer_.value() != 0) network_.cancel(monitor_timer_);
  if (identity_timer_.value() != 0) network_.cancel(identity_timer_);
  flush_all_outboxes();
  // Peers are replicated to every core, so gate the farewell on core 0 or
  // each peer would hear it shard_count times.
  if (shard_index_ == 0) {
    broadcast_system_event(proto::SystemEventKind::server_down,
                           proto::AppId{}, config_.name + " shutting down");
  }
  if (trader_.configured() && trader_offer_id_ != 0) {
    trader_.withdraw(trader_offer_id_, [](util::Status) {});
  }
}

void DiscoverServer::schedule_refresh() {
  if (!started_) return;
  refresh_timer_ = schedule_self(config_.peer_refresh_period,
                                 [this] { refresh_peers(); });
}

void DiscoverServer::refresh_peers() {
  if (!trader_.configured()) {
    schedule_refresh();
    return;
  }
  // A lost export_offer reply leaves us unadvertised; retry each round
  // until the offer is confirmed (export is idempotent at the trader: a
  // duplicate simply re-registers the same ref under a new offer id).
  if (started_ && trader_offer_id_ == 0) export_trader_offer();
  trader_.query(
      "DISCOVER", "",
      [this](util::Result<std::vector<orb::ServiceOffer>> r) {
        if (r.ok()) {
          for (const auto& offer : r.value()) {
            if (offer.ref.node == self_.value()) continue;
            if (peers_.count(offer.ref.node) != 0) continue;
            Peer peer;
            peer.node = offer.ref.node;
            const auto name = offer.properties.find("name");
            peer.name = name != offer.properties.end() ? name->second
                                                       : "server";
            peer.server_ref = offer.ref;
            peer.limiter = std::make_unique<security::RateLimiter>(
                config_.peer_policy);
            DISCOVER_LOG(info, "server")
                << describe() << ": discovered peer " << peer.name << "@"
                << peer.node;
            const auto [it, inserted] =
                peers_.emplace(offer.ref.node, std::move(peer));
            peer_count_cache_.store(peers_.size(), std::memory_order_relaxed);
            if (inserted) replicate_peer_to_cores(it->second);
          }
        }
        // Re-probe suspect peers each refresh round; a successful ping
        // heals them and routing resumes.  Live peers get a versioned
        // directory fetch instead.
        for (auto& [_, peer] : peers_) {
          if (peer.suspect) {
            probe_suspect_peer(peer);
          } else if (config_.peer_dir_refresh) {
            refresh_peer_directory(peer);
          }
        }
        schedule_refresh();
      });
}

void DiscoverServer::set_identity_directory(orb::ObjectRef directory) {
  if (sharded() && config_.emulate_legacy_peer) {
    throw std::invalid_argument(
        "shard_count > 1 cannot federate with emulate_legacy_peer: the "
        "emulated legacy peer build predates sharding");
  }
  if (pool_) {
    // Core 0 owns the refresh loop; it replicates the cache to the other
    // cores after each pull (replicate_identities_to_cores).
    DiscoverServer* core0 = this;
    pool_->post(0, [core0, directory] {
      core0->identity_directory_ = directory;
      if (core0->started_) core0->refresh_identities();
    });
    return;
  }
  identity_directory_ = std::move(directory);
  if (started_) refresh_identities();
}

void DiscoverServer::refresh_identities() {
  if (!started_ || !identity_directory_.valid()) return;
  orb_->invoke(
      identity_directory_, "list_identities", wire::Encoder{},
      [this](util::Result<util::Bytes> r) {
        if (r.ok()) {
          try {
            wire::Decoder d(r.value());
            identity_cache_ = d.map<std::string, std::uint64_t>(
                [](wire::Decoder& dd) { return dd.str(); },
                [](wire::Decoder& dd) { return dd.u64(); });
            replicate_identities_to_cores();
          } catch (const wire::DecodeError&) {
            // Keep the stale cache on malformed replies.
          }
        }
        identity_timer_ = schedule_self(config_.identity_refresh_period,
                                        [this] { refresh_identities(); });
      },
      config_.orb_call_timeout);
}

void DiscoverServer::report_monitoring() {
  if (!started_) return;
  const auto reschedule = [this] {
    monitor_timer_ = schedule_self(config_.monitoring_period,
                                   [this] { report_monitoring(); });
  };
  if (!monitoring_ref_.valid()) {
    // Availability "must be determined at runtime" (§3): discover (or
    // re-discover) the monitoring service through the trader.
    trader_.query(
        "MONITORING", "",
        [this, reschedule](util::Result<std::vector<orb::ServiceOffer>> r) {
          if (r.ok() && !r.value().empty()) {
            monitoring_ref_ = r.value().front().ref;
          }
          reschedule();
        });
    return;
  }
  if (sharded()) {
    // One report for the whole node: gather each core's snapshot on its
    // own thread, merge, and push from core 0 — the same union the
    // /discover/metrics scrape serves.
    auto snaps =
        std::make_shared<std::vector<util::MetricsRegistry::Snapshot>>();
    gather_across_cores(
        [snaps](DiscoverServer& core) {
          snaps->push_back(core.metrics_.snapshot());
        },
        [this, snaps, reschedule] {
          send_monitoring_report(
              util::MetricsRegistry::monitoring_map(
                  util::MetricsRegistry::merge(*snaps)),
              reschedule);
        });
    return;
  }
  send_monitoring_report(metrics_.monitoring_map(), reschedule);
}

void DiscoverServer::send_monitoring_report(
    std::map<std::string, std::int64_t> metrics,
    std::function<void()> reschedule) {
  wire::Encoder args;
  args.str(config_.name);
  // The report is the registry's flat snapshot — every counter, gauge and
  // histogram summary registered in register_metrics() — plus legacy key
  // aliases older MONITORING consumers pin.  The aliases read from the
  // (possibly merged) map rather than this core's stats_ so a sharded
  // node reports node-wide totals.
  metrics["updates"] = metrics["updates_processed"];
  metrics["commands"] = metrics["commands_accepted"];
  metrics["events_shed"] = metrics["events_dropped"];
  args.map(metrics, [](wire::Encoder& e, const std::string& k) { e.str(k); },
           [](wire::Encoder& e, std::int64_t v) { e.i64(v); });
  orb_->invoke(monitoring_ref_, "report", std::move(args),
               [this, reschedule](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   // Count the failure and warn with backoff (streaks log
                   // at 1, 2, 4, 8, ... to keep a dead service from
                   // flooding the log), then forget and re-discover.
                   ++stats_.monitoring_failures;
                   ++monitoring_fail_streak_;
                   if ((monitoring_fail_streak_ &
                        (monitoring_fail_streak_ - 1)) == 0) {
                     DISCOVER_LOG(warn, "server")
                         << describe() << ": monitoring report failed ("
                         << r.error().message << "); streak "
                         << monitoring_fail_streak_ << ", re-discovering";
                   }
                   monitoring_ref_ = orb::ObjectRef{};
                 } else {
                   ++stats_.monitoring_reports;
                   monitoring_fail_streak_ = 0;
                 }
                 reschedule();
               },
               config_.orb_call_timeout);
}

DiscoverServer::Peer* DiscoverServer::peer_by_node(std::uint32_t node) {
  const auto it = peers_.find(node);
  return it != peers_.end() ? &it->second : nullptr;
}

bool DiscoverServer::peer_suspect(net::NodeId node) const {
  const auto it = peers_.find(node.value());
  return it != peers_.end() && it->second.suspect;
}

// ---------------------------------------------------------------------------
// Peer health (suspect / re-probe / heal)
// ---------------------------------------------------------------------------

void DiscoverServer::invoke_peer(std::uint32_t node,
                                 const orb::ObjectRef& ref,
                                 const std::string& method,
                                 wire::Encoder args,
                                 orb::Orb::ResultCallback cb,
                                 util::Duration timeout) {
  Peer* peer = peer_by_node(node);
  if (peer != nullptr && peer->suspect) {
    // Fail fast instead of waiting out a timeout against a peer already
    // known to be unreachable; the refresh loop re-probes it.
    cb(util::Error{util::Errc::unavailable,
                   "peer " + peer->name + " is suspect"});
    return;
  }
  orb_->invoke(
      ref, method, std::move(args),
      [this, node, cb = std::move(cb)](util::Result<util::Bytes> r) {
        note_peer_call(node,
                       !r.ok() && r.error().code == util::Errc::timeout);
        cb(std::move(r));
      },
      timeout);
}

void DiscoverServer::note_peer_call(std::uint32_t node, bool timed_out) {
  if (sharded() && shard_index_ != 0) {
    // Health is adjudicated on core 0 — one failure counter per peer, not
    // shard_count divergent ones.  Transitions come back through
    // broadcast_peer_state_to_cores.
    DiscoverServer* group = group_;
    group_->post_shard(0, [group, node, timed_out] {
      group->note_peer_call(node, timed_out);
    });
    return;
  }
  Peer* peer = peer_by_node(node);
  if (peer == nullptr) return;
  if (!timed_out) {
    // Any response — even an application error — proves the peer is alive.
    peer->consecutive_failures = 0;
    if (peer->suspect) {
      peer->suspect = false;
      DISCOVER_LOG(info, "server")
          << describe() << ": peer " << peer->name << "@" << peer->node
          << " healed";
      drain_outbox_if_any(node);
      broadcast_peer_state_to_cores(node, false);
    }
    return;
  }
  if (config_.peer_suspect_threshold == 0 || peer->suspect) return;
  if (++peer->consecutive_failures >= config_.peer_suspect_threshold) {
    mark_peer_suspect(*peer);
  }
}

void DiscoverServer::mark_peer_suspect(Peer& peer) {
  peer.suspect = true;
  DISCOVER_LOG(warn, "server")
      << describe() << ": peer " << peer.name << "@" << peer.node
      << " suspect after " << peer.consecutive_failures
      << " consecutive timeouts";
  // Its applications are unreachable: withdraw them from the directory and
  // tell everyone (clients get an "application departed" event inside
  // remove_remote_app; peers get a control-channel error event).
  std::vector<proto::AppId> gone;
  for (const auto& [id, entry] : apps_) {
    if (!entry.local && id.host == peer.node) gone.push_back(id);
  }
  for (const auto& id : gone) {
    remove_remote_app(id, "host server unreachable");
    broadcast_system_event(proto::SystemEventKind::error, id,
                           config_.name + ": application " + id.to_string() +
                               " unreachable (host " + peer.name + ")");
  }
  if (gone.empty()) {
    broadcast_system_event(proto::SystemEventKind::error, proto::AppId{},
                           config_.name + ": peer " + peer.name +
                               " unreachable");
  }
  // Steering locks held or awaited via the dead server would otherwise
  // strand until the lease fires (or forever without one): reap them now
  // so a surviving waiter is promoted.
  reap_server_locks(peer.node, "origin server " + peer.name + " unreachable");
  broadcast_peer_state_to_cores(peer.node, true);
}

void DiscoverServer::probe_suspect_peer(Peer& peer) {
  const std::uint32_t node = peer.node;
  orb_->invoke(
      peer.server_ref, "ping", wire::Encoder{},
      [this, node](util::Result<util::Bytes> r) {
        Peer* p = peer_by_node(node);
        if (p == nullptr || !r.ok()) return;
        p->consecutive_failures = 0;
        if (p->suspect) {
          p->suspect = false;
          DISCOVER_LOG(info, "server")
              << describe() << ": peer " << p->name << "@" << p->node
              << " healed (probe)";
          drain_outbox_if_any(node);
          broadcast_peer_state_to_cores(node, false);
        }
      },
      config_.orb_call_timeout);
}

// ---------------------------------------------------------------------------
// Sharded federation (DESIGN.md §5j): peer replication and health fan-out
// ---------------------------------------------------------------------------

void DiscoverServer::replicate_peer_to_cores(const Peer& peer) {
  if (!sharded() || shard_index_ != 0) return;
  const std::uint32_t node = peer.node;
  const std::string name = peer.name;
  const orb::ObjectRef ref = peer.server_ref;
  for (std::uint32_t i = 1; i < group_shards_; ++i) {
    DiscoverServer* core = &group_->core_at(i);
    group_->pool_->post(i, [core, node, name, ref] {
      if (core->peers_.count(node) != 0) return;
      Peer copy;
      copy.node = node;
      copy.name = name;
      copy.server_ref = ref;
      copy.limiter =
          std::make_unique<security::RateLimiter>(core->config_.peer_policy);
      core->peers_.emplace(node, std::move(copy));
      core->peer_count_cache_.store(core->peers_.size(),
                                    std::memory_order_relaxed);
    });
  }
}

void DiscoverServer::replicate_identities_to_cores() {
  if (!sharded() || shard_index_ != 0) return;
  const auto cache = identity_cache_;
  for (std::uint32_t i = 1; i < group_shards_; ++i) {
    DiscoverServer* core = &group_->core_at(i);
    group_->pool_->post(i, [core, cache] { core->identity_cache_ = cache; });
  }
}

void DiscoverServer::broadcast_peer_state_to_cores(std::uint32_t node,
                                                   bool suspect) {
  if (!sharded() || shard_index_ != 0) return;
  for (std::uint32_t i = 1; i < group_shards_; ++i) {
    DiscoverServer* core = &group_->core_at(i);
    group_->pool_->post(i, [core, node, suspect] {
      if (suspect) {
        core->apply_peer_suspect(node);
      } else {
        core->apply_peer_heal(node);
      }
    });
  }
}

void DiscoverServer::apply_peer_suspect(std::uint32_t node) {
  Peer* peer = peer_by_node(node);
  if (peer != nullptr) peer->suspect = true;
  // Withdraw this core's remote apps hosted there; their watchers get the
  // departed event.  No control broadcast here — core 0 already told the
  // other servers once for the whole node.
  std::vector<proto::AppId> gone;
  for (const auto& [id, entry] : apps_) {
    if (!entry.local && id.host == node) gone.push_back(id);
  }
  for (const auto& id : gone) {
    remove_remote_app(id, "host server unreachable");
  }
  reap_server_locks(node, "origin server unreachable");
}

void DiscoverServer::apply_peer_heal(std::uint32_t node) {
  Peer* peer = peer_by_node(node);
  if (peer != nullptr) {
    peer->consecutive_failures = 0;
    peer->suspect = false;
  }
  drain_outbox_if_any(node);
}

bool DiscoverServer::admit_peer(std::uint32_t node, std::size_t bytes) {
  Peer* peer = peer_by_node(node);
  if (peer == nullptr || !peer->limiter) return true;
  const bool ok = peer->limiter->admit(network_.now(),
                                       static_cast<std::uint64_t>(bytes));
  if (!ok) ++stats_.peer_rate_limited;
  return ok;
}

// ---------------------------------------------------------------------------
// Control channel (paper §5.1): error messages and system events
// ---------------------------------------------------------------------------

void DiscoverServer::broadcast_system_event(proto::SystemEventKind kind,
                                            const proto::AppId& app,
                                            const std::string& text) {
  proto::SystemEvent ev;
  ev.kind = kind;
  ev.origin_server = self_.value();
  ev.app = app;
  ev.text = text;
  // One serialization shared by every peer (refcounted, not copied).
  const net::Payload payload{proto::encode_framed(proto::FramedMessage{ev})};
  for (const auto& [node, _] : peers_) {
    network_.send(self_, net::NodeId{node}, net::Channel::control, payload);
  }
  ++stats_.system_events;
}

void DiscoverServer::handle_control_channel(const net::Message& msg) {
  auto decoded = proto::decode_framed(msg.payload);
  if (!decoded.ok()) return;
  const auto* ev = std::get_if<proto::SystemEvent>(&decoded.value());
  if (ev == nullptr) return;
  ++stats_.system_events;
  switch (ev->kind) {
    case proto::SystemEventKind::app_departed: {
      // Control framing lands on core 0 (route_message); the remote entry
      // for this app lives on shard_of_app's core — hop there.
      const std::uint32_t owner = shard_owner_of(ev->app);
      if (sharded() && owner != shard_index_) {
        DiscoverServer* core = &group_->core_at(owner);
        const proto::AppId app = ev->app;
        const std::string text = ev->text;
        group_->pool_->post(
            owner, [core, app, text] { core->remove_remote_app(app, text); });
      } else {
        remove_remote_app(ev->app, ev->text);
      }
      break;
    }
    case proto::SystemEventKind::server_down: {
      // Peers are replicated to every core; each core forgets its copy and
      // withdraws its own share of the dead server's apps.
      const std::uint32_t origin = ev->origin_server;
      if (sharded()) {
        for (std::uint32_t i = 1; i < group_shards_; ++i) {
          DiscoverServer* core = &group_->core_at(i);
          group_->pool_->post(i,
                              [core, origin] { core->handle_peer_down(origin); });
        }
      }
      handle_peer_down(origin);
      break;
    }
    case proto::SystemEventKind::server_up:
      refresh_peers();
      break;
    case proto::SystemEventKind::app_registered:
    case proto::SystemEventKind::error:
      break;  // informational
  }
}

void DiscoverServer::handle_peer_down(std::uint32_t origin) {
  peers_.erase(origin);
  peer_count_cache_.store(peers_.size(), std::memory_order_relaxed);
  // Every remote application hosted there is now unreachable.
  std::vector<proto::AppId> gone;
  for (const auto& [id, entry] : apps_) {
    if (!entry.local && id.host == origin) gone.push_back(id);
  }
  for (const auto& id : gone) {
    remove_remote_app(id, "host server down");
  }
  reap_server_locks(origin, "origin server down");
}

// ---------------------------------------------------------------------------
// Remote applications (paper §5.1.2): resolve, subscribe, ingest
// ---------------------------------------------------------------------------

void DiscoverServer::with_remote_app(const proto::AppId& app,
                                     std::function<void(AppEntry*)> ready) {
  if (AppEntry* existing = find_app(app)) {
    ready(existing);
    return;
  }
  if (app.host == self_.value() || !naming_.configured()) {
    ready(nullptr);  // a local id we don't know, or no registry to resolve
    return;
  }
  if (const Peer* host = peer_by_node(app.host);
      host != nullptr && host->suspect) {
    ready(nullptr);  // its host is unreachable; don't re-resolve until healed
    return;
  }
  naming_.resolve(
      app.to_string(),
      [this, app, ready = std::move(ready)](util::Result<orb::ObjectRef> r) {
        if (!r.ok()) {
          ready(nullptr);
          return;
        }
        if (AppEntry* raced = find_app(app)) {
          ready(raced);
          return;
        }
        AppEntry entry;
        entry.id = app;
        entry.local = false;
        entry.corba_proxy = r.value();
        auto [it, _] = apps_.emplace(app, std::move(entry));
        ready(&it->second);
      });
}

void DiscoverServer::subscribe_remote(AppEntry& entry) {
  if (entry.local || entry.remote_subscribed) return;
  entry.remote_subscribed = true;
  wire::Encoder args;
  args.u32(self_.value());
  encode(args, own_server_ref_);
  const proto::AppId id = entry.id;
  invoke_peer(entry.corba_proxy.node, entry.corba_proxy, "subscribe",
              std::move(args),
              [this, id](util::Result<util::Bytes> r) {
                AppEntry* e = find_app(id);
                if (e == nullptr) return;
                if (!r.ok()) {
                  // A lost subscription would silently starve every local
                  // watcher; keep re-trying while the entry exists (it is
                  // removed when the host goes suspect or the app departs,
                  // which ends this loop).  Failed attempts still feed the
                  // peer failure detector through invoke_peer.
                  e->remote_subscribed = false;
                  schedule_self(
                      config_.remote_poll_period, [this, id] {
                        AppEntry* e2 = find_app(id);
                        if (e2 != nullptr && !e2->local &&
                            !e2->remote_subscribed) {
                          subscribe_remote(*e2);
                        }
                      });
                  return;
                }
                wire::Decoder d(r.value());
                const std::uint64_t host_seq = d.u64();
                if (config_.remote_update_mode == RemoteUpdateMode::poll) {
                  start_remote_poll(*e);
                } else if (host_seq > e->remote_known_seq &&
                           e->backfill_upto == 0) {
                  // Events published between the level-2 handshake and this
                  // subscribe landing (or while a re-subscribe was down)
                  // were never pushed to us; fetch them once rather than
                  // silently adopting the host's sequence.
                  backfill_remote_gap(*e, host_seq);
                }
              },
              config_.orb_call_timeout);
}

void DiscoverServer::backfill_remote_gap(AppEntry& entry,
                                         std::uint64_t upto) {
  const proto::AppId id = entry.id;
  const std::uint64_t since = entry.remote_known_seq;
  entry.backfill_upto = upto;
  wire::Encoder args;
  args.u64(since);
  args.u32(256);
  invoke_peer(
      entry.corba_proxy.node, entry.corba_proxy, "poll_events",
      std::move(args),
      [this, id, since, upto](util::Result<util::Bytes> r) {
        AppEntry* e = find_app(id);
        if (e == nullptr || e->local || e->backfill_upto == 0) return;
        if (r.ok()) {
          wire::Decoder d(r.value());
          for (const auto& ev : decode_event_seq(d)) {
            // Only the gap itself: pushes never carried (since, upto], so
            // this cannot double-deliver, and anything past upto is the
            // push stream's job.
            if (ev.seq <= since || ev.seq > upto) continue;
            e->remote_known_seq = std::max(e->remote_known_seq, ev.seq);
            deliver_remote(*e, ev);
          }
        }
        // Whatever the archive couldn't give us is gone; don't stall the
        // push stream waiting for it.
        e->remote_known_seq = std::max(e->remote_known_seq, upto);
        e->backfill_upto = 0;
        const auto held = std::move(e->backfill_buffer);
        e->backfill_buffer.clear();
        ingest_remote_events(*e, held);
      },
      config_.orb_call_timeout);
}

void DiscoverServer::unsubscribe_remote(AppEntry& entry) {
  if (entry.local || !entry.remote_subscribed) return;
  entry.remote_subscribed = false;
  if (entry.poll_timer.value() != 0) {
    network_.cancel(entry.poll_timer);
    entry.poll_timer = net::TimerId{0};
  }
  wire::Encoder args;
  args.u32(self_.value());
  invoke_peer(entry.corba_proxy.node, entry.corba_proxy, "unsubscribe",
              std::move(args), [](util::Result<util::Bytes>) {},
              config_.orb_call_timeout);
}

void DiscoverServer::start_remote_poll(AppEntry& entry) {
  const proto::AppId id = entry.id;
  entry.poll_timer =
      schedule_self(config_.remote_poll_period, [this, id] {
        AppEntry* e = find_app(id);
        if (e == nullptr || !e->remote_subscribed) return;
        wire::Encoder args;
        args.u64(e->remote_known_seq);
        args.u32(256);
        invoke_peer(e->corba_proxy.node, e->corba_proxy, "poll_events",
                    std::move(args),
                    [this, id](util::Result<util::Bytes> r) {
                      AppEntry* e2 = find_app(id);
                      if (e2 == nullptr || !e2->remote_subscribed) return;
                      if (r.ok()) {
                        wire::Decoder d(r.value());
                        ingest_remote_events(*e2, decode_event_seq(d));
                      }
                      start_remote_poll(*e2);  // next round after the reply
                    },
                    config_.orb_call_timeout);
      });
}

void DiscoverServer::ingest_remote_events(
    AppEntry& entry, const std::vector<proto::ClientEvent>& events) {
  if (entry.backfill_upto != 0) {
    // A subscribe-gap fetch is in flight; hold pushed events so the gap
    // events still land first (bounded — an overflow abandons ordering
    // rather than memory).
    entry.backfill_buffer.insert(entry.backfill_buffer.end(), events.begin(),
                                 events.end());
    if (entry.backfill_buffer.size() <= wire::kMaxSequencePrereserve) return;
    entry.backfill_upto = 0;
    const auto held = std::move(entry.backfill_buffer);
    entry.backfill_buffer.clear();
    ingest_remote_events(entry, held);
    return;
  }
  for (const auto& ev : events) {
    if (ev.seq <= entry.remote_known_seq) continue;  // de-dup push+poll
    entry.remote_known_seq = ev.seq;
    deliver_remote(entry, ev);
  }
}

void DiscoverServer::deliver_remote(AppEntry& entry,
                                    const proto::ClientEvent& ev) {
  ++stats_.peer_events_in;
  live_peer_events_.fetch_add(1, std::memory_order_relaxed);
  if (config_.app_event_cpu_cost > 0) {
    // Calibrated per-event ingest burn (see ServerConfig), paid on the
    // owning core: the federation bench prices how inbound peer traffic
    // parallelises across shards.
    if (config_.servlet_cost_sleeps) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(config_.app_event_cpu_cost));
    } else {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(config_.app_event_cpu_cost);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
  }
  deliver_local(entry.id, ev);
  if (!entry.watcher_shards.empty()) fan_out_to_watcher_shards(entry, ev);
}

void DiscoverServer::push_to_subscribers(AppEntry& entry,
                                         const proto::ClientEvent& ev) {
  if (entry.subscribers.empty()) return;
  if (config_.peer_flush_delay == 0) {
    // Legacy per-event path (A/B baseline): one forward_event ORB call per
    // event per subscribed peer, byte-for-byte the pre-outbox wire format.
    for (const auto& [node, ref] : entry.subscribers) {
      // One message per remote server, not per remote client (§5.2.3).
      wire::Encoder args;
      proto::encode(args, entry.id);
      encode_event_seq(args, {ev});
      invoke_peer(node, ref, "forward_event", std::move(args),
                  [](util::Result<util::Bytes>) {}, config_.orb_call_timeout);
      ++stats_.peer_events_out;
    }
    return;
  }
  // Outbox path: serialize the event once, share the bytes across every
  // subscriber's outbox, let the flush triggers coalesce.
  const auto encoded = encode_event_standalone(ev);
  const auto shared_ev = std::make_shared<const proto::ClientEvent>(ev);
  for (const auto& [node, ref] : entry.subscribers) {
    OutboxItem item;
    item.frame_kind = proto::EventFrameKind::push;
    item.app = entry.id;
    item.seq = ev.seq;
    item.kind = ev.kind;
    item.event = shared_ev;
    item.encoded = encoded;
    outbox_append(node, ref, std::move(item));
    ++stats_.peer_events_out;
  }
}

// ---------------------------------------------------------------------------
// Peer outbox pipeline (DESIGN.md "Peer outbox & directory deltas")
// ---------------------------------------------------------------------------

void DiscoverServer::relay_collab_to_host(AppEntry& entry,
                                          proto::ClientEvent ev) {
  const std::uint32_t host = entry.corba_proxy.node;
  const Peer* peer = peer_by_node(host);
  const auto ob = outboxes_.find(host);
  const bool batch = config_.peer_flush_delay > 0 && peer != nullptr &&
                     peer->server_ref.valid() &&
                     (ob == outboxes_.end() || !ob->second.legacy_peer);
  if (!batch) {
    // Legacy wire behaviour: direct forward_collab to the app's CorbaProxy.
    wire::Encoder args;
    proto::encode(args, ev);
    invoke_peer(host, entry.corba_proxy, "forward_collab", std::move(args),
                [](util::Result<util::Bytes>) {}, config_.orb_call_timeout);
    return;
  }
  OutboxItem item;
  item.frame_kind = proto::EventFrameKind::collab_relay;
  item.app = entry.id;
  item.kind = ev.kind;
  item.encoded = encode_event_standalone(ev);
  item.event = std::make_shared<const proto::ClientEvent>(std::move(ev));
  outbox_append(host, peer->server_ref, std::move(item));
}

void DiscoverServer::outbox_append(std::uint32_t node,
                                   const orb::ObjectRef& ref,
                                   OutboxItem item) {
  // Queueing decouples the event from its ingress context (the flush fires
  // from a timer); remember the ambient trace so the batch can rejoin it.
  item.trace = tracer_.current();
  PeerOutbox& ob = outboxes_[node];
  ob.ref = ref;
  if (ob.legacy_peer) {
    send_item_legacy(node, item);
    return;
  }
  if (ob.items.size() >= config_.peer_outbox_cap &&
      config_.peer_outbox_cap > 0) {
    // Backpressure: prefer shedding a periodic state update (a newer one
    // supersedes it anyway) over collaboration or response traffic.
    auto victim = ob.items.begin();
    for (auto it = ob.items.begin(); it != ob.items.end(); ++it) {
      if (it->kind == proto::EventKind::update) {
        victim = it;
        break;
      }
    }
    ob.bytes -= std::min(ob.bytes,
                         victim->encoded->size() + kOutboxItemOverhead);
    ob.items.erase(victim);
    ++stats_.outbox_dropped;
  }
  ob.bytes += item.encoded->size() + kOutboxItemOverhead;
  ob.items.push_back(std::move(item));
  if (ob.items.size() >= config_.peer_batch_max_events) {
    flush_outbox(node, FlushTrigger::count);
  } else if (ob.bytes >= config_.peer_batch_max_bytes) {
    flush_outbox(node, FlushTrigger::bytes);
  } else if (ob.flush_timer.value() == 0 && !ob.inflight) {
    ob.flush_timer =
        schedule_self(config_.peer_flush_delay, [this, node] {
          const auto it = outboxes_.find(node);
          if (it == outboxes_.end()) return;
          it->second.flush_timer = net::TimerId{0};
          flush_outbox(node, FlushTrigger::timer);
        });
  }
}

void DiscoverServer::flush_outbox(std::uint32_t node, FlushTrigger trigger) {
  const auto it = outboxes_.find(node);
  if (it == outboxes_.end()) return;
  PeerOutbox& ob = it->second;
  if (ob.items.empty() || ob.inflight) return;
  if (const Peer* peer = peer_by_node(node); peer != nullptr &&
                                             peer->suspect) {
    // Don't burn encodes against a peer known to be unreachable: items
    // wait (bounded by peer_outbox_cap) and drain on heal.
    return;
  }
  if (ob.flush_timer.value() != 0) {
    network_.cancel(ob.flush_timer);
    ob.flush_timer = net::TimerId{0};
  }

  std::vector<OutboxItem> sent(std::make_move_iterator(ob.items.begin()),
                               std::make_move_iterator(ob.items.end()));
  ob.items.clear();
  const std::size_t payload_hint = ob.bytes;
  ob.bytes = 0;

  // Group the FIFO into frames: one frame per run of (app, kind), so
  // per-app order is the queue order and each push frame carries its
  // contiguous seq range.
  struct FrameSpan {
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<FrameSpan> spans;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (i == 0 || sent[i].frame_kind != sent[i - 1].frame_kind ||
        !(sent[i].app == sent[i - 1].app)) {
      spans.push_back({i, 1});
    } else {
      ++spans.back().count;
    }
  }

  wire::Encoder args;
  args.reserve(payload_hint + 16);
  args.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& span : spans) {
    const OutboxItem& first = sent[span.first];
    const OutboxItem& last = sent[span.first + span.count - 1];
    args.u8(static_cast<std::uint8_t>(first.frame_kind));
    proto::encode(args, first.app);
    args.u64(first.seq);
    args.u64(last.seq);
    args.u32(static_cast<std::uint32_t>(span.count));
    for (std::size_t k = 0; k < span.count; ++k) {
      args.align_to(8);
      args.splice(*sent[span.first + k].encoded);
    }
  }

  ++stats_.peer_batches_out;
  stats_.peer_batch_events_max =
      std::max<std::uint64_t>(stats_.peer_batch_events_max, sent.size());
  switch (trigger) {
    case FlushTrigger::count: ++stats_.flushes_by_count; break;
    case FlushTrigger::bytes: ++stats_.flushes_by_bytes; break;
    case FlushTrigger::timer: ++stats_.flushes_by_timer; break;
    case FlushTrigger::drain: break;
  }

  ob.inflight = true;
  // Flush RTT (send -> peer ack) and trace continuity: the batched call
  // runs under the first traced item's context, so the forward_events span
  // lands in the trace that queued the event at this server.
  util::TraceContext batch_trace;
  for (const auto& item : sent) {
    if (item.trace.valid()) {
      batch_trace = item.trace;
      break;
    }
  }
  const bool rtt_sampled = stage_sample() && stage_flush_rtt_ != nullptr;
  const util::TimePoint flushed_at = network_.now();
  util::Tracer::Scope trace_scope(tracer_, batch_trace);
  invoke_peer(
      node, ob.ref, "forward_events", std::move(args),
      [this, node, rtt_sampled, flushed_at,
       sent = std::move(sent)](util::Result<util::Bytes> r) {
        if (rtt_sampled) {
          stage_flush_rtt_->record(network_.now() - flushed_at);
        }
        const auto oit = outboxes_.find(node);
        if (oit == outboxes_.end()) return;
        PeerOutbox& o = oit->second;
        o.inflight = false;
        if (!r.ok() && r.error().code == util::Errc::invalid_argument) {
          // Mixed-version fallback: the peer predates forward_events.
          // Resend this batch through the singular compat alias and stay
          // singular for the rest of its lifetime.
          o.legacy_peer = true;
          for (const auto& item : sent) send_item_legacy(node, item);
          for (const auto& item : o.items) send_item_legacy(node, item);
          o.items.clear();
          o.bytes = 0;
          return;
        }
        if (!r.ok()) {
          // Undelivered (timeout / suspect fail-fast).  Requeue push
          // frames at the front — remote_known_seq makes a double
          // delivery harmless, and the in-flight gate kept order — but
          // drop collab relays: re-posting them under a fresh request id
          // could duplicate a chat (the old forward_collab lost them the
          // same way).
          for (auto rit = sent.rbegin(); rit != sent.rend(); ++rit) {
            if (rit->frame_kind != proto::EventFrameKind::push) {
              ++stats_.outbox_dropped;
              continue;
            }
            o.bytes += rit->encoded->size() + kOutboxItemOverhead;
            o.items.push_front(std::move(*rit));
          }
          while (config_.peer_outbox_cap > 0 &&
                 o.items.size() > config_.peer_outbox_cap) {
            o.bytes -= std::min(
                o.bytes, o.items.back().encoded->size() + kOutboxItemOverhead);
            o.items.pop_back();
            ++stats_.outbox_dropped;
          }
          if (!o.items.empty() && o.flush_timer.value() == 0) {
            ob_arm_retry(node);
          }
          return;
        }
        if (!o.items.empty()) {
          // Traffic that queued behind the in-flight batch leaves now.
          flush_outbox(node, FlushTrigger::drain);
        }
      },
      config_.orb_call_timeout);
}

void DiscoverServer::ob_arm_retry(std::uint32_t node) {
  const auto it = outboxes_.find(node);
  if (it == outboxes_.end()) return;
  it->second.flush_timer =
      schedule_self(config_.peer_flush_delay, [this, node] {
        const auto oit = outboxes_.find(node);
        if (oit == outboxes_.end()) return;
        oit->second.flush_timer = net::TimerId{0};
        flush_outbox(node, FlushTrigger::drain);
      });
}

void DiscoverServer::send_item_legacy(std::uint32_t node,
                                      const OutboxItem& item) {
  if (item.frame_kind == proto::EventFrameKind::push) {
    wire::Encoder args;
    proto::encode(args, item.app);
    encode_event_seq(args, {*item.event});
    const auto oit = outboxes_.find(node);
    if (oit == outboxes_.end()) return;
    invoke_peer(node, oit->second.ref, "forward_event", std::move(args),
                [](util::Result<util::Bytes>) {}, config_.orb_call_timeout);
    return;
  }
  // Collab relay: singular sends target the app's CorbaProxy, not the
  // level-1 servant.
  AppEntry* entry = find_app(item.app);
  if (entry == nullptr || entry->local) return;
  wire::Encoder args;
  proto::encode(args, *item.event);
  invoke_peer(node, entry->corba_proxy, "forward_collab", std::move(args),
              [](util::Result<util::Bytes>) {}, config_.orb_call_timeout);
}

void DiscoverServer::drain_outbox_if_any(std::uint32_t node) {
  const auto it = outboxes_.find(node);
  if (it != outboxes_.end() && !it->second.items.empty()) {
    flush_outbox(node, FlushTrigger::drain);
  }
}

void DiscoverServer::flush_all_outboxes() {
  for (auto& [node, ob] : outboxes_) {
    if (ob.flush_timer.value() != 0) {
      network_.cancel(ob.flush_timer);
      ob.flush_timer = net::TimerId{0};
    }
    // Best-effort: inflight batches already carry their items; what is
    // still queued goes out in one final batch.
    if (!ob.items.empty() && !ob.inflight) {
      flush_outbox(node, FlushTrigger::drain);
    }
  }
}

void DiscoverServer::ingest_event_frames(
    const std::vector<proto::EventFrame>& frames) {
  if (!sharded()) {
    apply_event_frames(frames);
    return;
  }
  // A peer batches per destination NODE, so one forward_events call mixes
  // apps owned by different cores.  Scatter each frame to shard_of_app's
  // core (per-frame order within an app is preserved: frames for one app
  // always land on one core, through one FIFO queue) and apply this core's
  // own share inline.
  std::vector<proto::EventFrame> mine;
  std::map<std::uint32_t, std::vector<proto::EventFrame>> other;
  for (const auto& f : frames) {
    const std::uint32_t owner = shard_owner_of(f.app);
    if (owner == shard_index_) {
      mine.push_back(f);
    } else {
      other[owner].push_back(f);
    }
  }
  for (auto& [owner, batch] : other) {
    DiscoverServer* core = &group_->core_at(owner);
    group_->pool_->post(owner, [core, batch = std::move(batch)] {
      core->apply_event_frames(batch);
    });
  }
  if (!mine.empty()) apply_event_frames(mine);
}

void DiscoverServer::apply_event_frames(
    const std::vector<proto::EventFrame>& frames) {
  for (const auto& f : frames) {
    AppEntry* entry = find_app(f.app);
    if (entry == nullptr) continue;
    if (f.kind == proto::EventFrameKind::push) {
      if (entry->local) continue;
      // Frame-level fast dedup: a retried batch whose whole range is
      // already known needs no per-event scan.
      if (f.seq_last != 0 && f.seq_last <= entry->remote_known_seq) continue;
      ingest_remote_events(*entry, f.events);
    } else {
      if (!entry->local) continue;
      for (const auto& ev : f.events) {
        proto::ClientEvent stamped = ev;
        stamped.app = f.app;
        publish_event(*entry, std::move(stamped));
      }
    }
  }
}

std::size_t DiscoverServer::outbox_depth(std::uint32_t node) const {
  const auto it = outboxes_.find(node);
  return it != outboxes_.end() ? it->second.items.size() : 0;
}

// ---------------------------------------------------------------------------
// Versioned directory (DESIGN.md "Peer outbox & directory deltas")
// ---------------------------------------------------------------------------

proto::AppInfo DiscoverServer::app_info_of(const AppEntry& entry) const {
  proto::AppInfo info;
  info.id = entry.id;
  info.name = entry.name;
  info.description = entry.description;
  info.phase = entry.phase;
  info.update_seq = entry.event_seq;
  if (entry.local) {
    // Steering-lock state rides the directory so remote servers and
    // clients can see who drives and how deep the wait is (§5.2.4).
    if (const auto h = locks_.holder(entry.id)) {
      info.lock_holder = h->user + "@" + std::to_string(h->server);
    }
    info.lock_queue =
        static_cast<std::uint32_t>(locks_.queue_length(entry.id));
  }
  return info;
}

void DiscoverServer::bump_directory(const proto::AppId& app, bool removed) {
  if (sharded()) {
    // One node-wide version sequence: the owning core reports the change —
    // with a fresh AppInfo for upserts — to core 0, which keeps the log
    // and the mirror that directory_update_since serves peers from.
    proto::AppInfo info;
    bool have_info = false;
    if (!removed) {
      if (const AppEntry* entry = find_app(app);
          entry != nullptr && entry->local) {
        info = app_info_of(*entry);
        have_info = true;
      }
    }
    DiscoverServer* group = group_;
    group_->post_shard(0, [group, app, removed, info, have_info] {
      group->record_directory_change(app, removed, info, have_info);
    });
    return;
  }
  ++dir_version_;
  dir_log_.push_back({dir_version_, app, removed});
  while (dir_log_.size() > config_.dir_log_cap) dir_log_.pop_front();
}

void DiscoverServer::record_directory_change(const proto::AppId& app,
                                             bool removed,
                                             const proto::AppInfo& info,
                                             bool have_info) {
  ++dir_version_;
  dir_log_.push_back({dir_version_, app, removed});
  while (dir_log_.size() > config_.dir_log_cap) dir_log_.pop_front();
  if (removed || !have_info) {
    dir_mirror_.erase(app);
  } else {
    dir_mirror_[app] = info;
  }
}

void DiscoverServer::bump_directory_epoch() {
  if (sharded()) {
    post_shard(0, [this] {
      ++dir_epoch_;
      dir_log_.clear();
    });
    return;
  }
  ++dir_epoch_;
  dir_log_.clear();
}

proto::DirectoryUpdate DiscoverServer::directory_update_since(
    std::uint64_t epoch, std::uint64_t since) const {
  proto::DirectoryUpdate upd;
  upd.epoch = dir_epoch_;
  upd.version = dir_version_;
  // Delta only when the caller is on our epoch, not ahead of us (a host
  // restart resets the version), and not behind the bounded change log.
  const std::uint64_t log_floor =
      dir_log_.empty() ? dir_version_ : dir_log_.front().version - 1;
  const bool delta_ok = epoch == dir_epoch_ && since <= dir_version_ &&
                        since >= log_floor;
  if (!delta_ok) {
    upd.full = true;
    if (sharded()) {
      // apps_ holds only this core's apps; the mirror has every core's
      // (AppInfo as of the last membership/phase bump — see DESIGN.md §5j).
      for (const auto& [id, info] : dir_mirror_) upd.apps.push_back(info);
    } else {
      for (const auto& [id, entry] : apps_) {
        if (entry.local) upd.apps.push_back(app_info_of(entry));
      }
    }
    return upd;
  }
  // Collapse the log tail: the latest mention of an app wins, removals of
  // apps the caller then saw re-register collapse into one upsert.
  std::set<proto::AppId> touched;
  for (auto it = dir_log_.rbegin(); it != dir_log_.rend(); ++it) {
    if (it->version <= since) break;
    if (!touched.insert(it->app).second) continue;
    if (sharded()) {
      const auto mit = dir_mirror_.find(it->app);
      if (mit != dir_mirror_.end()) {
        upd.apps.push_back(mit->second);
      } else {
        upd.removed.push_back(it->app);
      }
      continue;
    }
    const AppEntry* entry = find_app(it->app);
    if (entry != nullptr && entry->local) {
      upd.apps.push_back(app_info_of(*entry));
    } else {
      upd.removed.push_back(it->app);
    }
  }
  return upd;
}

void DiscoverServer::refresh_peer_directory(Peer& peer) {
  if (peer.dir_inflight || peer.dir_unsupported || peer.suspect) return;
  if (!peer.server_ref.valid()) return;
  peer.dir_inflight = true;
  wire::Encoder args;
  // A (0, 0) cursor never matches a host epoch, so the legacy A/B knob
  // degenerates to a full snapshot every round.
  args.u64(config_.peer_dir_deltas ? peer.dir_epoch : 0);
  args.u64(config_.peer_dir_deltas ? peer.dir_version : 0);
  const std::uint32_t node = peer.node;
  invoke_peer(
      node, peer.server_ref, "list_apps_since", std::move(args),
      [this, node](util::Result<util::Bytes> r) {
        Peer* p = peer_by_node(node);
        if (p == nullptr) return;
        p->dir_inflight = false;
        if (!r.ok()) {
          if (r.error().code == util::Errc::invalid_argument) {
            p->dir_unsupported = true;  // pre-outbox peer build
          }
          return;
        }
        stats_.dir_refresh_bytes += r.value().size();
        try {
          wire::Decoder d(r.value());
          apply_directory_update(*p, proto::decode_directory_update(d));
        } catch (const wire::DecodeError&) {
          // Keep the stale view on malformed replies.
        }
      },
      config_.orb_call_timeout);
}

void DiscoverServer::apply_directory_update(
    Peer& peer, const proto::DirectoryUpdate& upd) {
  if (upd.full) {
    ++stats_.dir_fulls_in;
  } else {
    ++stats_.dir_deltas_in;
    // A stale delta (reordered behind a newer reply) must not roll the
    // view back; full snapshots always apply (epoch recovery).
    if (upd.epoch == peer.dir_epoch && upd.version < peer.dir_version) return;
  }

  std::vector<proto::AppId> removed = upd.removed;
  if (upd.full) {
    std::set<proto::AppId> now_present;
    for (const auto& info : upd.apps) now_present.insert(info.id);
    for (const auto& [id, _] : peer.directory) {
      if (now_present.count(id) == 0) removed.push_back(id);
    }
    peer.directory.clear();
  }
  for (const auto& info : upd.apps) {
    peer.directory[info.id] = info;
    // Freshen remote AppEntry metadata for apps we actively track.
    if (AppEntry* entry = find_app(info.id);
        entry != nullptr && !entry->local) {
      entry->name = info.name;
      entry->description = info.description;
      entry->phase = info.phase;
    }
  }
  for (const auto& id : removed) {
    peer.directory.erase(id);
    // Backup departure signal behind the control channel: only touch
    // remote entries actually hosted at this peer.
    if (const AppEntry* entry = find_app(id);
        entry != nullptr && !entry->local && id.host == peer.node) {
      remove_remote_app(id, "withdrawn from host directory");
    }
  }
  peer.dir_epoch = upd.epoch;
  peer.dir_version = upd.version;
}

std::vector<proto::AppInfo> DiscoverServer::peer_directory(
    std::uint32_t node) const {
  std::vector<proto::AppInfo> out;
  const auto it = peers_.find(node);
  if (it == peers_.end()) return out;
  for (const auto& [_, info] : it->second.directory) out.push_back(info);
  return out;
}

void DiscoverServer::remove_remote_app(const proto::AppId& app,
                                       const std::string& reason) {
  AppEntry* entry = find_app(app);
  if (entry == nullptr || entry->local) return;
  if (entry->poll_timer.value() != 0) network_.cancel(entry->poll_timer);

  // Tell local watchers the application is gone.
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::system;
  ev.app = app;
  ev.seq = entry->remote_known_seq + 1;
  ev.at = network_.now();
  ev.text = "application departed: " + reason;
  deliver_local(app, ev);
  // Watchers on other shard cores hear the departure too (not counted as a
  // peer event — it is synthesized here, not received).
  if (!entry->watcher_shards.empty()) fan_out_to_watcher_shards(*entry, ev);
  apps_.erase(app);
}

}  // namespace discover::core
