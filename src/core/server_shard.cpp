// Sharded multi-core server internals (DESIGN.md §5i).
//
// A DiscoverServer with shard_count > 1 on a sharding-capable network is a
// group of N full server cores sharing one node id.  The user-facing
// instance is core 0 and owns the dispatcher, the shard pool and the inner
// cores; every core runs its own event loop over its own pool queue, so
// all per-core state stays lock-free.  Cross-core interactions — select
// grants, lock forgets, event fan-out, login/scrape gathers — are the
// explicit queue hops implemented here.
#include "core/server.h"

#include <algorithm>

#include "util/log.h"

namespace discover::core {

void ServerStats::add(const ServerStats& other) {
  logins_ok += other.logins_ok;
  logins_failed += other.logins_failed;
  selects_ok += other.selects_ok;
  selects_failed += other.selects_failed;
  commands_accepted += other.commands_accepted;
  commands_rejected += other.commands_rejected;
  commands_buffered += other.commands_buffered;
  updates_processed += other.updates_processed;
  responses_processed += other.responses_processed;
  events_delivered += other.events_delivered;
  events_dropped += other.events_dropped;
  resync_markers += other.resync_markers;
  overflow_disconnects += other.overflow_disconnects;
  admission_rejected_logins += other.admission_rejected_logins;
  admission_rejected_selects += other.admission_rejected_selects;
  // Peaks and maxima are per-core high-water marks; the sum keeps the max.
  peak_fifo_backlog = std::max(peak_fifo_backlog, other.peak_fifo_backlog);
  peak_fifo_backlog_bytes =
      std::max(peak_fifo_backlog_bytes, other.peak_fifo_backlog_bytes);
  polls_served += other.polls_served;
  collab_posts += other.collab_posts;
  remote_commands_in += other.remote_commands_in;
  remote_commands_out += other.remote_commands_out;
  peer_events_in += other.peer_events_in;
  peer_events_out += other.peer_events_out;
  peer_rate_limited += other.peer_rate_limited;
  peer_batches_out += other.peer_batches_out;
  peer_batch_events_max =
      std::max(peer_batch_events_max, other.peer_batch_events_max);
  flushes_by_count += other.flushes_by_count;
  flushes_by_bytes += other.flushes_by_bytes;
  flushes_by_timer += other.flushes_by_timer;
  outbox_dropped += other.outbox_dropped;
  dir_deltas_in += other.dir_deltas_in;
  dir_fulls_in += other.dir_fulls_in;
  dir_refresh_bytes += other.dir_refresh_bytes;
  system_events += other.system_events;
  apps_registered += other.apps_registered;
  apps_departed += other.apps_departed;
  lock_notices += other.lock_notices;
  lock_leases_expired += other.lock_leases_expired;
  lock_waiters_expired += other.lock_waiters_expired;
  lock_holders_reaped += other.lock_holders_reaped;
  lock_waiters_reaped += other.lock_waiters_reaped;
  forget_locks_retries += other.forget_locks_retries;
  forget_locks_abandoned += other.forget_locks_abandoned;
  monitoring_reports += other.monitoring_reports;
  monitoring_failures += other.monitoring_failures;
}

ServerStats DiscoverServer::stats_sum() const {
  ServerStats out = stats_;
  for (const auto& core : cores_) out.add(core->stats_);
  return out;
}

void DiscoverServer::configure_shard(std::uint32_t index, std::uint32_t bits,
                                     DiscoverServer* group) {
  group_ = group;
  shard_index_ = index;
  shard_bits_ = bits;
  group_shards_ = group->config_.shard_count;
}

void DiscoverServer::route_message(const net::Message& msg) {
  std::uint32_t shard = 0;
  switch (msg.channel) {
    case net::Channel::http:
    case net::Channel::main_channel:
    case net::Channel::response:
    case net::Channel::command:
      // Client and application traffic follows the source node's affinity
      // hash; the core that accepted an app's registration owns all of its
      // channel traffic (and minted its app id accordingly).
      shard = shard_of_node(msg.src.value(), group_shards_);
      break;
    case net::Channel::giop: {
      // Every core runs its own ORB, and every id an ORB mints (servant
      // keys and request ids) carries its core index in the low shard
      // bits.  Peeking the frame header is therefore enough to route:
      // requests go to the core that activated the target servant, replies
      // to the core that issued the call.  Ids minted by OTHER nodes never
      // appear in these positions — an inbound request's servant key is
      // ours, an inbound reply's request id is ours.  The transports hand
      // dispatch complete frames, so a need_more verdict here means a
      // truncated (hence malformed) frame; both it and invalid fall back
      // to core 0, whose ORB logs and drops them.
      orb::GiopHeader h;
      const orb::GiopPeek verdict = orb::peek_giop_header(
          msg.payload.bytes().data(), msg.payload.size(), h);
      if (verdict == orb::GiopPeek::ok) {
        const std::uint64_t id = h.is_request ? h.servant_key : h.request_id;
        shard = static_cast<std::uint32_t>(id & ((1u << shard_bits_) - 1u)) %
                group_shards_;
      }
      break;
    }
    case net::Channel::control:
      // Control framing stays on core 0 (the federation coordinator); it
      // fans membership transitions out to the owning cores explicitly.
      shard = 0;
      break;
  }
  if (routed_ != nullptr) routed_->inc(shard);
  DiscoverServer* core = &core_at(shard);
  pool_->post(shard, [core, msg] { core->dispatch_message(msg); });
}

void DiscoverServer::post_shard(std::uint32_t idx, std::function<void()> fn) {
  if (!sharded() ||
      (net::ShardPool::current_shard() == idx &&
       net::ShardPool::current_shard() != net::ShardPool::kNotAShard)) {
    fn();
    return;
  }
  group_->pool_->post(idx, std::move(fn));
}

net::TimerId DiscoverServer::schedule_self(util::Duration delay,
                                           std::function<void()> fn) {
  if (!sharded()) return network_.schedule(self_, delay, std::move(fn));
  // The network timer fires on the node's home worker; hop onto this
  // core's shard queue so the callback touches core state safely.
  DiscoverServer* group = group_;
  const std::uint32_t idx = shard_index_;
  return network_.schedule(
      self_, delay, [group, idx, fn = std::move(fn)]() mutable {
        group->pool_->post(idx, std::move(fn));
      });
}

void DiscoverServer::gather_across_cores(
    std::function<void(DiscoverServer&)> visit, std::function<void()> done) {
  auto job = std::make_shared<GatherJob>();
  job->visit = std::move(visit);
  job->done = std::move(done);
  job->origin = shard_index_;
  group_->gather_step(job, 0);
}

void DiscoverServer::gather_step(const std::shared_ptr<GatherJob>& job,
                                 std::uint32_t idx) {
  pool_->post(idx, [this, job, idx] {
    job->visit(core_at(idx));
    if (idx + 1 < group_shards_) {
      gather_step(job, idx + 1);
    } else {
      pool_->post(job->origin, [job] { job->done(); });
    }
  });
}

DiscoverServer::ShardSelectGrant DiscoverServer::grant_select_on_owner(
    const proto::AppId& app, const std::string& user,
    std::uint32_t client_shard, bool already_selected) {
  ShardSelectGrant grant;
  AppEntry* entry = find_app(app);
  if (entry == nullptr || !entry->local) return grant;
  grant.found = true;
  grant.name = entry->name;
  // Same check order as the unsharded select path: admission first (new
  // subscribers only), then the application ACL.
  if (config_.max_sessions_per_app != 0 && !already_selected &&
      admission_watchers(app) >= config_.max_sessions_per_app) {
    grant.admission_rejected = true;
    return grant;
  }
  grant.privilege = entry->acl.privilege_of(user);
  if (grant.privilege == security::Privilege::none) return grant;
  if (!already_selected) ++entry->watcher_shards[client_shard];
  grant.params = entry->params;
  grant.history_seq = entry->event_seq;
  return grant;
}

void DiscoverServer::select_on_owner_async(
    const proto::AppId& app, const std::string& user,
    std::uint32_t client_shard, bool already_selected,
    std::function<void(ShardSelectGrant)> done) {
  // Runs on the owning core; the grant is posted back to the client core.
  auto reply = [this, client_shard,
                done = std::move(done)](ShardSelectGrant g) {
    post_shard(client_shard, [done, g] { done(g); });
  };
  {
    ShardSelectGrant grant =
        grant_select_on_owner(app, user, client_shard, already_selected);
    if (grant.found) {
      reply(std::move(grant));
      return;
    }
  }
  // Not one of this core's local apps — maybe a remote app it owns (§5j):
  // resolve, authenticate at the host, then subscribe the host's push
  // stream to this core exactly as the unsharded remote select does.
  with_remote_app(app, [this, app, user, client_shard, already_selected,
                        reply](AppEntry* entry) {
    if (entry == nullptr) {
      reply(ShardSelectGrant{});
      return;
    }
    if (entry->local) {
      // Raced with a local registration: grant as usual.
      reply(grant_select_on_owner(app, user, client_shard, already_selected));
      return;
    }
    ShardSelectGrant grant;
    grant.found = true;
    grant.name = entry->name;
    if (config_.max_sessions_per_app != 0 && !already_selected &&
        admission_watchers(app) >= config_.max_sessions_per_app) {
      grant.admission_rejected = true;
      reply(std::move(grant));
      return;
    }
    wire::Encoder args;
    args.str(user);
    invoke_peer(
        entry->corba_proxy.node, entry->corba_proxy, "get_interface",
        std::move(args),
        [this, app, user, client_shard, already_selected,
         reply](util::Result<util::Bytes> r) {
          ShardSelectGrant g;
          AppEntry* entry2 = find_app(app);
          if (entry2 == nullptr) {
            reply(std::move(g));
            return;
          }
          g.found = true;
          g.name = entry2->name;
          if (!r.ok()) {
            // Privilege stays none: the client core answers 403 like the
            // unsharded remote path does on a failed get_interface.
            reply(std::move(g));
            return;
          }
          wire::Decoder d(r.value());
          g.privilege = static_cast<security::Privilege>(d.u8());
          const std::uint32_t n = d.u32();
          g.params.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) {
            g.params.push_back(proto::decode_param_spec(d));
          }
          g.history_seq = d.u64();
          if (g.privilege == security::Privilege::none) {
            reply(std::move(g));
            return;
          }
          // Authoritative admission re-check after the host round-trip.
          if (config_.max_sessions_per_app != 0 && !already_selected &&
              admission_watchers(app) >= config_.max_sessions_per_app) {
            g.admission_rejected = true;
            reply(std::move(g));
            return;
          }
          entry2->params = g.params;
          if (!entry2->remote_subscribed && entry2->remote_known_seq == 0) {
            entry2->remote_known_seq = g.history_seq;
          }
          if (!already_selected) ++entry2->watcher_shards[client_shard];
          subscribe_remote(*entry2);
          reply(std::move(g));
        },
        config_.orb_call_timeout);
  });
}

void DiscoverServer::release_shard_watcher(const proto::AppId& app,
                                           std::uint32_t client_shard) {
  AppEntry* entry = find_app(app);
  if (entry == nullptr) return;
  const auto it = entry->watcher_shards.find(client_shard);
  if (it == entry->watcher_shards.end()) return;
  if (--it->second == 0) entry->watcher_shards.erase(it);
  // A remote entry whose last watcher (any core) left no longer needs the
  // host-side subscription.
  if (!entry->local && entry->watcher_shards.empty() &&
      subscriber_count(app) == 0) {
    unsubscribe_remote(*entry);
  }
}

std::size_t DiscoverServer::admission_watchers(const proto::AppId& app) const {
  std::size_t n = subscriber_count(app);
  if (const AppEntry* entry = find_app(app)) {
    for (const auto& [_, count] : entry->watcher_shards) n += count;
  }
  return n;
}

void DiscoverServer::fan_out_to_watcher_shards(AppEntry& entry,
                                               const proto::ClientEvent& ev) {
  const auto shared = std::make_shared<const proto::ClientEvent>(ev);
  const proto::AppId app = entry.id;
  for (const auto& [shard, count] : entry.watcher_shards) {
    if (count == 0 || shard == shard_index_) continue;
    DiscoverServer* core = &group_->core_at(shard);
    group_->pool_->post(shard,
                        [core, app, shared] { core->deliver_local(app, *shared); });
  }
}

void DiscoverServer::drain_shards() {
  if (!pool_) return;
  if (!pool_->wait_idle(util::seconds(5))) {
    DISCOVER_LOG(warn, "server")
        << describe() << ": shard queues still busy after drain timeout";
  }
  pool_->stop();
}

}  // namespace discover::core
