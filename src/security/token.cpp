#include "security/token.h"

#include <cstdio>
#include <string>

namespace discover::security {

namespace {

/// Appends `field` to the MAC preimage as "<length>:<bytes>".  The explicit
/// length prefix makes field boundaries unambiguous: no delimiter character
/// a hostile username could inject, and no fixed-size buffer to truncate
/// long values into colliding preimages.
void append_field(std::string& out, std::string_view field) {
  out += std::to_string(field.size());
  out += ':';
  out += field;
}

void append_field(std::string& out, long long value) {
  append_field(out, std::to_string(value));
}

}  // namespace

std::uint64_t digest64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t keyed_digest64(std::uint64_t key, std::string_view data) {
  char keybuf[17];
  std::snprintf(keybuf, sizeof(keybuf), "%016llx",
                static_cast<unsigned long long>(key));
  std::uint64_t h = digest64(keybuf);
  h ^= digest64(data);
  h *= 0x100000001b3ULL;
  h ^= digest64(keybuf) >> 7;
  return h;
}

std::uint64_t TokenAuthority::mac_of(const SessionToken& t) const {
  std::string preimage;
  preimage.reserve(t.user.size() + 64);
  append_field(preimage, t.user);
  append_field(preimage, static_cast<long long>(t.issuer));
  append_field(preimage, static_cast<long long>(t.issued_at));
  append_field(preimage, static_cast<long long>(t.expires_at));
  return keyed_digest64(secret_, preimage);
}

SessionToken TokenAuthority::issue(const std::string& user,
                                   util::TimePoint now,
                                   util::Duration ttl) const {
  SessionToken t;
  t.user = user;
  t.issuer = issuer_;
  t.issued_at = now;
  t.expires_at = now + ttl;
  t.mac = mac_of(t);
  return t;
}

util::Status TokenAuthority::verify(const SessionToken& token,
                                    util::TimePoint now) const {
  if (token.issuer != issuer_) {
    return {util::Errc::unauthenticated, "token issued by another server"};
  }
  if (token.mac != mac_of(token)) {
    return {util::Errc::unauthenticated, "token MAC mismatch"};
  }
  if (now >= token.expires_at) {
    return {util::Errc::unauthenticated, "token expired"};
  }
  return {};
}

}  // namespace discover::security
