// Per-application access control lists.
//
// Paper §6.3: "when an application or a service registers with a server, it
// supplies the server with this information in the form of a list of
// authorized user-IDs and their privileges".  User identities therefore
// belong to applications, not servers, and a user is known to a server iff
// some application registered there lists them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "security/privilege.h"

namespace discover::security {

struct AclEntry {
  std::string user;
  Privilege privilege = Privilege::none;
  /// Digest of the user's password as supplied by the application.  Empty
  /// means "any password" (matching the prototype's pre-shared-key style).
  std::uint64_t password_digest = 0;

  friend bool operator==(const AclEntry&, const AclEntry&) = default;
};

class AccessControlList {
 public:
  AccessControlList() = default;
  explicit AccessControlList(std::vector<AclEntry> entries);

  void grant(const std::string& user, Privilege p,
             std::uint64_t password_digest = 0);
  void revoke(const std::string& user);

  [[nodiscard]] Privilege privilege_of(const std::string& user) const;
  [[nodiscard]] bool knows(const std::string& user) const;
  /// Checks a password digest against the entry; entries with digest 0
  /// accept anything.
  [[nodiscard]] bool check_password(const std::string& user,
                                    std::uint64_t digest) const;

  [[nodiscard]] std::vector<AclEntry> entries() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, AclEntry> entries_;
};

}  // namespace discover::security
