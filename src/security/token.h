// Session tokens with a keyed-digest MAC.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the original system rode on SSL and
// servlet session ids.  We reproduce the *protocol structure* — a server
// issues an expiring token at level-1 authentication; every later request
// carries it; peer servers can verify tokens they issued themselves — using
// a 64-bit keyed FNV digest.  This is NOT cryptographically strong and is
// clearly labelled as a stand-in.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"
#include "util/result.h"

namespace discover::security {

/// FNV-1a 64-bit digest; used for password digests and token MACs.
std::uint64_t digest64(std::string_view data);
/// Keyed variant: digest64(key || data || key).
std::uint64_t keyed_digest64(std::uint64_t key, std::string_view data);

struct SessionToken {
  std::string user;
  std::uint32_t issuer = 0;  // NodeId value of the issuing server
  util::TimePoint issued_at = 0;
  util::TimePoint expires_at = 0;
  std::uint64_t mac = 0;

  friend bool operator==(const SessionToken&, const SessionToken&) = default;
};

/// Issues and verifies tokens for one server.  Each server has its own
/// secret; tokens are only verifiable by their issuer, so access to a remote
/// server always goes through an explicit cross-server authentication step
/// (paper §5.2.2), never by replaying a local token remotely.
class TokenAuthority {
 public:
  TokenAuthority(std::uint32_t issuer, std::uint64_t secret)
      : issuer_(issuer), secret_(secret) {}

  [[nodiscard]] SessionToken issue(const std::string& user,
                                   util::TimePoint now,
                                   util::Duration ttl) const;

  /// Checks issuer, expiry and MAC.
  [[nodiscard]] util::Status verify(const SessionToken& token,
                                    util::TimePoint now) const;

 private:
  [[nodiscard]] std::uint64_t mac_of(const SessionToken& t) const;

  std::uint32_t issuer_;
  std::uint64_t secret_;
};

}  // namespace discover::security
