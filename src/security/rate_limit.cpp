#include "security/rate_limit.h"

#include <algorithm>

namespace discover::security {

void TokenBucket::refill(util::TimePoint now) {
  if (now <= last_) return;
  const double elapsed_sec =
      static_cast<double>(now - last_) / static_cast<double>(util::kSecond);
  tokens_ = std::min(burst_, tokens_ + rate_ * elapsed_sec);
  last_ = now;
}

bool TokenBucket::try_consume(util::TimePoint now, double cost) {
  if (rate_ <= 0) return true;  // unlimited
  refill(now);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::available(util::TimePoint now) const {
  if (rate_ <= 0) return burst_;
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

bool RateLimiter::admit(util::TimePoint now, std::uint64_t bytes) {
  // Check both buckets before consuming either so a rejection leaves the
  // limiter state unchanged.
  const bool req_ok = policy_.max_requests_per_sec <= 0 ||
                      requests_.available(now) >= 1.0;
  const bool byte_ok = policy_.max_bytes_per_sec <= 0 ||
                       bytes_.available(now) >= static_cast<double>(bytes);
  if (!req_ok || !byte_ok) {
    ++rejected_;
    return false;
  }
  requests_.try_consume(now, 1.0);
  bytes_.try_consume(now, static_cast<double>(bytes));
  return true;
}

}  // namespace discover::security
