#include "security/acl.h"

namespace discover::security {

const char* privilege_name(Privilege p) {
  switch (p) {
    case Privilege::none: return "none";
    case Privilege::read_only: return "read_only";
    case Privilege::read_write: return "read_write";
    case Privilege::steer: return "steer";
  }
  return "?";
}

AccessControlList::AccessControlList(std::vector<AclEntry> entries) {
  for (auto& e : entries) entries_.emplace(e.user, std::move(e));
}

void AccessControlList::grant(const std::string& user, Privilege p,
                              std::uint64_t password_digest) {
  entries_[user] = AclEntry{user, p, password_digest};
}

void AccessControlList::revoke(const std::string& user) {
  entries_.erase(user);
}

Privilege AccessControlList::privilege_of(const std::string& user) const {
  const auto it = entries_.find(user);
  return it != entries_.end() ? it->second.privilege : Privilege::none;
}

bool AccessControlList::knows(const std::string& user) const {
  return entries_.count(user) != 0;
}

bool AccessControlList::check_password(const std::string& user,
                                       std::uint64_t digest) const {
  const auto it = entries_.find(user);
  if (it == entries_.end()) return false;
  return it->second.password_digest == 0 ||
         it->second.password_digest == digest;
}

std::vector<AclEntry> AccessControlList::entries() const {
  std::vector<AclEntry> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) out.push_back(e);
  return out;
}

}  // namespace discover::security
