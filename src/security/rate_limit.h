// Token-bucket rate limiting for per-peer resource-usage policies.
//
// Paper §6.3 ("Resource utilization"): access policies per server expressed
// as "number of requests per second, or the data bytes being transferred to
// each server per second".  AccessPolicy carries both limits; RateLimiter
// enforces them with two token buckets.
#pragma once

#include <cstdint>

#include "util/clock.h"

namespace discover::security {

struct AccessPolicy {
  double max_requests_per_sec = 0;  // 0 => unlimited
  double max_bytes_per_sec = 0;     // 0 => unlimited
};

class TokenBucket {
 public:
  /// rate per second; burst = bucket capacity.  rate <= 0 disables limiting.
  TokenBucket(double rate, double burst) : rate_(rate), tokens_(burst),
                                           burst_(burst) {}

  /// Tries to take `cost` tokens at time `now`; returns false if the bucket
  /// lacks them (request should be rejected / deferred).
  bool try_consume(util::TimePoint now, double cost);

  [[nodiscard]] double available(util::TimePoint now) const;

 private:
  void refill(util::TimePoint now);

  double rate_;
  double tokens_;
  double burst_;
  util::TimePoint last_ = 0;
};

/// Combined request+byte limiter for one peer (server or client).
class RateLimiter {
 public:
  explicit RateLimiter(AccessPolicy policy)
      : policy_(policy),
        requests_(policy.max_requests_per_sec,
                  policy.max_requests_per_sec > 0
                      ? policy.max_requests_per_sec
                      : 1.0),
        bytes_(policy.max_bytes_per_sec,
               policy.max_bytes_per_sec > 0 ? policy.max_bytes_per_sec : 1.0) {
  }

  /// Admits one request of `bytes` payload at `now`.
  bool admit(util::TimePoint now, std::uint64_t bytes);

  [[nodiscard]] const AccessPolicy& policy() const { return policy_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  AccessPolicy policy_;
  TokenBucket requests_;
  TokenBucket bytes_;
  std::uint64_t rejected_ = 0;
};

}  // namespace discover::security
