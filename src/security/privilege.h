// Access privileges (paper §5.2.2: "read-only, read-write" plus the steering
// capability implied by lock acquisition).  Ordered: each level includes all
// weaker ones.
#pragma once

#include <cstdint>

namespace discover::security {

enum class Privilege : std::uint8_t {
  none = 0,       // not on the ACL at all
  read_only = 1,  // may view status/updates
  read_write = 2, // may change parameters (requires the steering lock)
  steer = 3,      // read_write + may pause/resume/checkpoint the app
};

const char* privilege_name(Privilege p);

/// True when `have` grants at least `need`.
constexpr bool allows(Privilege have, Privilege need) {
  return static_cast<std::uint8_t>(have) >= static_cast<std::uint8_t>(need);
}

}  // namespace discover::security
