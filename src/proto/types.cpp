#include "proto/types.h"

#include <cstdio>
#include <cstdlib>

namespace discover::proto {

std::string AppId::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u:%u", host, local);
  return buf;
}

AppId AppId::parse(const std::string& s) {
  AppId id;
  const auto colon = s.find(':');
  if (colon == std::string::npos) return id;
  id.host = static_cast<std::uint32_t>(
      std::strtoul(s.substr(0, colon).c_str(), nullptr, 10));
  id.local = static_cast<std::uint32_t>(
      std::strtoul(s.substr(colon + 1).c_str(), nullptr, 10));
  return id;
}

const char* phase_name(AppPhase p) {
  switch (p) {
    case AppPhase::computing: return "computing";
    case AppPhase::interacting: return "interacting";
    case AppPhase::finished: return "finished";
  }
  return "?";
}

std::string param_value_to_string(const ParamValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(x);
        } else if constexpr (std::is_same_v<T, double>) {
          char buf[48];
          std::snprintf(buf, sizeof(buf), "%g", x);
          return buf;
        } else {
          return x;
        }
      },
      v);
}

const char* command_name(CommandKind k) {
  switch (k) {
    case CommandKind::get_param: return "get_param";
    case CommandKind::set_param: return "set_param";
    case CommandKind::pause_app: return "pause";
    case CommandKind::resume_app: return "resume";
    case CommandKind::stop_app: return "stop";
    case CommandKind::checkpoint: return "checkpoint";
    case CommandKind::query_status: return "query_status";
    case CommandKind::acquire_lock: return "acquire_lock";
    case CommandKind::release_lock: return "release_lock";
  }
  return "?";
}

security::Privilege required_privilege(CommandKind k) {
  switch (k) {
    case CommandKind::get_param:
    case CommandKind::query_status:
      return security::Privilege::read_only;
    case CommandKind::set_param:
    case CommandKind::acquire_lock:
    case CommandKind::release_lock:
      return security::Privilege::read_write;
    case CommandKind::pause_app:
    case CommandKind::resume_app:
    case CommandKind::stop_app:
    case CommandKind::checkpoint:
      return security::Privilege::steer;
  }
  return security::Privilege::steer;
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::update: return "update";
    case EventKind::response: return "response";
    case EventKind::error: return "error";
    case EventKind::chat: return "chat";
    case EventKind::whiteboard: return "whiteboard";
    case EventKind::lock_notice: return "lock_notice";
    case EventKind::system: return "system";
    case EventKind::resync: return "resync";
  }
  return "?";
}

std::size_t approx_footprint(const ClientEvent& ev) {
  std::size_t bytes = sizeof(ClientEvent);
  bytes += ev.user.size() + ev.text.size() + ev.param.size() +
           ev.subgroup.size();
  if (const auto* s = std::get_if<std::string>(&ev.value)) bytes += s->size();
  // Each metrics entry: key characters plus map-node overhead (~3 pointers,
  // a double and the key object).
  for (const auto& [key, value] : ev.metrics) {
    (void)value;
    bytes += key.size() + 4 * sizeof(void*) + sizeof(double);
  }
  return bytes;
}

// --- wire helpers ----------------------------------------------------------

void encode(wire::Encoder& e, const AppId& v) {
  e.u32(v.host);
  e.u32(v.local);
}

AppId decode_app_id(wire::Decoder& d) {
  AppId id;
  id.host = d.u32();
  id.local = d.u32();
  return id;
}

void encode(wire::Encoder& e, const ParamValue& v) {
  e.u8(static_cast<std::uint8_t>(v.index()));
  std::visit(
      [&e](const auto& x) {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, bool>) {
          e.boolean(x);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          e.i64(x);
        } else if constexpr (std::is_same_v<T, double>) {
          e.f64(x);
        } else {
          e.str(x);
        }
      },
      v);
}

ParamValue decode_param_value(wire::Decoder& d) {
  switch (d.u8()) {
    case 0: return ParamValue{d.boolean()};
    case 1: return ParamValue{d.i64()};
    case 2: return ParamValue{d.f64()};
    case 3: return ParamValue{d.str()};
    default: throw wire::DecodeError("bad ParamValue tag");
  }
}

void encode(wire::Encoder& e, const ParamSpec& v) {
  e.str(v.name);
  encode(e, v.value);
  e.f64(v.min_value);
  e.f64(v.max_value);
  e.boolean(v.steerable);
  e.str(v.units);
}

ParamSpec decode_param_spec(wire::Decoder& d) {
  ParamSpec p;
  p.name = d.str();
  p.value = decode_param_value(d);
  p.min_value = d.f64();
  p.max_value = d.f64();
  p.steerable = d.boolean();
  p.units = d.str();
  return p;
}

void encode(wire::Encoder& e, const AppInfo& v) {
  encode(e, v.id);
  e.str(v.name);
  e.str(v.description);
  e.u8(static_cast<std::uint8_t>(v.privilege));
  e.u8(static_cast<std::uint8_t>(v.phase));
  e.u64(v.update_seq);
  e.str(v.lock_holder);
  e.u32(v.lock_queue);
}

AppInfo decode_app_info(wire::Decoder& d) {
  AppInfo a;
  a.id = decode_app_id(d);
  a.name = d.str();
  a.description = d.str();
  a.privilege = static_cast<security::Privilege>(d.u8());
  a.phase = static_cast<AppPhase>(d.u8());
  a.update_seq = d.u64();
  a.lock_holder = d.str();
  a.lock_queue = d.u32();
  return a;
}

void encode_metrics(wire::Encoder& e, const std::map<std::string, double>& m) {
  e.map(m, [](wire::Encoder& enc, const std::string& k) { enc.str(k); },
        [](wire::Encoder& enc, double v) { enc.f64(v); });
}

std::map<std::string, double> decode_metrics(wire::Decoder& d) {
  return d.map<std::string, double>(
      [](wire::Decoder& dec) { return dec.str(); },
      [](wire::Decoder& dec) { return dec.f64(); });
}

void encode(wire::Encoder& e, const ClientEvent& v) {
  e.u8(static_cast<std::uint8_t>(v.kind));
  e.u64(v.seq);
  encode(e, v.app);
  e.i64(v.at);
  e.str(v.user);
  e.str(v.text);
  e.u64(v.request_id);
  e.str(v.param);
  encode(e, v.value);
  encode_metrics(e, v.metrics);
  e.u64(v.iteration);
  e.str(v.subgroup);
  e.boolean(v.shared);
}

ClientEvent decode_client_event(wire::Decoder& d) {
  ClientEvent ev;
  ev.kind = static_cast<EventKind>(d.u8());
  ev.seq = d.u64();
  ev.app = decode_app_id(d);
  ev.at = d.i64();
  ev.user = d.str();
  ev.text = d.str();
  ev.request_id = d.u64();
  ev.param = d.str();
  ev.value = decode_param_value(d);
  ev.metrics = decode_metrics(d);
  ev.iteration = d.u64();
  ev.subgroup = d.str();
  ev.shared = d.boolean();
  return ev;
}

void encode(wire::Encoder& e, const security::AclEntry& v) {
  e.str(v.user);
  e.u8(static_cast<std::uint8_t>(v.privilege));
  e.u64(v.password_digest);
}

security::AclEntry decode_acl_entry(wire::Decoder& d) {
  security::AclEntry a;
  a.user = d.str();
  a.privilege = static_cast<security::Privilege>(d.u8());
  a.password_digest = d.u64();
  return a;
}

void encode(wire::Encoder& e, const security::SessionToken& v) {
  e.str(v.user);
  e.u32(v.issuer);
  e.i64(v.issued_at);
  e.i64(v.expires_at);
  e.u64(v.mac);
}

security::SessionToken decode_token(wire::Decoder& d) {
  security::SessionToken t;
  t.user = d.str();
  t.issuer = d.u32();
  t.issued_at = d.i64();
  t.expires_at = d.i64();
  t.mac = d.u64();
  return t;
}

}  // namespace discover::proto
