// Framed messages on the Main/Command/Response/Control channels, plus the
// HTTP request/response bodies exchanged with portal clients.
//
// Framed messages carry a one-byte type tag followed by a CDR body — the
// C++ analogue of the prototype's serialized Java objects, where receivers
// dispatched on the object's class name via reflection (paper §4.1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "proto/types.h"
#include "util/result.h"

namespace discover::proto {

// ---------------------------------------------------------------------------
// Application <-> server (Main / Command / Response channels)
// ---------------------------------------------------------------------------

/// MainChannel: first message an application sends after connecting.
/// Carries the pre-assigned identifier used to authenticate the application
/// (paper §4.1) and the user ACL that seeds the server's access control
/// (paper §5.2.2).
struct AppRegister {
  std::string app_name;
  std::string description;
  std::uint64_t auth_key = 0;  // pre-assigned application identifier digest
  std::vector<ParamSpec> params;
  std::vector<security::AclEntry> acl;
  util::Duration update_period = 0;  // advertised update cadence
};

/// MainChannel: server's reply; assigns the globally unique AppId.
struct AppRegisterAck {
  bool accepted = false;
  std::string message;
  AppId app_id;
};

/// MainChannel: periodic application state update.
struct AppUpdate {
  AppId app_id;
  std::uint64_t iteration = 0;
  double sim_time = 0;
  AppPhase phase = AppPhase::computing;
  std::map<std::string, double> metrics;
};

/// MainChannel: phase transition notice; the daemon servlet flushes buffered
/// commands when the phase becomes `interacting`.
struct AppPhaseNotice {
  AppId app_id;
  AppPhase phase = AppPhase::computing;
};

/// MainChannel: graceful disconnect.
struct AppDeregister {
  AppId app_id;
  std::string reason;
};

/// CommandChannel (server -> application): one forwarded client command.
struct AppCommand {
  AppId app_id;
  std::uint64_t request_id = 0;
  std::string user;
  CommandKind kind = CommandKind::query_status;
  std::string param;
  ParamValue value;
};

/// ResponseChannel (application -> server): reply to one AppCommand.
struct AppResponse {
  AppId app_id;
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string message;
  std::string param;
  ParamValue value;
  std::vector<ParamSpec> params;  // for query_status
};

/// ResponseChannel (application -> server): asynchronous failure.
struct AppError {
  AppId app_id;
  std::uint64_t request_id = 0;  // 0 when not tied to a request
  std::string message;
};

// ---------------------------------------------------------------------------
// Server <-> server (Control channel, paper §5.1: "forward error messages
// and system events ... a notification service similar to Salamander's")
// ---------------------------------------------------------------------------

enum class SystemEventKind : std::uint8_t {
  server_up = 0,
  server_down = 1,
  app_registered = 2,
  app_departed = 3,
  error = 4,
};

struct SystemEvent {
  SystemEventKind kind = SystemEventKind::error;
  std::uint32_t origin_server = 0;
  AppId app;  // when app-related
  std::string text;
};

// ---------------------------------------------------------------------------
// Server <-> server batched event propagation (DiscoverCorbaServer
// "forward_events", see DESIGN.md "Peer outbox & directory deltas").  One
// call drains a peer outbox: a sequence of frames, each a run of events for
// one application.
// ---------------------------------------------------------------------------

enum class EventFrameKind : std::uint8_t {
  /// Host -> subscriber push.  Events carry host-assigned seqs and the
  /// frame carries their [seq_first, seq_last] range, so the receiver's
  /// remote_known_seq dedup makes retried or duplicated batches harmless
  /// and whole stale frames can be skipped without touching the events.
  push = 0,
  /// A client collaboration post relayed toward the application's host,
  /// which stamps/archives/redistributes (§5.2.3).  Events carry no seq
  /// yet; seq_first/seq_last are zero.
  collab_relay = 1,
};

struct EventFrame {
  EventFrameKind kind = EventFrameKind::push;
  AppId app;
  std::uint64_t seq_first = 0;
  std::uint64_t seq_last = 0;
  std::vector<ClientEvent> events;
};

/// Struct-based reference encoding.  Each event is placed at an 8-byte
/// boundary, which makes the encoding byte-identical to the outbox fast
/// path that splices pre-encoded standalone events (wire::Encoder::splice);
/// peer_batch_test pins the two together.
void encode_event_frames(wire::Encoder& e, const std::vector<EventFrame>& v);
std::vector<EventFrame> decode_event_frames(wire::Decoder& d);

// ---------------------------------------------------------------------------
// Server <-> server versioned directory (DiscoverCorbaServer
// "list_apps_since").  The host bumps `version` on every local membership
// or phase change and keeps a bounded change log; a caller presenting its
// cached (epoch, version) gets the delta, or a full snapshot when it is on
// another epoch or behind the log tail.
// ---------------------------------------------------------------------------

struct DirectoryUpdate {
  std::uint64_t epoch = 0;
  std::uint64_t version = 0;
  bool full = false;
  std::vector<AppId> removed;  // delta only; empty in a full snapshot
  std::vector<AppInfo> apps;   // delta: upserts; full: the whole directory
};

void encode(wire::Encoder& e, const DirectoryUpdate& v);
DirectoryUpdate decode_directory_update(wire::Decoder& d);

// ---------------------------------------------------------------------------
// Framed envelope
// ---------------------------------------------------------------------------

using FramedMessage =
    std::variant<AppRegister, AppRegisterAck, AppUpdate, AppPhaseNotice,
                 AppDeregister, AppCommand, AppResponse, AppError,
                 SystemEvent>;

util::Bytes encode_framed(const FramedMessage& msg);
util::Result<FramedMessage> decode_framed(const util::Bytes& data);

// ---------------------------------------------------------------------------
// Client <-> server HTTP bodies.  The servlet path selects the type, so the
// bodies are untagged CDR.  Paths live in core/portal_paths.h.
// ---------------------------------------------------------------------------

/// Typed admission-control rejection cause.  `none` means the request was
/// not refused by admission control (it may still have failed for other
/// reasons, e.g. bad credentials).
enum class AdmissionError : std::uint8_t {
  none = 0,
  server_sessions = 1,  // server-wide session cap reached
  app_sessions = 2,     // per-application subscriber cap reached
};
const char* admission_error_name(AdmissionError e);

/// POST /discover/master/login
struct LoginRequest {
  std::string user;
  std::uint64_t password_digest = 0;
};
struct LoginReply {
  bool ok = false;
  std::string message;
  security::SessionToken token;
  std::vector<AppInfo> applications;  // across the whole server network
  // Admission control (flash-crowd backpressure): when the server-wide
  // session cap rejects the login, `admission` names the cause and
  // `retry_after` suggests how long the client should back off.
  AdmissionError admission = AdmissionError::none;
  util::Duration retry_after = 0;
};

/// POST /discover/master/select — level-2 authentication for one app.
struct SelectAppRequest {
  security::SessionToken token;
  AppId app_id;
};
struct SelectAppReply {
  bool ok = false;
  std::string message;
  security::Privilege privilege = security::Privilege::none;
  std::vector<ParamSpec> interface_spec;  // customized steering interface
  std::uint64_t history_seq = 0;          // latest event seq, for catch-up
  // Admission control: per-app subscriber cap, same contract as LoginReply.
  AdmissionError admission = AdmissionError::none;
  util::Duration retry_after = 0;
};

/// POST /discover/command
struct CommandRequest {
  security::SessionToken token;
  AppId app_id;
  std::uint64_t request_id = 0;
  CommandKind kind = CommandKind::query_status;
  std::string param;
  ParamValue value;
};
struct CommandAck {
  bool accepted = false;
  std::string message;
  std::uint64_t request_id = 0;
};

/// GET /discover/collab/poll — the poll-and-pull fetch (paper §6.2).
struct PollRequest {
  security::SessionToken token;
  AppId app_id;
  std::uint32_t max_events = 64;
};
struct PollReply {
  bool ok = false;
  std::string message;
  std::vector<ClientEvent> events;
  std::uint32_t backlog = 0;  // events still queued server-side
};

/// A refcounted, immutable ClientEvent.  The server's fan-out fast path
/// allocates each event once and shares the instance across every
/// subscriber FIFO it lands in; encode_poll_reply_shared serializes a batch
/// of them into the exact wire format of encode_body(PollReply).
using SharedClientEvent = std::shared_ptr<const ClientEvent>;

/// Wire-identical to encode_body(PollReply) but reads the events through
/// shared pointers, so poll replies are assembled without copying events out
/// of the per-subscriber FIFOs.
util::Bytes encode_poll_reply_shared(bool ok, const std::string& message,
                                     const std::vector<SharedClientEvent>& events,
                                     std::uint32_t backlog);

/// POST /discover/collab/chat and /whiteboard
struct CollabPost {
  security::SessionToken token;
  AppId app_id;
  EventKind kind = EventKind::chat;  // chat or whiteboard
  std::string text;
  ParamValue payload;
};
struct CollabAck {
  bool ok = false;
  std::string message;
};

/// POST /discover/collab/group — join/leave sub-group, toggle collaboration
/// mode (paper §4.1: clients can form sub-groups or disable broadcast).
enum class GroupOp : std::uint8_t {
  join_subgroup = 0,
  leave_subgroup = 1,
  enable_collab = 2,
  disable_collab = 3,
  /// Extension beyond the paper (motivated by its §6.2 discussion): the
  /// server pushes events to this client immediately instead of queueing
  /// them for poll-and-pull.  Used by the poll-vs-push ablation (bench A2).
  enable_push = 4,
  disable_push = 5,
};
struct GroupRequest {
  security::SessionToken token;
  AppId app_id;
  GroupOp op = GroupOp::join_subgroup;
  std::string subgroup;
};

/// GET /discover/archive — replay for latecomers (paper §5.2.5).
struct HistoryRequest {
  security::SessionToken token;
  AppId app_id;
  std::uint64_t from_seq = 0;
  std::uint32_t max_events = 256;
};
struct HistoryReply {
  bool ok = false;
  std::string message;
  std::vector<ClientEvent> events;
};

/// POST /discover/master/logout
struct LogoutRequest {
  security::SessionToken token;
};

// Encoders/decoders for each HTTP body.  Decoders throw wire::DecodeError.
util::Bytes encode_body(const LoginRequest&);
util::Bytes encode_body(const LoginReply&);
util::Bytes encode_body(const SelectAppRequest&);
util::Bytes encode_body(const SelectAppReply&);
util::Bytes encode_body(const CommandRequest&);
util::Bytes encode_body(const CommandAck&);
util::Bytes encode_body(const PollRequest&);
util::Bytes encode_body(const PollReply&);
util::Bytes encode_body(const CollabPost&);
util::Bytes encode_body(const CollabAck&);
util::Bytes encode_body(const GroupRequest&);
util::Bytes encode_body(const HistoryRequest&);
util::Bytes encode_body(const HistoryReply&);
util::Bytes encode_body(const LogoutRequest&);

LoginRequest decode_login_request(const util::Bytes&);
LoginReply decode_login_reply(const util::Bytes&);
SelectAppRequest decode_select_app_request(const util::Bytes&);
SelectAppReply decode_select_app_reply(const util::Bytes&);
CommandRequest decode_command_request(const util::Bytes&);
CommandAck decode_command_ack(const util::Bytes&);
PollRequest decode_poll_request(const util::Bytes&);
PollReply decode_poll_reply(const util::Bytes&);
CollabPost decode_collab_post(const util::Bytes&);
CollabAck decode_collab_ack(const util::Bytes&);
GroupRequest decode_group_request(const util::Bytes&);
HistoryRequest decode_history_request(const util::Bytes&);
HistoryReply decode_history_reply(const util::Bytes&);
LogoutRequest decode_logout_request(const util::Bytes&);

}  // namespace discover::proto
