// Shared middleware data types crossing the wire.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "net/address.h"
#include "security/acl.h"
#include "security/token.h"
#include "util/clock.h"
#include "wire/cdr.h"

namespace discover::proto {

/// Globally unique application identifier (paper §5.2.1): "a combination of
/// the server's IP address and a local count of the applications on each
/// server" — so any server can extract the host server from the id and tell
/// local from remote applications.
struct AppId {
  std::uint32_t host = 0;   // NodeId value of the host server
  std::uint32_t local = 0;  // per-server registration counter

  [[nodiscard]] net::NodeId host_server() const { return net::NodeId{host}; }
  [[nodiscard]] bool valid() const { return host != 0 || local != 0; }
  [[nodiscard]] std::string to_string() const;
  static AppId parse(const std::string& s);

  friend bool operator==(AppId, AppId) = default;
  friend bool operator<(AppId a, AppId b) {
    return a.host != b.host ? a.host < b.host : a.local < b.local;
  }
};

/// Application execution phase (paper §4.1: the daemon servlet "buffers all
/// client requests and sends them to the application when the application is
/// in the `interaction' phase").
enum class AppPhase : std::uint8_t { computing = 0, interacting = 1,
                                     finished = 2 };
const char* phase_name(AppPhase p);

using ParamValue = std::variant<bool, std::int64_t, double, std::string>;
std::string param_value_to_string(const ParamValue& v);

/// One steerable/observable parameter exposed by an application's control
/// network (sensor/actuator pair).
struct ParamSpec {
  std::string name;
  ParamValue value;
  double min_value = 0;
  double max_value = 0;
  bool steerable = false;
  std::string units;

  friend bool operator==(const ParamSpec&, const ParamSpec&) = default;
};

/// Directory entry describing an active application, as returned by
/// level-1 queries (local or via DiscoverCorbaServer on peers).
struct AppInfo {
  AppId id;
  std::string name;
  std::string description;
  security::Privilege privilege = security::Privilege::none;  // of the asker
  AppPhase phase = AppPhase::computing;
  std::uint64_t update_seq = 0;
  // Steering-lock state at the host (§5.2.4): "user@server" of the current
  // driver (empty when the lock is free) and the number of queued waiters.
  std::string lock_holder;
  std::uint32_t lock_queue = 0;

  friend bool operator==(const AppInfo&, const AppInfo&) = default;
};

/// Steering/interaction command verbs.
enum class CommandKind : std::uint8_t {
  get_param = 0,
  set_param = 1,
  pause_app = 2,
  resume_app = 3,
  stop_app = 4,
  checkpoint = 5,
  query_status = 6,
  acquire_lock = 7,
  release_lock = 8,
};
const char* command_name(CommandKind k);
/// Minimum privilege required to issue the command.
security::Privilege required_privilege(CommandKind k);

/// Everything a portal client can receive from its server, both in poll
/// replies and in archived session logs.  The original clients dispatched on
/// the Java class name of the received object (paper §4.1); `kind` is the
/// C++ analogue of that type tag.
enum class EventKind : std::uint8_t {
  update = 0,      // periodic application state broadcast
  response = 1,    // reply to a specific client command
  error = 2,       // failed command / system problem
  chat = 3,        // collaboration chat line
  whiteboard = 4,  // collaboration whiteboard operation
  lock_notice = 5, // lock granted/denied/released notifications
  system = 6,      // membership changes, server events
  resync = 7,      // FIFO overflow marker: `value` holds the shed count
};
const char* event_kind_name(EventKind k);

struct ClientEvent {
  EventKind kind = EventKind::system;
  std::uint64_t seq = 0;  // per-application event sequence (host-assigned)
  AppId app;
  util::TimePoint at = 0;
  std::string user;          // originator, if any
  std::string text;          // chat text / error / system description
  std::uint64_t request_id = 0;  // response correlation, 0 if n/a
  std::string param;             // parameter touched by a response
  ParamValue value;              // response value / whiteboard payload
  std::map<std::string, double> metrics;  // update payload
  std::uint64_t iteration = 0;            // update payload
  std::string subgroup;  // collaboration sub-group scope ("" = whole group)
  /// False when the originator disabled collaboration: the event is then
  /// delivered only to sessions of the originating user (paper §4.1:
  /// requests/responses not broadcast to the group).
  bool shared = true;

  friend bool operator==(const ClientEvent&, const ClientEvent&) = default;
};

/// Approximate in-memory size of a queued event, used for byte-based FIFO
/// backlog accounting.  Deterministic (no allocator probing): struct size
/// plus owned string/metrics payloads.
std::size_t approx_footprint(const ClientEvent& ev);

// --- wire helpers ----------------------------------------------------------

void encode(wire::Encoder& e, const AppId& v);
AppId decode_app_id(wire::Decoder& d);

void encode(wire::Encoder& e, const ParamValue& v);
ParamValue decode_param_value(wire::Decoder& d);

void encode(wire::Encoder& e, const ParamSpec& v);
ParamSpec decode_param_spec(wire::Decoder& d);

void encode(wire::Encoder& e, const AppInfo& v);
AppInfo decode_app_info(wire::Decoder& d);

void encode(wire::Encoder& e, const ClientEvent& v);
ClientEvent decode_client_event(wire::Decoder& d);

void encode(wire::Encoder& e, const security::AclEntry& v);
security::AclEntry decode_acl_entry(wire::Decoder& d);

void encode(wire::Encoder& e, const security::SessionToken& v);
security::SessionToken decode_token(wire::Decoder& d);

void encode_metrics(wire::Encoder& e, const std::map<std::string, double>& m);
std::map<std::string, double> decode_metrics(wire::Decoder& d);

}  // namespace discover::proto
