#include "proto/messages.h"

namespace discover::proto {

namespace {

enum class Tag : std::uint8_t {
  app_register = 1,
  app_register_ack = 2,
  app_update = 3,
  app_phase = 4,
  app_deregister = 5,
  app_command = 6,
  app_response = 7,
  app_error = 8,
  system_event = 9,
};

void encode_param_specs(wire::Encoder& e, const std::vector<ParamSpec>& v) {
  e.sequence(v, [](wire::Encoder& enc, const ParamSpec& p) { encode(enc, p); });
}

std::vector<ParamSpec> decode_param_specs(wire::Decoder& d) {
  return d.sequence<ParamSpec>(
      [](wire::Decoder& dec) { return decode_param_spec(dec); });
}

void encode_msg(wire::Encoder& e, const AppRegister& m) {
  e.str(m.app_name);
  e.str(m.description);
  e.u64(m.auth_key);
  encode_param_specs(e, m.params);
  e.sequence(m.acl, [](wire::Encoder& enc, const security::AclEntry& a) {
    encode(enc, a);
  });
  e.i64(m.update_period);
}

AppRegister decode_app_register(wire::Decoder& d) {
  AppRegister m;
  m.app_name = d.str();
  m.description = d.str();
  m.auth_key = d.u64();
  m.params = decode_param_specs(d);
  m.acl = d.sequence<security::AclEntry>(
      [](wire::Decoder& dec) { return decode_acl_entry(dec); });
  m.update_period = d.i64();
  return m;
}

void encode_msg(wire::Encoder& e, const AppRegisterAck& m) {
  e.boolean(m.accepted);
  e.str(m.message);
  encode(e, m.app_id);
}

AppRegisterAck decode_app_register_ack(wire::Decoder& d) {
  AppRegisterAck m;
  m.accepted = d.boolean();
  m.message = d.str();
  m.app_id = decode_app_id(d);
  return m;
}

void encode_msg(wire::Encoder& e, const AppUpdate& m) {
  encode(e, m.app_id);
  e.u64(m.iteration);
  e.f64(m.sim_time);
  e.u8(static_cast<std::uint8_t>(m.phase));
  encode_metrics(e, m.metrics);
}

AppUpdate decode_app_update(wire::Decoder& d) {
  AppUpdate m;
  m.app_id = decode_app_id(d);
  m.iteration = d.u64();
  m.sim_time = d.f64();
  m.phase = static_cast<AppPhase>(d.u8());
  m.metrics = decode_metrics(d);
  return m;
}

void encode_msg(wire::Encoder& e, const AppPhaseNotice& m) {
  encode(e, m.app_id);
  e.u8(static_cast<std::uint8_t>(m.phase));
}

AppPhaseNotice decode_app_phase(wire::Decoder& d) {
  AppPhaseNotice m;
  m.app_id = decode_app_id(d);
  m.phase = static_cast<AppPhase>(d.u8());
  return m;
}

void encode_msg(wire::Encoder& e, const AppDeregister& m) {
  encode(e, m.app_id);
  e.str(m.reason);
}

AppDeregister decode_app_deregister(wire::Decoder& d) {
  AppDeregister m;
  m.app_id = decode_app_id(d);
  m.reason = d.str();
  return m;
}

void encode_msg(wire::Encoder& e, const AppCommand& m) {
  encode(e, m.app_id);
  e.u64(m.request_id);
  e.str(m.user);
  e.u8(static_cast<std::uint8_t>(m.kind));
  e.str(m.param);
  encode(e, m.value);
}

AppCommand decode_app_command(wire::Decoder& d) {
  AppCommand m;
  m.app_id = decode_app_id(d);
  m.request_id = d.u64();
  m.user = d.str();
  m.kind = static_cast<CommandKind>(d.u8());
  m.param = d.str();
  m.value = decode_param_value(d);
  return m;
}

void encode_msg(wire::Encoder& e, const AppResponse& m) {
  encode(e, m.app_id);
  e.u64(m.request_id);
  e.boolean(m.ok);
  e.str(m.message);
  e.str(m.param);
  encode(e, m.value);
  encode_param_specs(e, m.params);
}

AppResponse decode_app_response(wire::Decoder& d) {
  AppResponse m;
  m.app_id = decode_app_id(d);
  m.request_id = d.u64();
  m.ok = d.boolean();
  m.message = d.str();
  m.param = d.str();
  m.value = decode_param_value(d);
  m.params = decode_param_specs(d);
  return m;
}

void encode_msg(wire::Encoder& e, const AppError& m) {
  encode(e, m.app_id);
  e.u64(m.request_id);
  e.str(m.message);
}

AppError decode_app_error(wire::Decoder& d) {
  AppError m;
  m.app_id = decode_app_id(d);
  m.request_id = d.u64();
  m.message = d.str();
  return m;
}

void encode_msg(wire::Encoder& e, const SystemEvent& m) {
  e.u8(static_cast<std::uint8_t>(m.kind));
  e.u32(m.origin_server);
  encode(e, m.app);
  e.str(m.text);
}

SystemEvent decode_system_event(wire::Decoder& d) {
  SystemEvent m;
  m.kind = static_cast<SystemEventKind>(d.u8());
  m.origin_server = d.u32();
  m.app = decode_app_id(d);
  m.text = d.str();
  return m;
}

}  // namespace

util::Bytes encode_framed(const FramedMessage& msg) {
  wire::Encoder e;
  e.reserve(160);  // covers the tag + a typical body without reallocation
  std::visit(
      [&e](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AppRegister>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_register));
        } else if constexpr (std::is_same_v<T, AppRegisterAck>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_register_ack));
        } else if constexpr (std::is_same_v<T, AppUpdate>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_update));
        } else if constexpr (std::is_same_v<T, AppPhaseNotice>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_phase));
        } else if constexpr (std::is_same_v<T, AppDeregister>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_deregister));
        } else if constexpr (std::is_same_v<T, AppCommand>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_command));
        } else if constexpr (std::is_same_v<T, AppResponse>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_response));
        } else if constexpr (std::is_same_v<T, AppError>) {
          e.u8(static_cast<std::uint8_t>(Tag::app_error));
        } else {
          e.u8(static_cast<std::uint8_t>(Tag::system_event));
        }
        encode_msg(e, m);
      },
      msg);
  return std::move(e).take();
}

util::Result<FramedMessage> decode_framed(const util::Bytes& data) {
  try {
    wire::Decoder d(data);
    const auto tag = static_cast<Tag>(d.u8());
    FramedMessage out;
    switch (tag) {
      case Tag::app_register: out = decode_app_register(d); break;
      case Tag::app_register_ack: out = decode_app_register_ack(d); break;
      case Tag::app_update: out = decode_app_update(d); break;
      case Tag::app_phase: out = decode_app_phase(d); break;
      case Tag::app_deregister: out = decode_app_deregister(d); break;
      case Tag::app_command: out = decode_app_command(d); break;
      case Tag::app_response: out = decode_app_response(d); break;
      case Tag::app_error: out = decode_app_error(d); break;
      case Tag::system_event: out = decode_system_event(d); break;
      default:
        return util::Error{util::Errc::protocol_error, "unknown frame tag"};
    }
    d.finish();
    return out;
  } catch (const wire::DecodeError& err) {
    return util::Error{util::Errc::protocol_error, err.what()};
  }
}

// --- forward_events batches --------------------------------------------------

void encode_event_frames(wire::Encoder& e, const std::vector<EventFrame>& v) {
  e.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& f : v) {
    e.u8(static_cast<std::uint8_t>(f.kind));
    encode(e, f.app);
    e.u64(f.seq_first);
    e.u64(f.seq_last);
    e.u32(static_cast<std::uint32_t>(f.events.size()));
    for (const auto& ev : f.events) {
      e.align_to(8);
      encode(e, ev);
    }
  }
}

std::vector<EventFrame> decode_event_frames(wire::Decoder& d) {
  const std::uint32_t n_frames = d.u32();
  if (d.remaining() < n_frames) {
    throw wire::DecodeError("truncated frame sequence");
  }
  std::vector<EventFrame> out;
  out.reserve(std::min<std::size_t>(n_frames, wire::kMaxSequencePrereserve));
  for (std::uint32_t i = 0; i < n_frames; ++i) {
    EventFrame f;
    f.kind = static_cast<EventFrameKind>(d.u8());
    f.app = decode_app_id(d);
    f.seq_first = d.u64();
    f.seq_last = d.u64();
    const std::uint32_t n_events = d.u32();
    if (d.remaining() < n_events) {
      throw wire::DecodeError("truncated event sequence");
    }
    f.events.reserve(
        std::min<std::size_t>(n_events, wire::kMaxSequencePrereserve));
    for (std::uint32_t k = 0; k < n_events; ++k) {
      d.align_to(8);
      f.events.push_back(decode_client_event(d));
    }
    out.push_back(std::move(f));
  }
  return out;
}

// --- directory deltas --------------------------------------------------------

void encode(wire::Encoder& e, const DirectoryUpdate& v) {
  e.u64(v.epoch);
  e.u64(v.version);
  e.boolean(v.full);
  e.sequence(v.removed,
             [](wire::Encoder& enc, const AppId& id) { encode(enc, id); });
  e.sequence(v.apps,
             [](wire::Encoder& enc, const AppInfo& a) { encode(enc, a); });
}

DirectoryUpdate decode_directory_update(wire::Decoder& d) {
  DirectoryUpdate v;
  v.epoch = d.u64();
  v.version = d.u64();
  v.full = d.boolean();
  v.removed =
      d.sequence<AppId>([](wire::Decoder& dd) { return decode_app_id(dd); });
  v.apps =
      d.sequence<AppInfo>([](wire::Decoder& dd) { return decode_app_info(dd); });
  return v;
}

// --- HTTP bodies -------------------------------------------------------------

const char* admission_error_name(AdmissionError e) {
  switch (e) {
    case AdmissionError::none: return "none";
    case AdmissionError::server_sessions: return "server_sessions";
    case AdmissionError::app_sessions: return "app_sessions";
  }
  return "?";
}

namespace {
void encode_events(wire::Encoder& e, const std::vector<ClientEvent>& v) {
  e.sequence(v,
             [](wire::Encoder& enc, const ClientEvent& ev) { encode(enc, ev); });
}
std::vector<ClientEvent> decode_events(wire::Decoder& d) {
  return d.sequence<ClientEvent>(
      [](wire::Decoder& dec) { return decode_client_event(dec); });
}
}  // namespace

util::Bytes encode_body(const LoginRequest& m) {
  wire::Encoder e;
  e.str(m.user);
  e.u64(m.password_digest);
  return std::move(e).take();
}

LoginRequest decode_login_request(const util::Bytes& b) {
  wire::Decoder d(b);
  LoginRequest m;
  m.user = d.str();
  m.password_digest = d.u64();
  return m;
}

util::Bytes encode_body(const LoginReply& m) {
  wire::Encoder e;
  e.boolean(m.ok);
  e.str(m.message);
  encode(e, m.token);
  e.sequence(m.applications,
             [](wire::Encoder& enc, const AppInfo& a) { encode(enc, a); });
  e.u8(static_cast<std::uint8_t>(m.admission));
  e.i64(m.retry_after);
  return std::move(e).take();
}

LoginReply decode_login_reply(const util::Bytes& b) {
  wire::Decoder d(b);
  LoginReply m;
  m.ok = d.boolean();
  m.message = d.str();
  m.token = decode_token(d);
  m.applications = d.sequence<AppInfo>(
      [](wire::Decoder& dec) { return decode_app_info(dec); });
  m.admission = static_cast<AdmissionError>(d.u8());
  m.retry_after = d.i64();
  return m;
}

util::Bytes encode_body(const SelectAppRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  return std::move(e).take();
}

SelectAppRequest decode_select_app_request(const util::Bytes& b) {
  wire::Decoder d(b);
  SelectAppRequest m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  return m;
}

util::Bytes encode_body(const SelectAppReply& m) {
  wire::Encoder e;
  e.boolean(m.ok);
  e.str(m.message);
  e.u8(static_cast<std::uint8_t>(m.privilege));
  e.sequence(m.interface_spec,
             [](wire::Encoder& enc, const ParamSpec& p) { encode(enc, p); });
  e.u64(m.history_seq);
  e.u8(static_cast<std::uint8_t>(m.admission));
  e.i64(m.retry_after);
  return std::move(e).take();
}

SelectAppReply decode_select_app_reply(const util::Bytes& b) {
  wire::Decoder d(b);
  SelectAppReply m;
  m.ok = d.boolean();
  m.message = d.str();
  m.privilege = static_cast<security::Privilege>(d.u8());
  m.interface_spec = d.sequence<ParamSpec>(
      [](wire::Decoder& dec) { return decode_param_spec(dec); });
  m.history_seq = d.u64();
  m.admission = static_cast<AdmissionError>(d.u8());
  m.retry_after = d.i64();
  return m;
}

util::Bytes encode_body(const CommandRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  e.u64(m.request_id);
  e.u8(static_cast<std::uint8_t>(m.kind));
  e.str(m.param);
  encode(e, m.value);
  return std::move(e).take();
}

CommandRequest decode_command_request(const util::Bytes& b) {
  wire::Decoder d(b);
  CommandRequest m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  m.request_id = d.u64();
  m.kind = static_cast<CommandKind>(d.u8());
  m.param = d.str();
  m.value = decode_param_value(d);
  return m;
}

util::Bytes encode_body(const CommandAck& m) {
  wire::Encoder e;
  e.boolean(m.accepted);
  e.str(m.message);
  e.u64(m.request_id);
  return std::move(e).take();
}

CommandAck decode_command_ack(const util::Bytes& b) {
  wire::Decoder d(b);
  CommandAck m;
  m.accepted = d.boolean();
  m.message = d.str();
  m.request_id = d.u64();
  return m;
}

util::Bytes encode_body(const PollRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  e.u32(m.max_events);
  return std::move(e).take();
}

PollRequest decode_poll_request(const util::Bytes& b) {
  wire::Decoder d(b);
  PollRequest m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  m.max_events = d.u32();
  return m;
}

namespace {
// Encoder pre-size for a poll-reply: header plus a typical event footprint.
// An estimate, not a bound — the buffer still grows for oversized events.
constexpr std::size_t kPollReplyBaseHint = 48;
constexpr std::size_t kPerEventHint = 128;
}  // namespace

util::Bytes encode_body(const PollReply& m) {
  wire::Encoder e;
  e.reserve(kPollReplyBaseHint + m.message.size() +
            m.events.size() * kPerEventHint);
  e.boolean(m.ok);
  e.str(m.message);
  encode_events(e, m.events);
  e.u32(m.backlog);
  return std::move(e).take();
}

util::Bytes encode_poll_reply_shared(bool ok, const std::string& message,
                                     const std::vector<SharedClientEvent>& events,
                                     std::uint32_t backlog) {
  wire::Encoder e;
  e.reserve(kPollReplyBaseHint + message.size() +
            events.size() * kPerEventHint);
  e.boolean(ok);
  e.str(message);
  e.sequence(events, [](wire::Encoder& enc, const SharedClientEvent& ev) {
    encode(enc, *ev);
  });
  e.u32(backlog);
  return std::move(e).take();
}

PollReply decode_poll_reply(const util::Bytes& b) {
  wire::Decoder d(b);
  PollReply m;
  m.ok = d.boolean();
  m.message = d.str();
  m.events = decode_events(d);
  m.backlog = d.u32();
  return m;
}

util::Bytes encode_body(const CollabPost& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  e.u8(static_cast<std::uint8_t>(m.kind));
  e.str(m.text);
  encode(e, m.payload);
  return std::move(e).take();
}

CollabPost decode_collab_post(const util::Bytes& b) {
  wire::Decoder d(b);
  CollabPost m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  m.kind = static_cast<EventKind>(d.u8());
  m.text = d.str();
  m.payload = decode_param_value(d);
  return m;
}

util::Bytes encode_body(const CollabAck& m) {
  wire::Encoder e;
  e.boolean(m.ok);
  e.str(m.message);
  return std::move(e).take();
}

CollabAck decode_collab_ack(const util::Bytes& b) {
  wire::Decoder d(b);
  CollabAck m;
  m.ok = d.boolean();
  m.message = d.str();
  return m;
}

util::Bytes encode_body(const GroupRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  e.u8(static_cast<std::uint8_t>(m.op));
  e.str(m.subgroup);
  return std::move(e).take();
}

GroupRequest decode_group_request(const util::Bytes& b) {
  wire::Decoder d(b);
  GroupRequest m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  m.op = static_cast<GroupOp>(d.u8());
  m.subgroup = d.str();
  return m;
}

util::Bytes encode_body(const HistoryRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  encode(e, m.app_id);
  e.u64(m.from_seq);
  e.u32(m.max_events);
  return std::move(e).take();
}

HistoryRequest decode_history_request(const util::Bytes& b) {
  wire::Decoder d(b);
  HistoryRequest m;
  m.token = decode_token(d);
  m.app_id = decode_app_id(d);
  m.from_seq = d.u64();
  m.max_events = d.u32();
  return m;
}

util::Bytes encode_body(const HistoryReply& m) {
  wire::Encoder e;
  e.boolean(m.ok);
  e.str(m.message);
  encode_events(e, m.events);
  return std::move(e).take();
}

HistoryReply decode_history_reply(const util::Bytes& b) {
  wire::Decoder d(b);
  HistoryReply m;
  m.ok = d.boolean();
  m.message = d.str();
  m.events = decode_events(d);
  return m;
}

util::Bytes encode_body(const LogoutRequest& m) {
  wire::Encoder e;
  encode(e, m.token);
  return std::move(e).take();
}

LogoutRequest decode_logout_request(const util::Bytes& b) {
  wire::Decoder d(b);
  LogoutRequest m;
  m.token = decode_token(d);
  return m;
}

}  // namespace discover::proto
