// Grid Information Service (GIS/MDS analogue; referenced by paper §6.3 as
// the "centralized directory service like the GIS" that could hold global
// user identities, and by §7 as part of the Grid services the CORBA CoG
// kit exposes).
//
// Two directories behind one servant:
//  * resources — compute resources register their GRAM reference plus
//    attributes; clients query with the trader constraint language;
//  * identities — global user-id/password-digest pairs that DISCOVER
//    servers may pull to supplement application ACLs (§6.3's suggestion).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "orb/orb.h"
#include "orb/trader.h"

namespace discover::grid {

inline constexpr const char* kGisServiceType = "GIS";
inline constexpr const char* kGramServiceType = "GRAM";

struct ResourceInfo {
  std::string name;
  orb::ObjectRef gram;  // the resource's job-manager servant
  std::map<std::string, std::string> attributes;  // cpus, mflops, site...
  std::uint32_t running_jobs = 0;
  std::uint32_t total_cpus = 0;
};

class GridInformationService final : public orb::Servant {
 public:
  [[nodiscard]] std::string interface_name() const override {
    return "GridInformationService";
  }

  // Methods:
  //   register_resource(name, gram_ref, attrs, cpus) -> ()
  //   update_load(name, running_jobs) -> ()
  //   unregister_resource(name) -> ()
  //   query_resources(constraint) -> seq<ResourceInfo>
  //   add_identity(user, pw_digest) -> ()
  //   list_identities() -> map<user, pw_digest>
  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override;

  [[nodiscard]] std::size_t resource_count() const {
    return resources_.size();
  }
  [[nodiscard]] std::size_t identity_count() const {
    return identities_.size();
  }
  /// Local (in-process) identity seeding for deployment bootstrap.
  void add_identity(const std::string& user, std::uint64_t pw_digest) {
    identities_[user] = pw_digest;
  }

 private:
  std::map<std::string, ResourceInfo> resources_;
  std::map<std::string, std::uint64_t> identities_;
};

void encode(wire::Encoder& e, const ResourceInfo& r);
ResourceInfo decode_resource_info(wire::Decoder& d);

}  // namespace discover::grid
