#include "grid/cog.h"

#include <algorithm>

namespace discover::grid {

void CorbaCoG::discover_resources(const std::string& constraint,
                                  ResourcesCallback cb) {
  wire::Encoder args;
  args.str(constraint);
  orb_->invoke(gis_, "query_resources", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 const std::uint32_t n = d.u32();
                 std::vector<ResourceInfo> out;
                 out.reserve(n);
                 for (std::uint32_t i = 0; i < n; ++i) {
                   out.push_back(decode_resource_info(d));
                 }
                 cb(std::move(out));
               });
}

void CorbaCoG::submit(const orb::ObjectRef& gram, const JobDescription& job,
                      SubmitCallback cb) {
  wire::Encoder args;
  encode(args, job);
  orb_->invoke(gram, "submit", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 cb(d.u64());
               });
}

void CorbaCoG::status(const orb::ObjectRef& gram, JobId id,
                      StatusCallback cb) {
  wire::Encoder args;
  args.u64(id);
  orb_->invoke(gram, "status", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 cb(decode_job_status(d));
               });
}

void CorbaCoG::cancel(const orb::ObjectRef& gram, JobId id, DoneCallback cb) {
  wire::Encoder args;
  args.u64(id);
  orb_->invoke(gram, "cancel", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 cb(r.ok() ? util::Status() : util::Status(r.error()));
               });
}

void CorbaCoG::allocate_and_submit(
    const std::string& constraint, const JobDescription& job,
    std::function<void(util::Result<JobStatus>)> cb) {
  discover_resources(
      constraint,
      [this, job, cb = std::move(cb)](
          util::Result<std::vector<ResourceInfo>> r) {
        if (!r.ok()) {
          cb(r.error());
          return;
        }
        const auto& resources = r.value();
        if (resources.empty()) {
          cb(util::Error{util::Errc::unavailable,
                         "no resource matches the constraint"});
          return;
        }
        // Most free slots wins (simple load-levelling allocator).
        const ResourceInfo* best = &resources.front();
        for (const ResourceInfo& info : resources) {
          const std::int64_t free =
              static_cast<std::int64_t>(info.total_cpus) - info.running_jobs;
          const std::int64_t best_free =
              static_cast<std::int64_t>(best->total_cpus) -
              best->running_jobs;
          if (free > best_free) best = &info;
        }
        const orb::ObjectRef gram = best->gram;
        submit(gram, job,
               [this, gram, cb](util::Result<JobId> submitted) {
                 if (!submitted.ok()) {
                   cb(submitted.error());
                   return;
                 }
                 status(gram, submitted.value(), cb);
               });
      });
}

}  // namespace discover::grid
