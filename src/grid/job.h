// Grid job model shared by the GRAM-like resource manager and the CoG kit.
//
// Context (paper §7): the authors' follow-on work is "a CORBA CoG kit to
// provide application developers with access to Grid services using
// CORBA ... a client can use Globus services provided by the CORBA CoG Kit
// to discover, allocate and stage a scientific simulation, and then use
// the DISCOVER web-portal to collaboratively monitor, interact with, and
// steer the application".  This module is that substrate, rebuilt on our
// ORB: an information service (GIS/MDS analogue), per-resource job
// managers (GRAM analogue), and a client kit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "security/acl.h"
#include "util/clock.h"
#include "wire/cdr.h"

namespace discover::grid {

using JobId = std::uint64_t;

enum class JobState : std::uint8_t {
  pending = 0,   // queued, waiting for a CPU slot
  staging = 1,   // executable/data transfer in progress
  running = 2,   // application alive and registered with DISCOVER
  finished = 3,  // ran to completion (or was stopped via steering)
  cancelled = 4, // killed through the resource manager
  failed = 5,    // could not be launched
};
const char* job_state_name(JobState s);

/// What the CoG kit submits: which solver to run, how it should behave,
/// and which DISCOVER server it must register with for steering.
struct JobDescription {
  std::string kind = "synthetic";  // reservoir | heat2d | wave1d |
                                   // inspiral | synthetic
  std::string name = "job";
  std::vector<security::AclEntry> acl;
  std::uint32_t discover_server = 0;  // NodeId value of the steering server
  util::Duration step_time = util::milliseconds(1);
  std::uint32_t update_every = 5;
  std::uint32_t interact_every = 10;
  std::uint64_t max_steps = 0;
  /// Bytes of "executable + input data" to stage before launch; the
  /// resource turns this into a staging delay from its stage bandwidth.
  std::uint64_t stage_bytes = 0;
};

struct JobStatus {
  JobId id = 0;
  JobState state = JobState::pending;
  std::string name;
  std::string detail;          // error text / progress note
  std::string discover_app_id; // AppId string once running
  std::uint64_t steps = 0;
};

void encode(wire::Encoder& e, const JobDescription& d);
JobDescription decode_job_description(wire::Decoder& d);
void encode(wire::Encoder& e, const JobStatus& s);
JobStatus decode_job_status(wire::Decoder& d);

}  // namespace discover::grid
