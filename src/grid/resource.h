// A grid compute resource with a GRAM-like job manager (paper §7).
//
// The resource exposes one "GramJobManager" servant: jobs are submitted
// with a JobDescription, staged (simulated transfer delay), launched as
// real SteerableApp instances on freshly created network nodes, and
// steered through DISCOVER like any other application.  CPU slots bound
// concurrency; excess jobs queue FIFO.  The resource registers itself
// with the GIS and keeps its load attribute fresh.
//
// SimNetwork only: launching a job adds a node at runtime, which the
// threaded backend does not allow after start().
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "app/steerable_app.h"
#include "grid/gis.h"
#include "grid/job.h"
#include "net/network.h"
#include "orb/orb.h"

namespace discover::grid {

struct ResourceConfig {
  std::string name = "resource";
  std::uint32_t cpus = 4;
  std::map<std::string, std::string> attributes;  // site, arch, mflops...
  /// Simulated staging bandwidth for JobDescription::stage_bytes.
  double stage_bytes_per_sec = 10e6;
  util::Duration min_stage_time = util::milliseconds(10);
  /// How often finished jobs are reaped and queued jobs promoted.
  util::Duration reap_period = util::milliseconds(50);
  util::Duration gis_update_period = util::milliseconds(500);
};

class GridResource final : public net::MessageHandler {
 public:
  GridResource(net::Network& network, ResourceConfig config);
  ~GridResource() override;

  void attach(net::NodeId self);
  /// GIS to register with (required) — the resource publishes its GRAM
  /// reference there instead of the trader, like MDS registration.
  void set_gis(orb::ObjectRef gis);
  void start();
  void shutdown();

  void on_message(const net::Message& msg) override;

  [[nodiscard]] net::NodeId node() const { return self_; }
  [[nodiscard]] orb::ObjectRef gram_ref() const { return gram_ref_; }
  [[nodiscard]] std::uint32_t running_jobs() const;
  [[nodiscard]] std::size_t queued_jobs() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t jobs_completed() const {
    return jobs_completed_;
  }
  [[nodiscard]] JobStatus status_of(JobId id) const;

 private:
  class GramServant;
  friend class GramServant;

  struct Job {
    JobId id = 0;
    JobDescription description;
    JobState state = JobState::pending;
    std::string detail;
    std::unique_ptr<app::SteerableApp> app;  // once launched
    net::NodeId app_node{0};
  };

  JobId submit(JobDescription description);
  util::Status cancel(JobId id);
  void try_start_next();
  void stage_then_launch(JobId id);
  void launch(Job& job);
  void reap();
  void push_gis_load();
  [[nodiscard]] std::unique_ptr<app::SteerableApp> instantiate(
      const JobDescription& d);

  net::Network& network_;
  ResourceConfig config_;
  net::NodeId self_{0};
  std::unique_ptr<orb::Orb> orb_;
  orb::ObjectRef gis_;
  orb::ObjectRef gram_ref_;
  std::map<JobId, Job> jobs_;
  std::deque<JobId> queue_;
  JobId next_job_ = 1;
  std::uint32_t active_ = 0;  // staging + running
  std::uint64_t jobs_completed_ = 0;
  bool started_ = false;
  net::TimerId reap_timer_{0};
  net::TimerId gis_timer_{0};
};

}  // namespace discover::grid
