#include "grid/gis.h"

namespace discover::grid {

void encode(wire::Encoder& e, const ResourceInfo& r) {
  e.str(r.name);
  encode(e, r.gram);
  e.map(r.attributes,
        [](wire::Encoder& enc, const std::string& k) { enc.str(k); },
        [](wire::Encoder& enc, const std::string& v) { enc.str(v); });
  e.u32(r.running_jobs);
  e.u32(r.total_cpus);
}

ResourceInfo decode_resource_info(wire::Decoder& d) {
  ResourceInfo r;
  r.name = d.str();
  r.gram = orb::decode_object_ref(d);
  r.attributes = d.map<std::string, std::string>(
      [](wire::Decoder& dd) { return dd.str(); },
      [](wire::Decoder& dd) { return dd.str(); });
  r.running_jobs = d.u32();
  r.total_cpus = d.u32();
  return r;
}

void GridInformationService::dispatch(const std::string& method,
                                      wire::Decoder& args, wire::Encoder& out,
                                      orb::DispatchContext& ctx) {
  (void)ctx;
  if (method == "register_resource") {
    ResourceInfo info;
    info.name = args.str();
    info.gram = orb::decode_object_ref(args);
    info.attributes = args.map<std::string, std::string>(
        [](wire::Decoder& d) { return d.str(); },
        [](wire::Decoder& d) { return d.str(); });
    info.total_cpus = args.u32();
    resources_[info.name] = std::move(info);
  } else if (method == "update_load") {
    const std::string name = args.str();
    const std::uint32_t running = args.u32();
    const auto it = resources_.find(name);
    if (it == resources_.end()) {
      throw orb::OrbException{util::Errc::not_found,
                              "unknown resource " + name};
    }
    it->second.running_jobs = running;
  } else if (method == "unregister_resource") {
    resources_.erase(args.str());
  } else if (method == "query_resources") {
    const std::string constraint = args.str();
    std::vector<const ResourceInfo*> matches;
    for (const auto& [_, info] : resources_) {
      auto m = orb::match_constraint(constraint, info.attributes);
      if (!m.ok()) throw orb::OrbException{m.error().code, m.error().message};
      if (m.value()) matches.push_back(&info);
    }
    out.u32(static_cast<std::uint32_t>(matches.size()));
    for (const ResourceInfo* info : matches) encode(out, *info);
  } else if (method == "add_identity") {
    const std::string user = args.str();
    identities_[user] = args.u64();
  } else if (method == "list_identities") {
    out.map(identities_,
            [](wire::Encoder& e, const std::string& k) { e.str(k); },
            [](wire::Encoder& e, std::uint64_t v) { e.u64(v); });
  } else {
    throw orb::OrbException{util::Errc::invalid_argument,
                            "GIS has no method " + method};
  }
}

}  // namespace discover::grid
