#include "grid/resource.h"

#include <algorithm>

#include "app/heat2d.h"
#include "proto/types.h"
#include "app/inspiral.h"
#include "app/reservoir.h"
#include "app/synthetic.h"
#include "app/wave1d.h"
#include "util/log.h"

namespace discover::grid {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::pending: return "pending";
    case JobState::staging: return "staging";
    case JobState::running: return "running";
    case JobState::finished: return "finished";
    case JobState::cancelled: return "cancelled";
    case JobState::failed: return "failed";
  }
  return "?";
}

void encode(wire::Encoder& e, const JobDescription& d) {
  e.str(d.kind);
  e.str(d.name);
  e.sequence(d.acl, [](wire::Encoder& enc, const security::AclEntry& a) {
    proto::encode(enc, a);
  });
  e.u32(d.discover_server);
  e.i64(d.step_time);
  e.u32(d.update_every);
  e.u32(d.interact_every);
  e.u64(d.max_steps);
  e.u64(d.stage_bytes);
}

JobDescription decode_job_description(wire::Decoder& d) {
  JobDescription out;
  out.kind = d.str();
  out.name = d.str();
  out.acl = d.sequence<security::AclEntry>(
      [](wire::Decoder& dd) { return proto::decode_acl_entry(dd); });
  out.discover_server = d.u32();
  out.step_time = d.i64();
  out.update_every = d.u32();
  out.interact_every = d.u32();
  out.max_steps = d.u64();
  out.stage_bytes = d.u64();
  return out;
}

void encode(wire::Encoder& e, const JobStatus& s) {
  e.u64(s.id);
  e.u8(static_cast<std::uint8_t>(s.state));
  e.str(s.name);
  e.str(s.detail);
  e.str(s.discover_app_id);
  e.u64(s.steps);
}

JobStatus decode_job_status(wire::Decoder& d) {
  JobStatus out;
  out.id = d.u64();
  out.state = static_cast<JobState>(d.u8());
  out.name = d.str();
  out.detail = d.str();
  out.discover_app_id = d.str();
  out.steps = d.u64();
  return out;
}

// ---------------------------------------------------------------------------
// GRAM servant
// ---------------------------------------------------------------------------

class GridResource::GramServant final : public orb::Servant {
 public:
  explicit GramServant(GridResource& resource) : resource_(resource) {}

  [[nodiscard]] std::string interface_name() const override {
    return "GramJobManager";
  }

  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, orb::DispatchContext& ctx) override {
    (void)ctx;
    GridResource& r = resource_;
    if (method == "submit") {
      const JobDescription description = decode_job_description(args);
      out.u64(r.submit(description));
    } else if (method == "status") {
      const JobId id = args.u64();
      const JobStatus status = r.status_of(id);
      if (status.id == 0) {
        throw orb::OrbException{util::Errc::not_found,
                                "no job " + std::to_string(id)};
      }
      encode(out, status);
    } else if (method == "cancel") {
      const JobId id = args.u64();
      const util::Status s = r.cancel(id);
      if (!s.ok()) throw orb::OrbException{s.error().code, s.error().message};
    } else if (method == "list_jobs") {
      out.u32(static_cast<std::uint32_t>(r.jobs_.size()));
      for (const auto& [id, _] : r.jobs_) encode(out, r.status_of(id));
    } else {
      throw orb::OrbException{util::Errc::invalid_argument,
                              "GramJobManager has no method " + method};
    }
  }

 private:
  GridResource& resource_;
};

// ---------------------------------------------------------------------------
// GridResource
// ---------------------------------------------------------------------------

GridResource::GridResource(net::Network& network, ResourceConfig config)
    : network_(network), config_(std::move(config)) {}

GridResource::~GridResource() = default;

void GridResource::attach(net::NodeId self) {
  self_ = self;
  orb_ = std::make_unique<orb::Orb>(network_, self);
  gram_ref_ = orb_->activate(std::make_shared<GramServant>(*this));
}

void GridResource::set_gis(orb::ObjectRef gis) { gis_ = std::move(gis); }

void GridResource::start() {
  if (started_) return;
  started_ = true;
  if (gis_.valid()) {
    wire::Encoder args;
    args.str(config_.name);
    encode(args, gram_ref_);
    args.map(config_.attributes,
             [](wire::Encoder& e, const std::string& k) { e.str(k); },
             [](wire::Encoder& e, const std::string& v) { e.str(v); });
    args.u32(config_.cpus);
    orb_->invoke(gis_, "register_resource", std::move(args),
                 [](util::Result<util::Bytes>) {});
    gis_timer_ = network_.schedule(self_, config_.gis_update_period,
                                   [this] { push_gis_load(); });
  }
  reap_timer_ = network_.schedule(self_, config_.reap_period,
                                  [this] { reap(); });
}

void GridResource::shutdown() {
  if (!started_) return;
  started_ = false;
  if (reap_timer_.value() != 0) network_.cancel(reap_timer_);
  if (gis_timer_.value() != 0) network_.cancel(gis_timer_);
  if (gis_.valid()) {
    wire::Encoder args;
    args.str(config_.name);
    orb_->invoke(gis_, "unregister_resource", std::move(args),
                 [](util::Result<util::Bytes>) {});
  }
}

void GridResource::on_message(const net::Message& msg) {
  if (msg.channel == net::Channel::giop) orb_->handle(msg);
}

std::uint32_t GridResource::running_jobs() const { return active_; }

JobStatus GridResource::status_of(JobId id) const {
  JobStatus status;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return status;
  const Job& job = it->second;
  status.id = job.id;
  status.state = job.state;
  status.name = job.description.name;
  status.detail = job.detail;
  if (job.app) {
    status.steps = job.app->steps();
    if (job.app->registered()) {
      status.discover_app_id = job.app->app_id().to_string();
    }
    // Reflect completion promptly even between reap sweeps.
    if (job.state == JobState::running && job.app->finished()) {
      status.state = JobState::finished;
    }
  }
  return status;
}

JobId GridResource::submit(JobDescription description) {
  const JobId id = next_job_++;
  Job job;
  job.id = id;
  job.description = std::move(description);
  job.state = JobState::pending;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  try_start_next();
  return id;
}

void GridResource::try_start_next() {
  while (active_ < config_.cpus && !queue_.empty()) {
    const JobId id = queue_.front();
    queue_.pop_front();
    Job* job = nullptr;
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::pending) continue;
    job = &it->second;
    ++active_;
    job->state = JobState::staging;
    stage_then_launch(id);
  }
}

void GridResource::stage_then_launch(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  const double bytes =
      static_cast<double>(it->second.description.stage_bytes);
  const util::Duration stage_time = std::max(
      config_.min_stage_time,
      static_cast<util::Duration>(bytes / config_.stage_bytes_per_sec * 1e9));
  it->second.detail = "staging " +
                      util::format_bytes(it->second.description.stage_bytes);
  network_.schedule(self_, stage_time, [this, id] {
    const auto jt = jobs_.find(id);
    if (jt == jobs_.end() || jt->second.state != JobState::staging) return;
    launch(jt->second);
  });
}

std::unique_ptr<app::SteerableApp> GridResource::instantiate(
    const JobDescription& d) {
  app::AppConfig cfg;
  cfg.name = d.name;
  cfg.description = "grid job on " + config_.name;
  cfg.acl = d.acl;
  cfg.step_time = d.step_time;
  cfg.update_every = d.update_every;
  cfg.interact_every = d.interact_every;
  cfg.interaction_window = util::milliseconds(1);
  cfg.max_steps = d.max_steps;
  if (d.kind == "reservoir") {
    return std::make_unique<app::ReservoirApp>(network_, std::move(cfg));
  }
  if (d.kind == "heat2d") {
    return std::make_unique<app::Heat2DApp>(network_, std::move(cfg));
  }
  if (d.kind == "wave1d") {
    return std::make_unique<app::Wave1DApp>(network_, std::move(cfg));
  }
  if (d.kind == "inspiral") {
    return std::make_unique<app::InspiralApp>(network_, std::move(cfg));
  }
  if (d.kind == "synthetic") {
    return std::make_unique<app::SyntheticApp>(network_, std::move(cfg),
                                               app::SyntheticSpec{});
  }
  return nullptr;
}

void GridResource::launch(Job& job) {
  job.app = instantiate(job.description);
  if (!job.app) {
    job.state = JobState::failed;
    job.detail = "unknown application kind: " + job.description.kind;
    --active_;
    try_start_next();
    return;
  }
  job.app_node = network_.add_node(
      "gridjob:" + job.description.name, job.app.get(),
      network_.node_domain(self_));
  job.app->attach(job.app_node);
  job.app->connect(net::NodeId{job.description.discover_server});
  job.state = JobState::running;
  job.detail = "running on " + config_.name;
  DISCOVER_LOG(info, "grid") << config_.name << ": launched job "
                             << job.description.name;
}

util::Status GridResource::cancel(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return {util::Errc::not_found, "no job " + std::to_string(id)};
  }
  Job& job = it->second;
  switch (job.state) {
    case JobState::pending:
      job.state = JobState::cancelled;
      job.detail = "cancelled while queued";
      return {};
    case JobState::staging:
      job.state = JobState::cancelled;
      job.detail = "cancelled while staging";
      --active_;
      try_start_next();
      return {};
    case JobState::running: {
      job.state = JobState::cancelled;
      job.detail = "cancelled by resource manager";
      app::SteerableApp* app = job.app.get();
      network_.post(job.app_node,
                    [app] { app->abort("cancelled by resource manager"); });
      --active_;
      try_start_next();
      return {};
    }
    default:
      return {util::Errc::failed_precondition,
              std::string("job already ") + job_state_name(job.state)};
  }
}

void GridResource::reap() {
  for (auto& [id, job] : jobs_) {
    if (job.state == JobState::running && job.app && job.app->finished()) {
      job.state = JobState::finished;
      job.detail = "completed after " + std::to_string(job.app->steps()) +
                   " steps";
      ++jobs_completed_;
      --active_;
    }
  }
  try_start_next();
  if (started_) {
    reap_timer_ = network_.schedule(self_, config_.reap_period,
                                    [this] { reap(); });
  }
}

void GridResource::push_gis_load() {
  if (!started_ || !gis_.valid()) return;
  wire::Encoder args;
  args.str(config_.name);
  args.u32(active_);
  orb_->invoke(gis_, "update_load", std::move(args),
               [](util::Result<util::Bytes>) {});
  gis_timer_ = network_.schedule(self_, config_.gis_update_period,
                                 [this] { push_gis_load(); });
}

}  // namespace discover::grid
