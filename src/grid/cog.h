// The CORBA CoG kit (paper §7): typed client stubs giving application
// developers access to Grid services through the ORB — discover resources
// via the GIS, submit/monitor/cancel jobs via a resource's GRAM servant.
// Combined with DiscoverClient this completes the paper's closing
// scenario: "discover, allocate and stage a scientific simulation, and
// then use the DISCOVER web-portal to collaboratively monitor, interact
// with, and steer the application".
#pragma once

#include <functional>
#include <vector>

#include "grid/gis.h"
#include "grid/job.h"
#include "orb/orb.h"

namespace discover::grid {

class CorbaCoG {
 public:
  CorbaCoG(orb::Orb& orb, orb::ObjectRef gis)
      : orb_(&orb), gis_(std::move(gis)) {}
  CorbaCoG() = default;

  using ResourcesCallback =
      std::function<void(util::Result<std::vector<ResourceInfo>>)>;
  using SubmitCallback = std::function<void(util::Result<JobId>)>;
  using StatusCallback = std::function<void(util::Result<JobStatus>)>;
  using DoneCallback = std::function<void(util::Status)>;

  /// GIS resource discovery with the trader constraint language, e.g.
  /// "site == texas" or "" for everything.
  void discover_resources(const std::string& constraint,
                          ResourcesCallback cb);

  void submit(const orb::ObjectRef& gram, const JobDescription& job,
              SubmitCallback cb);
  void status(const orb::ObjectRef& gram, JobId id, StatusCallback cb);
  void cancel(const orb::ObjectRef& gram, JobId id, DoneCallback cb);

  /// Convenience allocator: picks the matching resource with the most free
  /// CPU slots and submits there.  Fails if nothing matches.
  void allocate_and_submit(const std::string& constraint,
                           const JobDescription& job,
                           std::function<void(util::Result<JobStatus>)> cb);

  [[nodiscard]] bool configured() const { return gis_.valid(); }

 private:
  orb::Orb* orb_ = nullptr;
  orb::ObjectRef gis_;
};

}  // namespace discover::grid
