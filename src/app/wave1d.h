// 1-D acoustic wave propagation (leapfrog), standing in for the paper's
// "seismic modeling" workload.  A Ricker-style source injects energy at one
// end; steerables: source frequency and medium velocity.
#pragma once

#include <vector>

#include "app/steerable_app.h"

namespace discover::app {

class Wave1DApp final : public SteerableApp {
 public:
  Wave1DApp(net::Network& network, AppConfig config, int n = 256);

  [[nodiscard]] double energy() const;
  [[nodiscard]] double peak_amplitude() const;

  [[nodiscard]] double sim_time() const override { return t_; }

 protected:
  void init_control(ControlNetwork& control) override;
  void compute_step(std::uint64_t step) override;

 private:
  int n_;
  std::vector<double> u_prev_;
  std::vector<double> u_;
  double source_freq_ = 5.0;  // Hz (steerable)
  double velocity_ = 0.4;     // grid Courant number (steerable, < 1)
  double t_ = 0.0;
};

}  // namespace discover::app
