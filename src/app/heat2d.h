// 2-D heat diffusion (FTCS), standing in for the paper's "computational
// fluid dynamics" workload.  A hot source patch diffuses across a plate;
// steerables: diffusivity and source temperature.
#pragma once

#include <vector>

#include "app/steerable_app.h"

namespace discover::app {

class Heat2DApp final : public SteerableApp {
 public:
  Heat2DApp(net::Network& network, AppConfig config, int n = 32);

  [[nodiscard]] double max_temperature() const;
  [[nodiscard]] double avg_temperature() const;
  [[nodiscard]] double residual() const { return residual_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  [[nodiscard]] double sim_time() const override { return t_; }

 protected:
  void init_control(ControlNetwork& control) override;
  void compute_step(std::uint64_t step) override;

 private:
  [[nodiscard]] int idx(int i, int j) const { return j * n_ + i; }

  int n_;
  std::vector<double> temp_;
  double alpha_ = 0.15;        // steerable diffusivity (stability: < 0.25)
  double source_temp_ = 100.0; // steerable source temperature
  double residual_ = 0.0;
  double t_ = 0.0;
};

}  // namespace discover::app
