#include "app/heat2d.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace discover::app {

Heat2DApp::Heat2DApp(net::Network& network, AppConfig config, int n)
    : SteerableApp(network, std::move(config)),
      n_(n),
      temp_(static_cast<std::size_t>(n * n), 0.0) {}

double Heat2DApp::max_temperature() const {
  return *std::max_element(temp_.begin(), temp_.end());
}

double Heat2DApp::avg_temperature() const {
  return std::accumulate(temp_.begin(), temp_.end(), 0.0) /
         static_cast<double>(temp_.size());
}

void Heat2DApp::init_control(ControlNetwork& control) {
  control.bind_double("alpha", "1", 0.01, 0.24, &alpha_);
  control.bind_double("source_temp", "C", 0.0, 1000.0, &source_temp_);
  control.add_sensor("max_temp", "C",
                     [this] { return proto::ParamValue{max_temperature()}; });
  control.add_sensor("avg_temp", "C",
                     [this] { return proto::ParamValue{avg_temperature()}; });
  control.add_sensor("residual", "C",
                     [this] { return proto::ParamValue{residual_}; });
}

void Heat2DApp::compute_step(std::uint64_t /*step*/) {
  // Clamp the source patch (centre quarter) to the steerable temperature.
  const int lo = n_ / 2 - n_ / 8;
  const int hi = n_ / 2 + n_ / 8;
  for (int j = lo; j < hi; ++j) {
    for (int i = lo; i < hi; ++i) {
      temp_[static_cast<std::size_t>(idx(i, j))] = source_temp_;
    }
  }
  std::vector<double> next = temp_;
  double residual = 0.0;
  for (int j = 1; j < n_ - 1; ++j) {
    for (int i = 1; i < n_ - 1; ++i) {
      const int c = idx(i, j);
      const double lap = temp_[static_cast<std::size_t>(idx(i - 1, j))] +
                         temp_[static_cast<std::size_t>(idx(i + 1, j))] +
                         temp_[static_cast<std::size_t>(idx(i, j - 1))] +
                         temp_[static_cast<std::size_t>(idx(i, j + 1))] -
                         4.0 * temp_[static_cast<std::size_t>(c)];
      const double d = alpha_ * lap;
      next[static_cast<std::size_t>(c)] += d;
      residual += std::abs(d);
    }
  }
  temp_ = std::move(next);
  residual_ = residual / static_cast<double>(n_ * n_);
  t_ += 1.0;
}

}  // namespace discover::app
