// Waterflood oil-reservoir simulation (IMPES-flavoured, simplified).
//
// Stands in for the "oil reservoir simulations" DISCOVER steered (paper §4,
// §7): a 2-D five-spot pattern — injector in one corner, producer in the
// other — pressure diffusion plus Buckley-Leverett-style water-saturation
// transport.  Steerables: water injection rate and producer bottom-hole
// pressure; sensors: average pressure, water cut, oil production rate.
#pragma once

#include <vector>

#include "app/steerable_app.h"

namespace discover::app {

class ReservoirApp final : public SteerableApp {
 public:
  ReservoirApp(net::Network& network, AppConfig config, int nx = 24,
               int ny = 24);

  [[nodiscard]] double average_pressure() const;
  [[nodiscard]] double water_cut() const { return water_cut_; }
  [[nodiscard]] double oil_rate() const { return oil_rate_; }
  [[nodiscard]] double injection_rate() const { return injection_rate_; }

  [[nodiscard]] double sim_time() const override { return days_; }

 protected:
  void init_control(ControlNetwork& control) override;
  void compute_step(std::uint64_t step) override;

 private:
  [[nodiscard]] int idx(int i, int j) const { return j * nx_ + i; }

  int nx_;
  int ny_;
  std::vector<double> pressure_;    // psi
  std::vector<double> saturation_;  // water saturation [0,1]
  double injection_rate_ = 500.0;   // bbl/day (steerable)
  double producer_bhp_ = 1000.0;    // psi (steerable)
  double mobility_ = 0.08;
  double water_cut_ = 0.0;
  double oil_rate_ = 0.0;
  double days_ = 0.0;
};

}  // namespace discover::app
