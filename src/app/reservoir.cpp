#include "app/reservoir.h"

#include <algorithm>
#include <numeric>

namespace discover::app {

ReservoirApp::ReservoirApp(net::Network& network, AppConfig config, int nx,
                           int ny)
    : SteerableApp(network, std::move(config)),
      nx_(nx),
      ny_(ny),
      pressure_(static_cast<std::size_t>(nx * ny), 3000.0),
      saturation_(static_cast<std::size_t>(nx * ny), 0.2) {}

double ReservoirApp::average_pressure() const {
  return std::accumulate(pressure_.begin(), pressure_.end(), 0.0) /
         static_cast<double>(pressure_.size());
}

void ReservoirApp::init_control(ControlNetwork& control) {
  control.bind_double("injection_rate", "bbl/day", 0.0, 5000.0,
                      &injection_rate_);
  control.bind_double("producer_bhp", "psi", 100.0, 3000.0, &producer_bhp_);
  control.add_sensor("avg_pressure", "psi",
                     [this] { return proto::ParamValue{average_pressure()}; });
  control.add_sensor("water_cut", "fraction",
                     [this] { return proto::ParamValue{water_cut_}; });
  control.add_sensor("oil_rate", "bbl/day",
                     [this] { return proto::ParamValue{oil_rate_}; });
  control.add_sensor("days", "day",
                     [this] { return proto::ParamValue{days_}; });
}

void ReservoirApp::compute_step(std::uint64_t /*step*/) {
  const double dt = 0.5;  // days per step
  const int inj = idx(0, 0);
  const int prod = idx(nx_ - 1, ny_ - 1);

  // IMPES pressure stage: explicit diffusion with well source/sink terms.
  std::vector<double> next = pressure_;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      const int c = idx(i, j);
      double lap = 0.0;
      int n = 0;
      const auto acc = [&](int ii, int jj) {
        if (ii < 0 || jj < 0 || ii >= nx_ || jj >= ny_) return;
        lap += pressure_[static_cast<std::size_t>(idx(ii, jj))];
        ++n;
      };
      acc(i - 1, j);
      acc(i + 1, j);
      acc(i, j - 1);
      acc(i, j + 1);
      lap -= n * pressure_[static_cast<std::size_t>(c)];
      next[static_cast<std::size_t>(c)] += mobility_ * dt * lap;
    }
  }
  // Injector raises pressure proportionally to rate; producer is held near
  // its bottom-hole pressure.
  next[static_cast<std::size_t>(inj)] += injection_rate_ * dt * 0.002;
  next[static_cast<std::size_t>(prod)] +=
      (producer_bhp_ - next[static_cast<std::size_t>(prod)]) * 0.5;
  pressure_ = std::move(next);

  // Saturation stage: upwind transport of water along the pressure
  // gradient, plus injected water at the injector block.
  std::vector<double> sat = saturation_;
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      const int c = idx(i, j);
      const double pc = pressure_[static_cast<std::size_t>(c)];
      const auto flux_from = [&](int ii, int jj) {
        if (ii < 0 || jj < 0 || ii >= nx_ || jj >= ny_) return 0.0;
        const int u = idx(ii, jj);
        const double dp = pressure_[static_cast<std::size_t>(u)] - pc;
        if (dp <= 0) return 0.0;  // only inflow carries upstream water
        const double sw = saturation_[static_cast<std::size_t>(u)];
        // Quadratic relative permeability for the water phase; the small
        // transport coefficient makes breakthrough take hundreds of days
        // rather than being instantaneous.
        return mobility_ * dt * dp * sw * sw * 2e-4;
      };
      double inflow = flux_from(i - 1, j) + flux_from(i + 1, j) +
                      flux_from(i, j - 1) + flux_from(i, j + 1);
      sat[static_cast<std::size_t>(c)] =
          std::clamp(sat[static_cast<std::size_t>(c)] + inflow, 0.0, 1.0);
    }
  }
  sat[static_cast<std::size_t>(inj)] =
      std::clamp(sat[static_cast<std::size_t>(inj)] +
                     injection_rate_ * dt * 1e-5,
                 0.0, 1.0);
  saturation_ = std::move(sat);

  // Production diagnostics at the producer block.  Fractional flow uses
  // quadratic relative permeabilities with residual saturations (connate
  // water 0.1, residual oil 0.1), so the well never waters out completely.
  const double sw_prod = std::clamp(
      saturation_[static_cast<std::size_t>(prod)], 0.1, 0.9);
  const double sw_e = (sw_prod - 0.1) / 0.8;
  const double krw = sw_e * sw_e;
  const double kro = (1 - sw_e) * (1 - sw_e) + 0.02;
  const double drawdown = std::max(
      pressure_[static_cast<std::size_t>(prod)] - producer_bhp_, 0.0);
  const double total_rate = drawdown * mobility_ * 4.0;
  water_cut_ = krw / (krw + kro);
  oil_rate_ = total_rate * (1.0 - water_cut_);
  days_ += dt;
}

}  // namespace discover::app
