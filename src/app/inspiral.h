// Compact-binary inspiral integrator, standing in for the paper's
// "numerical relativity" workload: a leading-order post-Newtonian orbital
// decay ODE.  Steerables: total mass and symmetric mass ratio.
#pragma once

#include "app/steerable_app.h"

namespace discover::app {

class InspiralApp final : public SteerableApp {
 public:
  InspiralApp(net::Network& network, AppConfig config);

  [[nodiscard]] double separation() const { return separation_; }
  [[nodiscard]] double orbital_frequency() const;
  [[nodiscard]] double strain() const;
  [[nodiscard]] bool merged() const { return separation_ <= 6.0; }

  [[nodiscard]] double sim_time() const override { return t_; }

 protected:
  void init_control(ControlNetwork& control) override;
  void compute_step(std::uint64_t step) override;

 private:
  void reset();

  double total_mass_ = 20.0;  // solar masses (steerable)
  double eta_ = 0.25;         // symmetric mass ratio (steerable)
  double separation_ = 60.0;  // in units of total mass (geometric)
  double phase_ = 0.0;
  double t_ = 0.0;
};

}  // namespace discover::app
