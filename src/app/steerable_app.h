// Base class for interactive applications connected to a DISCOVER server.
//
// Reproduces the back-end behaviour the middleware depends on (paper §4):
// the application alternates compute and interaction phases, emits periodic
// state updates on the MainChannel, receives commands on the CommandChannel
// only while interacting (the server buffers them otherwise), and answers
// on the ResponseChannel.  Subclasses provide the numerics and register
// their parameters with the control network.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "app/control_network.h"
#include "net/network.h"
#include "proto/messages.h"

namespace discover::app {

struct AppConfig {
  std::string name = "app";
  std::string description;
  /// Pre-assigned identifier used to authenticate the application with the
  /// server (paper §4.1).  The server must know the same key.
  std::uint64_t auth_key = 0;
  /// User ACL shipped to the server at registration (paper §5.2.2).
  std::vector<security::AclEntry> acl;

  /// Virtual/real time one compute step takes.
  util::Duration step_time = util::milliseconds(1);
  /// Send an AppUpdate every N steps.
  std::uint32_t update_every = 5;
  /// Enter the interaction phase every N steps...
  std::uint32_t interact_every = 20;
  /// ...and stay in it this long before resuming computation.
  util::Duration interaction_window = util::milliseconds(2);
  /// Stop after this many steps (0 = run until stopped).
  std::uint64_t max_steps = 0;
};

class SteerableApp : public net::MessageHandler {
 public:
  SteerableApp(net::Network& network, AppConfig config);
  ~SteerableApp() override = default;

  /// Must be called with the NodeId returned by Network::add_node(this).
  void attach(net::NodeId self);
  /// Starts the registration handshake with `server`; the compute loop
  /// begins when the AppRegisterAck arrives.
  void connect(net::NodeId server);

  /// Terminates the run from outside the steering path (e.g. a grid
  /// resource manager cancelling the job).  Must be invoked in this app's
  /// execution context (Network::post to node()).
  void abort(const std::string& reason);

  void on_message(const net::Message& msg) override;

  // State accessors are safe to poll from outside the app's execution
  // context (benchmark/test observers on other threads); hence atomics.
  [[nodiscard]] net::NodeId node() const { return self_; }
  [[nodiscard]] bool registered() const {
    return registered_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool paused() const {
    return paused_.load(std::memory_order_acquire);
  }
  [[nodiscard]] proto::AppId app_id() const { return app_id_; }
  [[nodiscard]] std::uint64_t steps() const {
    return step_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] proto::AppPhase phase() const { return phase_; }
  [[nodiscard]] std::uint64_t commands_executed() const {
    return commands_executed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t updates_sent() const {
    return updates_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t checkpoints_taken() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ControlNetwork& control() const { return control_; }
  [[nodiscard]] const AppConfig& config() const { return config_; }
  /// Application-defined simulated time for updates.
  [[nodiscard]] virtual double sim_time() const {
    return static_cast<double>(step_);
  }

 protected:
  /// Register sensors/steerables; called once before registration.
  virtual void init_control(ControlNetwork& control) = 0;
  /// One iteration of the numerics.
  virtual void compute_step(std::uint64_t step) = 0;

  ControlNetwork control_;

 private:
  void tick();
  void schedule_tick(util::Duration delay);
  void enter_interaction();
  void resume_compute();
  void finish(const std::string& reason);
  void handle_command(const proto::AppCommand& cmd);
  void send_main(const proto::FramedMessage& msg);
  void send_update();
  void send_phase(proto::AppPhase phase);
  /// While paused: periodic phase re-announcements that keep the server's
  /// liveness clock for this application fresh.
  void send_keepalive();

  net::Network& network_;
  AppConfig config_;
  net::NodeId self_{0};
  net::NodeId server_{0};
  proto::AppId app_id_;
  proto::AppPhase phase_ = proto::AppPhase::computing;
  bool attached_ = false;
  std::atomic<bool> registered_{false};
  std::atomic<bool> paused_{false};
  std::atomic<bool> finished_{false};
  bool control_initialized_ = false;
  std::atomic<std::uint64_t> step_{0};
  std::atomic<std::uint64_t> commands_executed_{0};
  std::atomic<std::uint64_t> updates_sent_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

}  // namespace discover::app
