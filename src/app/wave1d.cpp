#include "app/wave1d.h"

#include <algorithm>
#include <cmath>

namespace discover::app {

Wave1DApp::Wave1DApp(net::Network& network, AppConfig config, int n)
    : SteerableApp(network, std::move(config)),
      n_(n),
      u_prev_(static_cast<std::size_t>(n), 0.0),
      u_(static_cast<std::size_t>(n), 0.0) {}

double Wave1DApp::energy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < u_.size(); ++i) {
    const double v = u_[i] - u_prev_[i];
    e += v * v + u_[i] * u_[i];
  }
  return e;
}

double Wave1DApp::peak_amplitude() const {
  double peak = 0.0;
  for (const double v : u_) peak = std::max(peak, std::abs(v));
  return peak;
}

void Wave1DApp::init_control(ControlNetwork& control) {
  control.bind_double("source_freq", "Hz", 0.5, 50.0, &source_freq_);
  control.bind_double("velocity", "1", 0.05, 0.95, &velocity_);
  control.add_sensor("energy", "1",
                     [this] { return proto::ParamValue{energy()}; });
  control.add_sensor("peak_amplitude", "1",
                     [this] { return proto::ParamValue{peak_amplitude()}; });
}

void Wave1DApp::compute_step(std::uint64_t step) {
  const double dt = 0.01;
  const double c2 = velocity_ * velocity_;
  std::vector<double> next(static_cast<std::size_t>(n_), 0.0);
  for (int i = 1; i < n_ - 1; ++i) {
    const auto s = static_cast<std::size_t>(i);
    next[s] = 2.0 * u_[s] - u_prev_[s] +
              c2 * (u_[s - 1] - 2.0 * u_[s] + u_[s + 1]);
  }
  // Ricker wavelet source near the left boundary, re-firing continuously.
  const double tau = std::fmod(static_cast<double>(step) * dt, 2.0) - 0.5;
  const double arg = M_PI * source_freq_ * tau;
  next[2] += (1.0 - 2.0 * arg * arg) * std::exp(-arg * arg);
  u_prev_ = std::move(u_);
  u_ = std::move(next);
  t_ += dt;
}

}  // namespace discover::app
