// Configurable synthetic application for load experiments: N parameters,
// tunable per-step CPU burn, no real numerics.  Used by the scalability
// benches (E1/E3) where the workload's *shape* (update rate, payload size)
// matters and its physics does not.
#pragma once

#include <vector>

#include "app/steerable_app.h"

namespace discover::app {

struct SyntheticSpec {
  int param_count = 4;       // steerable parameters exposed
  int metric_count = 8;      // extra sensors in every update
  int cpu_burn_iters = 100;  // floating-point ops per step (approximate)
};

class SyntheticApp final : public SteerableApp {
 public:
  SyntheticApp(net::Network& network, AppConfig config, SyntheticSpec spec);

  [[nodiscard]] double accumulator() const { return accumulator_; }

 protected:
  void init_control(ControlNetwork& control) override;
  void compute_step(std::uint64_t step) override;

 private:
  SyntheticSpec spec_;
  std::vector<double> params_;
  double accumulator_ = 1.0;
};

}  // namespace discover::app
