#include "app/inspiral.h"

#include <algorithm>
#include <cmath>

namespace discover::app {

InspiralApp::InspiralApp(net::Network& network, AppConfig config)
    : SteerableApp(network, std::move(config)) {}

double InspiralApp::orbital_frequency() const {
  // Kepler in geometric units: omega = r^{-3/2} / M.
  return 1.0 / (std::pow(separation_, 1.5) * total_mass_);
}

double InspiralApp::strain() const {
  // Quadrupole-order amplitude scaling ~ eta * M / r.
  return eta_ * total_mass_ / std::max(separation_, 1.0);
}

void InspiralApp::reset() {
  separation_ = 60.0;
  phase_ = 0.0;
}

void InspiralApp::init_control(ControlNetwork& control) {
  control.add_steerable(
      "total_mass", "Msun", 2.0, 200.0,
      [this] { return proto::ParamValue{total_mass_}; },
      [this](const proto::ParamValue& v) -> util::Status {
        if (const auto* d = std::get_if<double>(&v)) {
          total_mass_ = *d;
          reset();  // a new configuration restarts the inspiral
          return {};
        }
        return {util::Errc::invalid_argument, "expected double"};
      });
  control.add_steerable(
      "eta", "1", 0.01, 0.25,
      [this] { return proto::ParamValue{eta_}; },
      [this](const proto::ParamValue& v) -> util::Status {
        if (const auto* d = std::get_if<double>(&v)) {
          eta_ = *d;
          reset();
          return {};
        }
        return {util::Errc::invalid_argument, "expected double"};
      });
  control.add_sensor("separation", "M",
                     [this] { return proto::ParamValue{separation_}; });
  control.add_sensor("orbital_freq", "1/M", [this] {
    return proto::ParamValue{orbital_frequency()};
  });
  control.add_sensor("strain", "1",
                     [this] { return proto::ParamValue{strain()}; });
  control.add_sensor("merged", "bool",
                     [this] { return proto::ParamValue{merged()}; });
}

void InspiralApp::compute_step(std::uint64_t /*step*/) {
  if (merged()) return;  // ringdown: hold state
  const double dt = 1.0;
  // RK2 on dr/dt = -(64/5) eta / r^3 (geometric units, leading order).
  const auto drdt = [this](double r) {
    return -(64.0 / 5.0) * eta_ / std::max(r * r * r, 1e-9);
  };
  const double k1 = drdt(separation_);
  const double k2 = drdt(separation_ + 0.5 * dt * k1);
  separation_ = std::max(separation_ + dt * k2, 0.0);
  phase_ += orbital_frequency() * dt;
  t_ += dt;
}

}  // namespace discover::app
