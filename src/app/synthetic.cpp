#include "app/synthetic.h"

#include <cmath>

namespace discover::app {

SyntheticApp::SyntheticApp(net::Network& network, AppConfig config,
                           SyntheticSpec spec)
    : SteerableApp(network, std::move(config)),
      spec_(spec),
      params_(static_cast<std::size_t>(spec.param_count), 1.0) {}

void SyntheticApp::init_control(ControlNetwork& control) {
  for (int i = 0; i < spec_.param_count; ++i) {
    control.bind_double("param_" + std::to_string(i), "1", -1e9, 1e9,
                        &params_[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < spec_.metric_count; ++i) {
    control.add_sensor("metric_" + std::to_string(i), "1", [this, i] {
      return proto::ParamValue{accumulator_ + static_cast<double>(i)};
    });
  }
}

void SyntheticApp::compute_step(std::uint64_t step) {
  // A small, optimizer-resistant floating-point loop.
  double acc = accumulator_ + static_cast<double>(step % 7);
  for (int i = 0; i < spec_.cpu_burn_iters; ++i) {
    acc = acc * 1.000000119 + 1e-9;
    if (acc > 1e12) acc = 1.0;
  }
  accumulator_ = acc;
}

}  // namespace discover::app
