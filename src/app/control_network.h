// The application-side control network (paper §4, back end): "a control
// network of sensors, actuators and interaction agents superimposed on the
// application".
//
//  * Sensor           - reads one named quantity out of the running app.
//  * Actuator         - writes one named steerable parameter, with bounds.
//  * InteractionAgent - maps incoming middleware commands onto sensors and
//                       actuators and produces responses.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "proto/messages.h"
#include "util/result.h"

namespace discover::app {

struct Sensor {
  std::string name;
  std::string units;
  std::function<proto::ParamValue()> read;
};

struct Actuator {
  std::string name;
  double min_value = 0;
  double max_value = 0;
  std::function<util::Status(const proto::ParamValue&)> write;
};

/// Registry of sensors/actuators plus the interaction agent that executes
/// get_param/set_param/query_status commands against them.
class ControlNetwork {
 public:
  /// Read-only quantity.
  void add_sensor(std::string name, std::string units,
                  std::function<proto::ParamValue()> read);

  /// Steerable parameter: a sensor/actuator pair over the same name.
  /// Numeric writes outside [min,max] are rejected by the agent before the
  /// actuator runs.
  void add_steerable(std::string name, std::string units, double min_value,
                     double max_value,
                     std::function<proto::ParamValue()> read,
                     std::function<util::Status(const proto::ParamValue&)>
                         write);

  /// Convenience: bind a double variable directly as a steerable parameter.
  void bind_double(std::string name, std::string units, double min_value,
                   double max_value, double* variable);

  /// Interface advertised at registration and on query_status.
  [[nodiscard]] std::vector<proto::ParamSpec> param_specs() const;

  /// Numeric sensor snapshot for periodic updates.
  [[nodiscard]] std::map<std::string, double> metrics() const;

  /// The interaction agent: executes one command, producing the response
  /// fields (caller fills in app/request ids).  Only parameter commands are
  /// handled here; lifecycle commands are the application's business.
  [[nodiscard]] proto::AppResponse execute(const proto::AppCommand& cmd) const;

  [[nodiscard]] bool has_sensor(const std::string& name) const;
  [[nodiscard]] bool has_actuator(const std::string& name) const;

 private:
  std::map<std::string, Sensor> sensors_;
  std::map<std::string, Actuator> actuators_;
  std::vector<std::string> order_;  // registration order for stable specs
};

}  // namespace discover::app
