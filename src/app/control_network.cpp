#include "app/control_network.h"

namespace discover::app {

void ControlNetwork::add_sensor(std::string name, std::string units,
                                std::function<proto::ParamValue()> read) {
  Sensor s;
  s.name = name;
  s.units = std::move(units);
  s.read = std::move(read);
  if (sensors_.count(name) == 0 && actuators_.count(name) == 0) {
    order_.push_back(name);
  }
  sensors_[std::move(name)] = std::move(s);
}

void ControlNetwork::add_steerable(
    std::string name, std::string units, double min_value, double max_value,
    std::function<proto::ParamValue()> read,
    std::function<util::Status(const proto::ParamValue&)> write) {
  add_sensor(name, std::move(units), std::move(read));
  Actuator a;
  a.name = name;
  a.min_value = min_value;
  a.max_value = max_value;
  a.write = std::move(write);
  actuators_[std::move(name)] = std::move(a);
}

void ControlNetwork::bind_double(std::string name, std::string units,
                                 double min_value, double max_value,
                                 double* variable) {
  add_steerable(
      std::move(name), std::move(units), min_value, max_value,
      [variable] { return proto::ParamValue{*variable}; },
      [variable](const proto::ParamValue& v) -> util::Status {
        if (const auto* d = std::get_if<double>(&v)) {
          *variable = *d;
          return {};
        }
        if (const auto* i = std::get_if<std::int64_t>(&v)) {
          *variable = static_cast<double>(*i);
          return {};
        }
        return {util::Errc::invalid_argument, "expected numeric value"};
      });
}

std::vector<proto::ParamSpec> ControlNetwork::param_specs() const {
  std::vector<proto::ParamSpec> out;
  out.reserve(order_.size());
  for (const std::string& name : order_) {
    proto::ParamSpec spec;
    spec.name = name;
    const auto s = sensors_.find(name);
    if (s != sensors_.end()) {
      spec.value = s->second.read();
      spec.units = s->second.units;
    }
    const auto a = actuators_.find(name);
    if (a != actuators_.end()) {
      spec.steerable = true;
      spec.min_value = a->second.min_value;
      spec.max_value = a->second.max_value;
    }
    out.push_back(std::move(spec));
  }
  return out;
}

std::map<std::string, double> ControlNetwork::metrics() const {
  std::map<std::string, double> out;
  for (const auto& [name, sensor] : sensors_) {
    const proto::ParamValue v = sensor.read();
    if (const auto* d = std::get_if<double>(&v)) {
      out[name] = *d;
    } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
      out[name] = static_cast<double>(*i);
    } else if (const auto* b = std::get_if<bool>(&v)) {
      out[name] = *b ? 1.0 : 0.0;
    }
  }
  return out;
}

bool ControlNetwork::has_sensor(const std::string& name) const {
  return sensors_.count(name) != 0;
}

bool ControlNetwork::has_actuator(const std::string& name) const {
  return actuators_.count(name) != 0;
}

proto::AppResponse ControlNetwork::execute(
    const proto::AppCommand& cmd) const {
  proto::AppResponse resp;
  resp.app_id = cmd.app_id;
  resp.request_id = cmd.request_id;
  resp.param = cmd.param;

  switch (cmd.kind) {
    case proto::CommandKind::get_param: {
      const auto it = sensors_.find(cmd.param);
      if (it == sensors_.end()) {
        resp.ok = false;
        resp.message = "no such parameter: " + cmd.param;
        return resp;
      }
      resp.ok = true;
      resp.value = it->second.read();
      return resp;
    }
    case proto::CommandKind::set_param: {
      const auto it = actuators_.find(cmd.param);
      if (it == actuators_.end()) {
        resp.ok = false;
        resp.message = "parameter is not steerable: " + cmd.param;
        return resp;
      }
      // Bounds check numeric writes before touching the actuator.
      double numeric = 0;
      bool is_numeric = false;
      if (const auto* d = std::get_if<double>(&cmd.value)) {
        numeric = *d;
        is_numeric = true;
      } else if (const auto* i = std::get_if<std::int64_t>(&cmd.value)) {
        numeric = static_cast<double>(*i);
        is_numeric = true;
      }
      const Actuator& act = it->second;
      if (is_numeric && act.min_value < act.max_value &&
          (numeric < act.min_value || numeric > act.max_value)) {
        resp.ok = false;
        resp.message = "value out of range [" +
                       std::to_string(act.min_value) + ", " +
                       std::to_string(act.max_value) + "]";
        return resp;
      }
      const util::Status s = act.write(cmd.value);
      resp.ok = s.ok();
      if (!s.ok()) {
        resp.message = s.error().message;
      } else {
        resp.value = cmd.value;
      }
      return resp;
    }
    case proto::CommandKind::query_status: {
      resp.ok = true;
      resp.params = param_specs();
      return resp;
    }
    default:
      resp.ok = false;
      resp.message = std::string("command not handled by control network: ") +
                     proto::command_name(cmd.kind);
      return resp;
  }
}

}  // namespace discover::app
