#include "app/steerable_app.h"

#include "util/log.h"

namespace discover::app {

SteerableApp::SteerableApp(net::Network& network, AppConfig config)
    : network_(network), config_(std::move(config)) {}

void SteerableApp::attach(net::NodeId self) {
  self_ = self;
  attached_ = true;
}

void SteerableApp::connect(net::NodeId server) {
  server_ = server;
  if (!control_initialized_) {
    init_control(control_);
    control_initialized_ = true;
  }
  proto::AppRegister reg;
  reg.app_name = config_.name;
  reg.description = config_.description;
  reg.auth_key = config_.auth_key;
  reg.params = control_.param_specs();
  reg.acl = config_.acl;
  reg.update_period = config_.step_time *
                      static_cast<util::Duration>(config_.update_every);
  send_main(reg);
}

void SteerableApp::send_main(const proto::FramedMessage& msg) {
  network_.send(self_, server_, net::Channel::main_channel,
                proto::encode_framed(msg));
}

void SteerableApp::on_message(const net::Message& msg) {
  auto decoded = proto::decode_framed(msg.payload);
  if (!decoded.ok()) {
    DISCOVER_LOG(warn, "app") << config_.name << ": bad frame: "
                              << decoded.error();
    return;
  }
  const proto::FramedMessage& frame = decoded.value();
  if (const auto* ack = std::get_if<proto::AppRegisterAck>(&frame)) {
    if (!ack->accepted) {
      DISCOVER_LOG(warn, "app")
          << config_.name << ": registration rejected: " << ack->message;
      finished_ = true;
      return;
    }
    app_id_ = ack->app_id;
    registered_ = true;
    schedule_tick(config_.step_time);
    return;
  }
  if (const auto* cmd = std::get_if<proto::AppCommand>(&frame)) {
    handle_command(*cmd);
    return;
  }
}

void SteerableApp::schedule_tick(util::Duration delay) {
  network_.schedule(self_, delay, [this] { tick(); });
}

void SteerableApp::tick() {
  if (finished_ || paused_ || phase_ == proto::AppPhase::interacting) return;
  compute_step(step_);
  ++step_;
  if (config_.update_every != 0 && step_ % config_.update_every == 0) {
    send_update();
  }
  if (config_.max_steps != 0 && step_ >= config_.max_steps) {
    finish("completed " + std::to_string(step_) + " steps");
    return;
  }
  if (config_.interact_every != 0 && step_ % config_.interact_every == 0) {
    enter_interaction();
    return;
  }
  schedule_tick(config_.step_time);
}

void SteerableApp::enter_interaction() {
  phase_ = proto::AppPhase::interacting;
  send_phase(phase_);
  network_.schedule(self_, config_.interaction_window,
                    [this] { resume_compute(); });
}

void SteerableApp::resume_compute() {
  if (finished_) return;
  // A paused application parks in the interaction phase: it is not
  // computing, so the server may keep forwarding commands (notably the
  // eventual `resume`).  Leaving the phase as `computing` here would make
  // the daemon servlet buffer the resume command forever.
  if (paused_) return;
  phase_ = proto::AppPhase::computing;
  send_phase(phase_);
  schedule_tick(config_.step_time);
}

void SteerableApp::abort(const std::string& reason) { finish(reason); }

void SteerableApp::finish(const std::string& reason) {
  if (finished_) return;
  finished_ = true;
  phase_ = proto::AppPhase::finished;
  proto::AppDeregister msg;
  msg.app_id = app_id_;
  msg.reason = reason;
  send_main(msg);
}

void SteerableApp::send_update() {
  proto::AppUpdate update;
  update.app_id = app_id_;
  update.iteration = step_;
  update.sim_time = sim_time();
  update.phase = phase_;
  update.metrics = control_.metrics();
  send_main(update);
  ++updates_sent_;
}

void SteerableApp::send_keepalive() {
  if (!paused_ || finished_) return;
  send_phase(phase_);
  // Keep-alives arrive at the cadence the registration advertised, so the
  // server's liveness budget (a multiple of that period) is always met.
  const util::Duration period = std::max<util::Duration>(
      config_.step_time * static_cast<util::Duration>(
                              std::max<std::uint32_t>(config_.update_every, 1)),
      util::kMillisecond);
  network_.schedule(self_, period, [this] { send_keepalive(); });
}

void SteerableApp::send_phase(proto::AppPhase phase) {
  proto::AppPhaseNotice notice;
  notice.app_id = app_id_;
  notice.phase = phase;
  send_main(notice);
}

void SteerableApp::handle_command(const proto::AppCommand& cmd) {
  ++commands_executed_;
  proto::AppResponse resp;
  resp.app_id = app_id_;
  resp.request_id = cmd.request_id;

  switch (cmd.kind) {
    case proto::CommandKind::pause_app:
      if (!paused_) {
        paused_ = true;
        // Park in the interaction phase so buffered/new commands (and in
        // particular the future `resume`) keep flowing from the server.
        if (phase_ == proto::AppPhase::computing) {
          phase_ = proto::AppPhase::interacting;
          send_phase(phase_);
        }
        // A paused app emits no updates, so keep-alives carry its liveness
        // (the server deregisters silent applications).
        send_keepalive();
      }
      resp.ok = true;
      resp.message = "paused";
      break;
    case proto::CommandKind::resume_app:
      if (paused_) {
        paused_ = false;
        phase_ = proto::AppPhase::computing;
        send_phase(phase_);
        schedule_tick(config_.step_time);
      }
      resp.ok = true;
      resp.message = "running";
      break;
    case proto::CommandKind::stop_app:
      resp.ok = true;
      resp.message = "stopping";
      network_.send(self_, server_, net::Channel::response,
                    proto::encode_framed(resp));
      finish("stopped by " + cmd.user);
      return;
    case proto::CommandKind::checkpoint:
      ++checkpoints_;
      resp.ok = true;
      resp.message = "checkpoint " + std::to_string(checkpoints_) +
                     " at step " + std::to_string(step_);
      break;
    default:
      resp = control_.execute(cmd);
      break;
  }
  network_.send(self_, server_, net::Channel::response,
                proto::encode_framed(resp));
}

}  // namespace discover::app
