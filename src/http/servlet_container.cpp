#include "http/servlet_container.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "util/log.h"

namespace discover::http {

namespace {
constexpr const char* kSessionCookie = "DISCOVERID=";

std::uint64_t cookie_session_id(const HttpRequest& req) {
  const auto cookie = req.headers.get("Cookie");
  if (!cookie) return 0;
  const std::size_t at = cookie->find(kSessionCookie);
  if (at == std::string::npos) return 0;
  return std::strtoull(cookie->c_str() + at + std::strlen(kSessionCookie),
                       nullptr, 10);
}
}  // namespace

ServletContainer::ServletContainer(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {}

void ServletContainer::mount(std::string path_prefix,
                             std::shared_ptr<Servlet> servlet) {
  mounts_.emplace_back(std::move(path_prefix), std::move(servlet));
  // Longest prefix first so route() can take the first match.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
}

Servlet* ServletContainer::route(const std::string& path) const {
  for (const auto& [prefix, servlet] : mounts_) {
    if (path.rfind(prefix, 0) == 0) return servlet.get();
  }
  return nullptr;
}

HttpSession& ServletContainer::session_for(const HttpRequest& req,
                                           HttpResponse& resp) {
  const util::TimePoint now = network_.now();
  const std::uint64_t id = cookie_session_id(req);
  if (id != 0) {
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      it->second->touch(now);
      return *it->second;
    }
  }
  const std::uint64_t fresh = next_session_++;
  auto session = std::make_unique<HttpSession>(fresh, now);
  HttpSession& ref = *session;
  sessions_.emplace(fresh, std::move(session));
  resp.headers.set("Set-Cookie",
                   std::string(kSessionCookie) + std::to_string(fresh));
  return ref;
}

void DeferredHttpReply::complete(HttpResponse resp) {
  if (done_) return;
  done_ = true;
  // Carry over correlation and session headers set before deferral.
  for (const auto& [n, v] : seed_.headers.all()) {
    if (!resp.headers.get(n)) resp.headers.set(n, v);
  }
  resp.reason = reason_for(resp.status);
  util::Bytes wire = serialize(resp);
  if (on_complete_) on_complete_(wire);
  network_.send(self_, client_, net::Channel::http, std::move(wire));
}

void ServletContainer::cache_response(const DedupKey& key,
                                      const util::Bytes& wire) {
  if (!response_cache_.emplace(key, wire).second) return;
  response_cache_order_.push_back(key);
  while (response_cache_order_.size() > kResponseCacheCap) {
    response_cache_.erase(response_cache_order_.front());
    response_cache_order_.pop_front();
  }
}

void ServletContainer::handle(const net::Message& msg) {
  const util::TimePoint start = network_.now();
  auto parsed = parse_request(msg.payload);
  HttpResponse resp;
  bool deferred = false;
  DedupKey dedup_key{0, 0};
  bool has_dedup_key = false;
  if (!parsed.ok()) {
    resp.status = 400;
    resp.reason = reason_for(400);
    resp.body = util::to_bytes(parsed.error().message);
  } else {
    const HttpRequest& req = parsed.value();
    // Duplicate-request handling: a retried request (same client, same
    // X-Request-Id) replays the cached response; a copy whose deferred
    // dispatch is still in progress is swallowed (the eventual reply
    // answers every attempt).
    if (const auto rid = req.headers.get("X-Request-Id")) {
      dedup_key = {msg.src.value(),
                   std::strtoull(rid->c_str(), nullptr, 10)};
      has_dedup_key = dedup_key.second != 0;
    }
    if (has_dedup_key) {
      const auto cached = response_cache_.find(dedup_key);
      if (cached != response_cache_.end()) {
        ++dedup_hits_;
        network_.send(self_, msg.src, net::Channel::http, cached->second);
        return;
      }
      if (inflight_.count(dedup_key) != 0) {
        ++dedup_hits_;
        return;
      }
    }
    HttpSession& session = session_for(req, resp);
    // Correlate the reply with the request for the async client.
    if (const auto rid = req.headers.get("X-Request-Id")) {
      resp.headers.set("X-Request-Id", *rid);
    }
    Servlet* servlet = route(req.path_without_query());
    if (servlet == nullptr) {
      resp.status = 404;
      resp.reason = reason_for(404);
      resp.body = util::to_bytes("no servlet mounted at " + req.path);
    } else {
      // Trace ingress: continue a context carried by the client, otherwise
      // mint one here (subject to sampling).  The servlet — and everything
      // it triggers, including ORB calls — runs under this context.
      util::TraceContext trace;
      std::optional<util::Tracer::Scope> trace_scope;
      if (tracer_ != nullptr && tracer_->enabled() && servlet->traced()) {
        if (const auto th = req.headers.get("X-Trace-Context")) {
          if (const auto carried = util::parse_trace_header(*th)) {
            trace = tracer_->child_of(*carried);
          }
        }
        if (!trace.valid()) trace = tracer_->mint_root();
        if (trace.valid()) {
          // Set on the pre-service response so deferred replies carry it
          // too (the seed headers survive DeferredHttpReply::complete).
          resp.headers.set("X-Trace-Context",
                           util::encode_trace_header(trace));
        }
        trace_scope.emplace(*tracer_, trace);
      }
      ServletContext ctx;
      ctx.client = msg.src;
      ctx.session = &session;
      ctx.now = start;
      ctx.defer = [this, &deferred, &resp, &msg, dedup_key, has_dedup_key] {
        deferred = true;
        auto reply = std::make_shared<DeferredHttpReply>(network_, self_,
                                                         msg.src, resp);
        if (has_dedup_key) {
          inflight_.insert(dedup_key);
          reply->set_on_complete([this, dedup_key](const util::Bytes& wire) {
            inflight_.erase(dedup_key);
            cache_response(dedup_key, wire);
          });
        }
        return reply;
      };
      servlet->service(req, resp, ctx);
      resp.reason = reason_for(resp.status);
      if (trace.valid()) {
        tracer_->record(trace, "http:" + req.path_without_query(), start,
                        network_.now() - start);
      }
    }
  }
  ++requests_served_;
  service_latency_.record(network_.now() - start);
  if (!deferred) {
    util::Bytes wire = serialize(resp);
    if (has_dedup_key) cache_response(dedup_key, wire);
    network_.send(self_, msg.src, net::Channel::http, std::move(wire));
  }
}

void ServletContainer::expire_sessions(util::Duration max_idle) {
  const util::TimePoint now = network_.now();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second->last_active() > max_idle) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace discover::http
