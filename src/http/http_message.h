// HTTP/1.0-subset request/response model and text codec.
//
// Portal clients speak "standard HTTP communication using a series of HTTP
// GET and POST requests" (paper §4.1).  Each transport message carries
// exactly one complete HTTP message (the analogue of one request or reply on
// a keep-alive connection); the codec produces and parses real HTTP/1.0
// text, including Content-Length framing, so its parse cost is honest in
// the client-scalability experiments.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace discover::http {

enum class Method { get, post };
const char* method_name(Method m);

/// Header names are matched case-insensitively, as HTTP requires.
class HeaderMap {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& all()
      const {
    return headers_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> headers_;
};

struct HttpRequest {
  Method method = Method::get;
  std::string path;  // may include ?query
  HeaderMap headers;
  util::Bytes body;

  [[nodiscard]] std::string path_without_query() const;
  [[nodiscard]] std::optional<std::string> query_param(
      std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  util::Bytes body;
};

/// Serializes to HTTP/1.0 wire text (adds Content-Length).
util::Bytes serialize(const HttpRequest& req);
util::Bytes serialize(const HttpResponse& resp);

/// Parses one complete HTTP message; Content-Length must match the body.
util::Result<HttpRequest> parse_request(const util::Bytes& data);
util::Result<HttpResponse> parse_response(const util::Bytes& data);

const char* reason_for(int status);

}  // namespace discover::http
