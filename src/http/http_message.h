// HTTP/1.0-subset request/response model and text codec.
//
// Portal clients speak "standard HTTP communication using a series of HTTP
// GET and POST requests" (paper §4.1).  Each transport message carries
// exactly one complete HTTP message (the analogue of one request or reply on
// a keep-alive connection); the codec produces and parses real HTTP/1.0
// text, including Content-Length framing, so its parse cost is honest in
// the client-scalability experiments.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace discover::http {

enum class Method { get, post };
const char* method_name(Method m);

/// Header names are matched case-insensitively, as HTTP requires.
class HeaderMap {
 public:
  void set(std::string name, std::string value);
  void add(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& all()
      const {
    return headers_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> headers_;
};

struct HttpRequest {
  Method method = Method::get;
  std::string path;  // may include ?query
  HeaderMap headers;
  util::Bytes body;

  [[nodiscard]] std::string path_without_query() const;
  [[nodiscard]] std::optional<std::string> query_param(
      std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  util::Bytes body;
};

/// Serializes to HTTP/1.0 wire text (adds Content-Length).
util::Bytes serialize(const HttpRequest& req);
util::Bytes serialize(const HttpResponse& resp);

/// Parses one complete HTTP message; Content-Length must match the body.
util::Result<HttpRequest> parse_request(const util::Bytes& data);
util::Result<HttpResponse> parse_response(const util::Bytes& data);

/// Incremental HTTP/1.0 message framing for a real TCP byte stream.
///
/// parse_request/parse_response assume one complete message per buffer —
/// true on the in-process transports, violated by TCP segmentation, where a
/// message arrives in arbitrary fragments (or several messages arrive
/// glued together).  Feed bytes as they come off the socket; next() yields
/// each complete message's wire bytes, ready for the one-shot parsers.
///
/// Caps are enforced BEFORE buffering: a head that exceeds max_head_bytes
/// without terminating fails as soon as the excess arrives, and the
/// declared Content-Length is checked the moment the blank line completes —
/// a hostile length can never grow the buffer on promise alone.  After any
/// error the decoder stays failed (framing sync is lost; callers drop the
/// connection).
class StreamDecoder {
 public:
  explicit StreamDecoder(std::size_t max_head_bytes = 16 * 1024,
                         std::size_t max_body_bytes = 4u << 20);

  util::Status feed(const std::uint8_t* data, std::size_t size);
  util::Status feed(const util::Bytes& data) {
    return feed(data.data(), data.size());
  }

  /// Pops the next complete message (head + body), if any.
  std::optional<util::Bytes> next();

  [[nodiscard]] bool failed() const { return failed_; }
  /// Bytes buffered toward an incomplete message.
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  util::Status scan();

  std::size_t max_head_bytes_;
  std::size_t max_body_bytes_;
  util::Bytes buffer_;
  std::vector<util::Bytes> ready_;
  std::size_t scan_from_ = 0;  // resume point for the head-terminator search
  std::size_t head_len_ = 0;   // bytes through the blank line, once found
  std::size_t body_len_ = 0;   // declared Content-Length, once validated
  bool in_body_ = false;
  bool failed_ = false;
};

const char* reason_for(int status);

}  // namespace discover::http
