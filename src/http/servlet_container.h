// Routes incoming HTTP messages to mounted servlets and sends responses.
//
// Not a MessageHandler itself: the owning server node demultiplexes its
// channels and calls handle() for Channel::http traffic.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "http/servlet.h"
#include "net/network.h"
#include "util/stats.h"
#include "util/trace.h"

namespace discover::http {

/// Handle for completing an HTTP response after the servlet returned.
class DeferredHttpReply {
 public:
  DeferredHttpReply(net::Network& network, net::NodeId self,
                    net::NodeId client, HttpResponse seed)
      : network_(network), self_(self), client_(client),
        seed_(std::move(seed)) {}

  /// Sends `resp`, preserving correlation/cookie headers the container
  /// already put on the seed response.
  void complete(HttpResponse resp);

  /// Container hook: observes the final serialized response (fills the
  /// duplicate-request cache for deferred replies).
  void set_on_complete(std::function<void(const util::Bytes&)> fn) {
    on_complete_ = std::move(fn);
  }

 private:
  net::Network& network_;
  net::NodeId self_;
  net::NodeId client_;
  HttpResponse seed_;
  std::function<void(const util::Bytes&)> on_complete_;
  bool done_ = false;
};

class ServletContainer {
 public:
  ServletContainer(net::Network& network, net::NodeId self);

  /// Mounts a servlet at a path prefix; longest prefix wins.
  void mount(std::string path_prefix, std::shared_ptr<Servlet> servlet);

  /// Processes one HTTP request message and replies on Channel::http.
  void handle(const net::Message& msg);

  /// Server-side request-service latency (parse -> response serialized).
  [[nodiscard]] const util::LatencyHistogram& service_latency() const {
    return service_latency_;
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_;
  }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] bool has_session(std::uint64_t id) const {
    return sessions_.count(id) != 0;
  }

  /// Drops sessions idle longer than `max_idle`.
  void expire_sessions(util::Duration max_idle);

  /// Attaches the owning node's tracer.  Requests to traced() servlets run
  /// under a context parsed from the `X-Trace-Context` header (or minted
  /// here — servlets are the trace ingress), the response echoes the
  /// header, and a span is recorded per serviced request.
  void set_tracer(util::Tracer* tracer) { tracer_ = tracer; }

  /// Duplicate requests (client retries / network duplicates) answered from
  /// the response cache rather than re-executed.
  [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }

 private:
  // Responses are cached by (client node, X-Request-Id) so a retried or
  // duplicated request replays the original response instead of
  // re-executing the servlet.
  using DedupKey = std::pair<std::uint32_t, std::uint64_t>;

  HttpSession& session_for(const HttpRequest& req, HttpResponse& resp);
  Servlet* route(const std::string& path) const;
  void cache_response(const DedupKey& key, const util::Bytes& wire);

  net::Network& network_;
  net::NodeId self_;
  std::vector<std::pair<std::string, std::shared_ptr<Servlet>>> mounts_;
  std::unordered_map<std::uint64_t, std::unique_ptr<HttpSession>> sessions_;
  std::map<DedupKey, util::Bytes> response_cache_;
  std::deque<DedupKey> response_cache_order_;
  std::set<DedupKey> inflight_;  // deferred dispatches in progress
  static constexpr std::size_t kResponseCacheCap = 1024;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t next_session_ = 1;
  std::uint64_t requests_served_ = 0;
  util::LatencyHistogram service_latency_;
  util::Tracer* tracer_ = nullptr;
};

}  // namespace discover::http
