#include "http/http_message.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <system_error>

namespace discover::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Splits `text` into lines at CRLF up to the blank line; returns the byte
/// offset of the body, or npos on malformed input.
std::size_t split_head(std::string_view text, std::vector<std::string>& lines) {
  std::size_t pos = 0;
  while (true) {
    const std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string_view::npos) return std::string_view::npos;
    if (eol == pos) return eol + 2;  // blank line: body starts after it
    lines.emplace_back(text.substr(pos, eol - pos));
    pos = eol + 2;
  }
}

util::Status parse_headers(const std::vector<std::string>& lines,
                           std::size_t first, HeaderMap& out) {
  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return {util::Errc::protocol_error, "malformed header: " + line};
    }
    std::string name = line.substr(0, colon);
    std::size_t vstart = colon + 1;
    while (vstart < line.size() && line[vstart] == ' ') ++vstart;
    out.add(std::move(name), line.substr(vstart));
  }
  return {};
}

/// Strict Content-Length value parse: decimal digits only (after trimming
/// optional whitespace), no sign, no trailing garbage, no overflow.
std::optional<std::uint64_t> parse_content_length(std::string_view v) {
  while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
    v.remove_suffix(1);
  }
  while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
    v.remove_prefix(1);
  }
  if (v.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(v.data(), v.data() + v.size(), value, 10);
  if (ec != std::errc{} || ptr != v.data() + v.size()) return std::nullopt;
  return value;
}

util::Status check_body(const HeaderMap& headers, std::size_t actual) {
  std::optional<std::uint64_t> declared;
  for (const auto& [name, value] : headers.all()) {
    if (!iequals(name, "Content-Length")) continue;
    const auto parsed = parse_content_length(value);
    if (!parsed) {
      return {util::Errc::protocol_error, "bad Content-Length: " + value};
    }
    // Repeats with the same value are tolerated (serialize() appends its
    // own copy); disagreeing repeats are request smuggling, reject them.
    if (declared && *declared != *parsed) {
      return {util::Errc::protocol_error,
              "conflicting Content-Length headers"};
    }
    declared = parsed;
  }
  if (declared.value_or(0) != actual) {
    return {util::Errc::protocol_error, "Content-Length mismatch"};
  }
  return {};
}

}  // namespace

const char* method_name(Method m) { return m == Method::get ? "GET" : "POST"; }

void HeaderMap::set(std::string name, std::string value) {
  for (auto& [n, v] : headers_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::add(std::string name, std::string value) {
  headers_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : headers_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

std::string HttpRequest::path_without_query() const {
  const std::size_t q = path.find('?');
  return q == std::string::npos ? path : path.substr(0, q);
}

std::optional<std::string> HttpRequest::query_param(
    std::string_view key) const {
  const std::size_t q = path.find('?');
  if (q == std::string::npos) return std::nullopt;
  std::string_view qs = std::string_view(path).substr(q + 1);
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    qs = qs.substr(amp + 1);
  }
  return std::nullopt;
}

util::Bytes serialize(const HttpRequest& req) {
  std::string head;
  head.reserve(256 + req.body.size());
  head += method_name(req.method);
  head += ' ';
  head += req.path;
  head += " HTTP/1.0\r\n";
  for (const auto& [n, v] : req.headers.all()) {
    head += n;
    head += ": ";
    head += v;
    head += "\r\n";
  }
  head += "Content-Length: " + std::to_string(req.body.size()) + "\r\n\r\n";
  util::Bytes out = util::to_bytes(head);
  out.insert(out.end(), req.body.begin(), req.body.end());
  return out;
}

util::Bytes serialize(const HttpResponse& resp) {
  std::string head;
  head.reserve(256 + resp.body.size());
  head += "HTTP/1.0 " + std::to_string(resp.status) + " " + resp.reason +
          "\r\n";
  for (const auto& [n, v] : resp.headers.all()) {
    head += n;
    head += ": ";
    head += v;
    head += "\r\n";
  }
  head += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n\r\n";
  util::Bytes out = util::to_bytes(head);
  out.insert(out.end(), resp.body.begin(), resp.body.end());
  return out;
}

util::Result<HttpRequest> parse_request(const util::Bytes& data) {
  const std::string_view text(reinterpret_cast<const char*>(data.data()),
                              data.size());
  std::vector<std::string> lines;
  const std::size_t body_at = split_head(text, lines);
  if (body_at == std::string_view::npos || lines.empty()) {
    return util::Error{util::Errc::protocol_error, "truncated HTTP request"};
  }
  HttpRequest req;
  // Request line: METHOD SP path SP HTTP/1.x
  const std::string& rl = lines[0];
  const std::size_t sp1 = rl.find(' ');
  const std::size_t sp2 = rl.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return util::Error{util::Errc::protocol_error, "bad request line"};
  }
  const std::string method = rl.substr(0, sp1);
  if (method == "GET") {
    req.method = Method::get;
  } else if (method == "POST") {
    req.method = Method::post;
  } else {
    return util::Error{util::Errc::protocol_error,
                       "unsupported method " + method};
  }
  req.path = rl.substr(sp1 + 1, sp2 - sp1 - 1);
  if (auto s = parse_headers(lines, 1, req.headers); !s.ok()) {
    return s.error();
  }
  req.body.assign(data.begin() + static_cast<std::ptrdiff_t>(body_at),
                  data.end());
  if (auto s = check_body(req.headers, req.body.size()); !s.ok()) {
    return s.error();
  }
  return req;
}

util::Result<HttpResponse> parse_response(const util::Bytes& data) {
  const std::string_view text(reinterpret_cast<const char*>(data.data()),
                              data.size());
  std::vector<std::string> lines;
  const std::size_t body_at = split_head(text, lines);
  if (body_at == std::string_view::npos || lines.empty()) {
    return util::Error{util::Errc::protocol_error, "truncated HTTP response"};
  }
  HttpResponse resp;
  const std::string& sl = lines[0];
  if (sl.rfind("HTTP/1.", 0) != 0) {
    return util::Error{util::Errc::protocol_error, "bad status line"};
  }
  const std::size_t sp1 = sl.find(' ');
  if (sp1 == std::string::npos) {
    return util::Error{util::Errc::protocol_error, "bad status line"};
  }
  const std::size_t sp2 = sl.find(' ', sp1 + 1);
  resp.status = std::atoi(sl.c_str() + sp1 + 1);
  resp.reason = sp2 == std::string::npos ? "" : sl.substr(sp2 + 1);
  if (auto s = parse_headers(lines, 1, resp.headers); !s.ok()) {
    return s.error();
  }
  resp.body.assign(data.begin() + static_cast<std::ptrdiff_t>(body_at),
                   data.end());
  if (auto s = check_body(resp.headers, resp.body.size()); !s.ok()) {
    return s.error();
  }
  return resp;
}

StreamDecoder::StreamDecoder(std::size_t max_head_bytes,
                             std::size_t max_body_bytes)
    : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

util::Status StreamDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (failed_) {
    return {util::Errc::protocol_error, "stream already failed"};
  }
  buffer_.insert(buffer_.end(), data, data + size);
  util::Status st = scan();
  if (!st.ok()) failed_ = true;
  return st;
}

std::optional<util::Bytes> StreamDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  util::Bytes msg = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return msg;
}

util::Status StreamDecoder::scan() {
  while (true) {
    if (!in_body_) {
      // Look for the blank line.  Resume one byte shy of the previous scan
      // end so a CRLFCRLF split across feeds is still found exactly once.
      const std::string_view text(
          reinterpret_cast<const char*>(buffer_.data()), buffer_.size());
      const std::size_t start = scan_from_ > 3 ? scan_from_ - 3 : 0;
      const std::size_t pos = text.find("\r\n\r\n", start);
      if (pos == std::string_view::npos) {
        if (buffer_.size() > max_head_bytes_) {
          return {util::Errc::protocol_error,
                  "HTTP head exceeds " + std::to_string(max_head_bytes_) +
                      " bytes without terminating"};
        }
        scan_from_ = buffer_.size();
        return {};
      }
      head_len_ = pos + 4;
      if (head_len_ > max_head_bytes_) {
        return {util::Errc::protocol_error, "HTTP head too large"};
      }
      // The declared body length is judged NOW, before a single body byte
      // is waited for: reject-on-declare, not reject-on-arrival.
      std::optional<std::uint64_t> declared;
      std::size_t line_start = 0;
      const std::string_view head = text.substr(0, pos + 2);
      while (line_start < head.size()) {
        const std::size_t eol = head.find("\r\n", line_start);
        if (eol == std::string_view::npos) break;
        const std::string_view line = head.substr(line_start, eol - line_start);
        line_start = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) continue;
        if (!iequals(line.substr(0, colon), "Content-Length")) continue;
        const auto parsed = parse_content_length(line.substr(colon + 1));
        if (!parsed) {
          return {util::Errc::protocol_error,
                  "bad Content-Length: " + std::string(line)};
        }
        if (declared && *declared != *parsed) {
          return {util::Errc::protocol_error,
                  "conflicting Content-Length headers"};
        }
        declared = parsed;
      }
      body_len_ = static_cast<std::size_t>(declared.value_or(0));
      if (body_len_ > max_body_bytes_) {
        return {util::Errc::protocol_error,
                "declared Content-Length " + std::to_string(body_len_) +
                    " exceeds cap " + std::to_string(max_body_bytes_)};
      }
      in_body_ = true;
    }
    const std::size_t total = head_len_ + body_len_;
    if (buffer_.size() < total) return {};
    ready_.emplace_back(buffer_.begin(),
                        buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    in_body_ = false;
    head_len_ = 0;
    body_len_ = 0;
    scan_from_ = 0;
  }
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace discover::http
