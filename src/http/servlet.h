// Servlet interface and HTTP sessions.
//
// The DISCOVER server "builds on a commodity web server, and extends its
// functionality using Java servlets" (paper §4.1).  A Servlet here is the
// same idea: a handler mounted at a path prefix inside a ServletContainer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "http/http_message.h"
#include "net/address.h"
#include "util/clock.h"

namespace discover::http {

/// Per-client-connection state, created by the container on first contact
/// and identified by a DISCOVERID cookie.
class HttpSession {
 public:
  HttpSession(std::uint64_t id, util::TimePoint created)
      : id_(id), created_(created), last_active_(created) {}

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] util::TimePoint created() const { return created_; }
  [[nodiscard]] util::TimePoint last_active() const { return last_active_; }
  void touch(util::TimePoint now) { last_active_ = now; }

  void set_attribute(const std::string& key, std::string value) {
    attributes_[key] = std::move(value);
  }
  [[nodiscard]] std::string attribute(const std::string& key) const {
    const auto it = attributes_.find(key);
    return it != attributes_.end() ? it->second : std::string();
  }

 private:
  std::uint64_t id_;
  util::TimePoint created_;
  util::TimePoint last_active_;
  std::map<std::string, std::string> attributes_;
};

class DeferredHttpReply;

/// What the container hands a servlet alongside the request.
struct ServletContext {
  net::NodeId client;        // requesting node
  HttpSession* session;      // never null
  util::TimePoint now;
  /// Takes ownership of the response: after calling this, the inline
  /// `response` is ignored and the servlet must complete the returned
  /// handle (possibly after further network hops).
  std::function<std::shared_ptr<DeferredHttpReply>()> defer;
};

class Servlet {
 public:
  virtual ~Servlet() = default;
  virtual void service(const HttpRequest& request, HttpResponse& response,
                       ServletContext& ctx) = 0;
  /// Whether the container mints/propagates a trace context for requests to
  /// this servlet.  Introspection endpoints (/metrics, /trace) opt out so
  /// scraping does not pollute the span ring it reports.
  [[nodiscard]] virtual bool traced() const { return true; }
};

}  // namespace discover::http
