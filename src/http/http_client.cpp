#include "http/http_client.h"

namespace discover::http {

HttpClient::HttpClient(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {}

void HttpClient::request(net::NodeId server, HttpRequest req, Callback cb,
                         util::Duration timeout) {
  const std::uint64_t id = next_id_++;
  req.headers.set("X-Request-Id", std::to_string(id));
  if (const auto it = cookies_.find(server.value()); it != cookies_.end()) {
    req.headers.set("Cookie", it->second);
  }
  Pending pending;
  pending.cb = std::move(cb);
  pending.sent_at = network_.now();
  if (timeout > 0) {
    pending.timeout_timer = network_.schedule(self_, timeout, [this, id] {
      const auto it = pending_.find(id);
      if (it == pending_.end()) return;
      Callback cb2 = std::move(it->second.cb);
      pending_.erase(it);
      ++timeouts_;
      cb2(util::Error{util::Errc::timeout, "http request timed out"});
    });
  }
  pending_.emplace(id, std::move(pending));
  network_.send(self_, server, net::Channel::http, serialize(req));
}

void HttpClient::handle(const net::Message& msg) {
  auto parsed = parse_response(msg.payload);
  if (!parsed.ok()) return;  // drop unparseable responses
  const HttpResponse& resp = parsed.value();
  if (const auto cookie = resp.headers.get("Set-Cookie")) {
    cookies_[msg.src.value()] = *cookie;
  }
  const auto rid = resp.headers.get("X-Request-Id");
  if (!rid) return;
  const std::uint64_t id = std::strtoull(rid->c_str(), nullptr, 10);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already timed out
  rtt_.record(network_.now() - it->second.sent_at);
  if (it->second.timeout_timer.value() != 0) {
    network_.cancel(it->second.timeout_timer);
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(parsed).take());
}

std::string HttpClient::cookie_for(net::NodeId server) const {
  const auto it = cookies_.find(server.value());
  return it != cookies_.end() ? it->second : std::string();
}

}  // namespace discover::http
