#include "http/http_client.h"

namespace discover::http {

HttpClient::HttpClient(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {}

void HttpClient::request(net::NodeId server, HttpRequest req, Callback cb,
                         util::Duration timeout) {
  const std::uint64_t id = next_id_++;
  req.headers.set("X-Request-Id", std::to_string(id));
  if (const auto it = cookies_.find(server.value()); it != cookies_.end()) {
    req.headers.set("Cookie", it->second);
  }
  Pending pending;
  pending.cb = std::move(cb);
  pending.sent_at = network_.now();
  pending.wire = serialize(req);
  pending.server = server;
  pending.timeout = timeout;
  if (timeout > 0) {
    pending.timeout_timer = network_.schedule(
        self_, timeout, [this, id] { on_timeout(id); });
  }
  util::Bytes wire = pending.wire;
  pending_.emplace(id, std::move(pending));
  network_.send(self_, server, net::Channel::http, std::move(wire));
}

void HttpClient::on_timeout(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (retry_policy_.enabled() && p.attempts < retry_policy_.max_attempts) {
    const util::Duration delay =
        retry_policy_.backoff_after(p.attempts, retry_rng_);
    ++p.attempts;
    ++retries_;
    // Resend the identical bytes (same X-Request-Id) after backoff; a late
    // response landing during the backoff cancels this timer via handle().
    p.timeout_timer = network_.schedule(self_, delay, [this, id] {
      const auto rit = pending_.find(id);
      if (rit == pending_.end()) return;
      Pending& rp = rit->second;
      network_.send(self_, rp.server, net::Channel::http, rp.wire);
      rp.timeout_timer = network_.schedule(self_, rp.timeout,
                                           [this, id] { on_timeout(id); });
    });
    return;
  }
  Callback cb2 = std::move(p.cb);
  pending_.erase(it);
  ++timeouts_;
  cb2(util::Error{util::Errc::timeout, "http request timed out"});
}

void HttpClient::handle(const net::Message& msg) {
  auto parsed = parse_response(msg.payload);
  if (!parsed.ok()) return;  // drop unparseable responses
  const HttpResponse& resp = parsed.value();
  if (const auto cookie = resp.headers.get("Set-Cookie")) {
    cookies_[msg.src.value()] = *cookie;
  }
  const auto rid = resp.headers.get("X-Request-Id");
  if (!rid) return;
  const std::uint64_t id = std::strtoull(rid->c_str(), nullptr, 10);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // already timed out
  rtt_.record(network_.now() - it->second.sent_at);
  if (it->second.timeout_timer.value() != 0) {
    network_.cancel(it->second.timeout_timer);
  }
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(parsed).take());
}

std::string HttpClient::cookie_for(net::NodeId server) const {
  const auto it = cookies_.find(server.value());
  return it != cookies_.end() ? it->second : std::string();
}

}  // namespace discover::http
