// Asynchronous HTTP client used by portal clients.
//
// Actor-model friendly: request() never blocks; the owning node feeds
// response messages back through handle(), which fires the stored
// callback.  Requests carry an X-Request-Id header the container echoes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "http/http_message.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace discover::http {

class HttpClient {
 public:
  using Callback = std::function<void(util::Result<HttpResponse>)>;

  HttpClient(net::Network& network, net::NodeId self);

  /// Rebinds the owning node id (used when the owner learns its NodeId
  /// after construction).
  void set_self(net::NodeId self) { self_ = self; }

  /// Sends `req` to `server`; `cb` fires in the owner's context with the
  /// response, or with an error on timeout (0 disables the timeout).
  void request(net::NodeId server, HttpRequest req, Callback cb,
               util::Duration timeout = 0);

  /// Feeds one Channel::http message from the owner's demux.
  void handle(const net::Message& msg);

  /// Retransmission policy for timed-out requests.  Retries reuse the
  /// original X-Request-Id, so the container's duplicate-request cache
  /// replays instead of re-executing the servlet.
  void set_retry_policy(net::RetryPolicy policy) { retry_policy_ = policy; }
  void set_retry_seed(std::uint64_t seed) { retry_rng_ = util::Rng(seed); }

  /// Remembers Set-Cookie values per server and replays them — the portal's
  /// session continuity.
  [[nodiscard]] std::string cookie_for(net::NodeId server) const;

  [[nodiscard]] const util::LatencyHistogram& round_trip_latency() const {
    return rtt_;
  }
  [[nodiscard]] std::uint64_t requests_sent() const { return next_id_ - 1; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    Callback cb;
    util::TimePoint sent_at;
    net::TimerId timeout_timer{0};
    // Retransmission state: the serialized request, its target, the
    // per-attempt timeout, and the attempt count.
    util::Bytes wire;
    net::NodeId server{0};
    util::Duration timeout = 0;
    std::uint32_t attempts = 1;
  };

  void on_timeout(std::uint64_t id);

  net::Network& network_;
  net::NodeId self_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint32_t, std::string> cookies_;  // by server node
  net::RetryPolicy retry_policy_{};
  util::Rng retry_rng_{0x477bULL};
  std::uint64_t next_id_ = 1;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  util::LatencyHistogram rtt_;
};

}  // namespace discover::http
