// In-memory relational-style record store.
//
// Paper §6.3 ("Data Management and ownership across servers"): DISCOVER
// stores all generated data "in the form of records" in relational
// databases; client-requested output is owned by the requesting user at the
// client's local server, application-periodic data is owned by the
// application owner at the host server, and other authorized clients get
// read-only access.  This module reproduces those ownership/grant semantics;
// the session-archive and bench harness use it as their storage substrate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "util/clock.h"
#include "util/ids.h"
#include "util/result.h"

namespace discover::db {

using Value = std::variant<std::int64_t, double, std::string>;

std::string value_to_string(const Value& v);

struct RecordIdTag {};
using RecordId = util::StrongId<RecordIdTag, std::uint64_t>;

struct Record {
  RecordId id;
  std::string owner;
  util::TimePoint created_at = 0;
  std::map<std::string, Value> fields;
};

/// Field predicate for queries: field op literal.
struct Predicate {
  enum class Op { eq, ne, lt, le, gt, ge };
  std::string field;
  Op op = Op::eq;
  Value literal;

  [[nodiscard]] bool matches(const Record& r) const;
};

class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  RecordId insert(const std::string& owner, util::TimePoint now,
                  std::map<std::string, Value> fields);

  /// Owner-only mutation.
  util::Status update(RecordId id, const std::string& user,
                      std::map<std::string, Value> fields);
  util::Status remove(RecordId id, const std::string& user);

  /// Grants `user` read-only access to `id` (owner-initiated or
  /// server-initiated for collaboration members).
  util::Status grant_read(RecordId id, const std::string& user);

  /// Read with access check: owner or read-granted.
  [[nodiscard]] util::Result<Record> read(RecordId id,
                                          const std::string& user) const;

  /// All records visible to `user` matching every predicate.
  [[nodiscard]] std::vector<Record> query(
      const std::string& user, const std::vector<Predicate>& predicates) const;

  /// Unchecked scan for administrative/bench use.
  [[nodiscard]] std::vector<Record> scan_all() const;

 private:
  struct Row {
    Record record;
    std::set<std::string> readers;  // read-only grants
  };

  [[nodiscard]] bool can_read(const Row& row, const std::string& user) const;

  std::string name_;
  std::map<RecordId, Row> records_;
  std::uint64_t next_id_ = 1;
};

class RecordStore {
 public:
  /// Creates or returns the named table.
  Table& table(const std::string& name);
  [[nodiscard]] const Table* find_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace discover::db
