#include "db/record_store.h"

#include <cstdio>

namespace discover::db {

std::string value_to_string(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(x);
        } else if constexpr (std::is_same_v<T, double>) {
          char buf[48];
          std::snprintf(buf, sizeof(buf), "%g", x);
          return buf;
        } else {
          return x;
        }
      },
      v);
}

namespace {
/// Compares two Values; mixed int/double compare numerically, any other
/// cross-type comparison is false for eq and true for ne, false otherwise.
int compare(const Value& a, const Value& b, bool& comparable) {
  comparable = true;
  if (a.index() == b.index()) {
    if (a < b) return -1;
    if (b < a) return 1;
    return 0;
  }
  const auto as_double = [](const Value& v, bool& ok) -> double {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      ok = true;
      return static_cast<double>(*i);
    }
    if (const auto* d = std::get_if<double>(&v)) {
      ok = true;
      return *d;
    }
    ok = false;
    return 0;
  };
  bool ok_a = false;
  bool ok_b = false;
  const double da = as_double(a, ok_a);
  const double db = as_double(b, ok_b);
  if (ok_a && ok_b) {
    if (da < db) return -1;
    if (db < da) return 1;
    return 0;
  }
  comparable = false;
  return 0;
}
}  // namespace

bool Predicate::matches(const Record& r) const {
  const auto it = r.fields.find(field);
  if (it == r.fields.end()) return op == Op::ne;
  bool comparable = false;
  const int c = compare(it->second, literal, comparable);
  if (!comparable) return op == Op::ne;
  switch (op) {
    case Op::eq: return c == 0;
    case Op::ne: return c != 0;
    case Op::lt: return c < 0;
    case Op::le: return c <= 0;
    case Op::gt: return c > 0;
    case Op::ge: return c >= 0;
  }
  return false;
}

RecordId Table::insert(const std::string& owner, util::TimePoint now,
                       std::map<std::string, Value> fields) {
  const RecordId id{next_id_++};
  Row row;
  row.record.id = id;
  row.record.owner = owner;
  row.record.created_at = now;
  row.record.fields = std::move(fields);
  records_.emplace(id, std::move(row));
  return id;
}

util::Status Table::update(RecordId id, const std::string& user,
                           std::map<std::string, Value> fields) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return {util::Errc::not_found, "no record " + std::to_string(id.value())};
  }
  if (it->second.record.owner != user) {
    // Read-only grants never allow writes (paper §6.3).
    return {util::Errc::permission_denied,
            user + " does not own record " + std::to_string(id.value())};
  }
  for (auto& [k, v] : fields) it->second.record.fields[k] = std::move(v);
  return {};
}

util::Status Table::remove(RecordId id, const std::string& user) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return {util::Errc::not_found, "no record " + std::to_string(id.value())};
  }
  if (it->second.record.owner != user) {
    return {util::Errc::permission_denied,
            user + " does not own record " + std::to_string(id.value())};
  }
  records_.erase(it);
  return {};
}

util::Status Table::grant_read(RecordId id, const std::string& user) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return {util::Errc::not_found, "no record " + std::to_string(id.value())};
  }
  it->second.readers.insert(user);
  return {};
}

bool Table::can_read(const Row& row, const std::string& user) const {
  return row.record.owner == user || row.readers.count(user) != 0;
}

util::Result<Record> Table::read(RecordId id, const std::string& user) const {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    return util::Error{util::Errc::not_found,
                       "no record " + std::to_string(id.value())};
  }
  if (!can_read(it->second, user)) {
    return util::Error{util::Errc::permission_denied,
                       user + " may not read record " +
                           std::to_string(id.value())};
  }
  return it->second.record;
}

std::vector<Record> Table::query(
    const std::string& user, const std::vector<Predicate>& predicates) const {
  std::vector<Record> out;
  for (const auto& [_, row] : records_) {
    if (!can_read(row, user)) continue;
    bool all = true;
    for (const auto& p : predicates) {
      if (!p.matches(row.record)) {
        all = false;
        break;
      }
    }
    if (all) out.push_back(row.record);
  }
  return out;
}

std::vector<Record> Table::scan_all() const {
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [_, row] : records_) out.push_back(row.record);
  return out;
}

Table& RecordStore::table(const std::string& name) {
  const auto it = tables_.find(name);
  if (it != tables_.end()) return it->second;
  return tables_.emplace(name, Table(name)).first->second;
}

const Table* RecordStore::find_table(const std::string& name) const {
  const auto it = tables_.find(name);
  return it != tables_.end() ? &it->second : nullptr;
}

std::vector<std::string> RecordStore::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace discover::db
