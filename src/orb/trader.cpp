#include "orb/trader.h"

#include <sstream>

namespace discover::orb {

void encode(wire::Encoder& e, const ServiceOffer& offer) {
  e.u64(offer.offer_id);
  e.str(offer.service_type);
  encode(e, offer.ref);
  e.map(offer.properties,
        [](wire::Encoder& enc, const std::string& k) { enc.str(k); },
        [](wire::Encoder& enc, const std::string& v) { enc.str(v); });
}

ServiceOffer decode_service_offer(wire::Decoder& d) {
  ServiceOffer o;
  o.offer_id = d.u64();
  o.service_type = d.str();
  o.ref = decode_object_ref(d);
  o.properties = d.map<std::string, std::string>(
      [](wire::Decoder& dec) { return dec.str(); },
      [](wire::Decoder& dec) { return dec.str(); });
  return o;
}

util::Result<bool> match_constraint(
    const std::string& constraint,
    const std::map<std::string, std::string>& properties) {
  std::istringstream in(constraint);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  if (tokens.empty()) return true;

  std::size_t i = 0;
  bool result = true;
  while (i < tokens.size()) {
    bool clause;
    if (tokens[i] == "exist") {
      if (i + 1 >= tokens.size()) {
        return util::Error{util::Errc::invalid_argument,
                           "constraint: 'exist' needs a property name"};
      }
      clause = properties.count(tokens[i + 1]) != 0;
      i += 2;
    } else {
      if (i + 2 >= tokens.size()) {
        return util::Error{util::Errc::invalid_argument,
                           "constraint: expected 'name op value'"};
      }
      const std::string& name = tokens[i];
      const std::string& op = tokens[i + 1];
      const std::string& value = tokens[i + 2];
      const auto it = properties.find(name);
      if (op == "==") {
        clause = it != properties.end() && it->second == value;
      } else if (op == "!=") {
        clause = it == properties.end() || it->second != value;
      } else {
        return util::Error{util::Errc::invalid_argument,
                           "constraint: unknown operator " + op};
      }
      i += 3;
    }
    result = result && clause;
    if (i < tokens.size()) {
      if (tokens[i] != "and") {
        return util::Error{util::Errc::invalid_argument,
                           "constraint: expected 'and', got " + tokens[i]};
      }
      ++i;
      if (i == tokens.size()) {
        return util::Error{util::Errc::invalid_argument,
                           "constraint: trailing 'and'"};
      }
    }
  }
  return result;
}

void TraderService::dispatch(const std::string& method, wire::Decoder& args,
                             wire::Encoder& out, DispatchContext& ctx) {
  (void)ctx;
  if (method == "export_offer") {
    ServiceOffer offer;
    offer.service_type = args.str();
    offer.ref = decode_object_ref(args);
    offer.properties = args.map<std::string, std::string>(
        [](wire::Decoder& d) { return d.str(); },
        [](wire::Decoder& d) { return d.str(); });
    offer.offer_id = next_offer_++;
    const std::uint64_t id = offer.offer_id;
    offers_.emplace(id, std::move(offer));
    out.u64(id);
  } else if (method == "withdraw") {
    const std::uint64_t id = args.u64();
    if (offers_.erase(id) == 0) {
      throw OrbException{util::Errc::not_found,
                         "no offer " + std::to_string(id)};
    }
  } else if (method == "query") {
    const std::string type = args.str();
    const std::string constraint = args.str();
    std::vector<const ServiceOffer*> matches;
    for (const auto& [_, offer] : offers_) {
      if (offer.service_type != type) continue;
      auto m = match_constraint(constraint, offer.properties);
      if (!m.ok()) {
        throw OrbException{m.error().code, m.error().message};
      }
      if (m.value()) matches.push_back(&offer);
    }
    out.u32(static_cast<std::uint32_t>(matches.size()));
    for (const ServiceOffer* offer : matches) encode(out, *offer);
  } else {
    throw OrbException{util::Errc::invalid_argument,
                       "TraderService has no method " + method};
  }
}

void TraderClient::export_offer(
    const std::string& service_type, const ObjectRef& ref,
    const std::map<std::string, std::string>& properties, ExportCallback cb) {
  wire::Encoder args;
  args.str(service_type);
  encode(args, ref);
  args.map(properties,
           [](wire::Encoder& e, const std::string& k) { e.str(k); },
           [](wire::Encoder& e, const std::string& v) { e.str(v); });
  orb_->invoke(service_, "export_offer", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 cb(d.u64());
               },
               call_timeout_);
}

void TraderClient::withdraw(std::uint64_t offer_id, StatusCallback cb) {
  wire::Encoder args;
  args.u64(offer_id);
  orb_->invoke(service_, "withdraw", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 cb(r.ok() ? util::Status() : util::Status(r.error()));
               },
               call_timeout_);
}

void TraderClient::query(const std::string& service_type,
                         const std::string& constraint, QueryCallback cb) {
  wire::Encoder args;
  args.str(service_type);
  args.str(constraint);
  orb_->invoke(service_, "query", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 const std::uint32_t n = d.u32();
                 std::vector<ServiceOffer> offers;
                 offers.reserve(n);
                 for (std::uint32_t i = 0; i < n; ++i) {
                   offers.push_back(decode_service_offer(d));
                 }
                 cb(std::move(offers));
               },
               call_timeout_);
}

}  // namespace discover::orb
