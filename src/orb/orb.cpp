#include "orb/orb.h"

#include <cstdio>
#include <cstring>
#include <optional>

#include "util/log.h"
#include "wire/trace_ctx.h"

namespace discover::orb {

namespace {
constexpr std::uint32_t kGiopMagic = 0x47494F50;  // "GIOP"
constexpr std::uint8_t kRequest = 0;
constexpr std::uint8_t kReply = 1;
}  // namespace

std::string ObjectRef::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "IOR:%s@%u/%llu", interface.c_str(), node,
                static_cast<unsigned long long>(key));
  return buf;
}

void encode(wire::Encoder& e, const ObjectRef& ref) {
  e.u32(ref.node);
  e.u64(ref.key);
  e.str(ref.interface);
}

ObjectRef decode_object_ref(wire::Decoder& d) {
  ObjectRef ref;
  ref.node = d.u32();
  ref.key = d.u64();
  ref.interface = d.str();
  return ref;
}

GiopPeek peek_giop_header(const std::uint8_t* data, std::size_t size,
                          GiopHeader& out) {
  // Decoded by hand against the fixed CDR layout (u32 magic @0, u8 kind
  // @4, pad to 8, u64 request id @8, u64 servant key @16) instead of
  // wire::Decoder: the decoder throws one DecodeError for both "truncated"
  // and "garbage", exactly the distinction a byte-stream peek must make.
  out = GiopHeader{};
  if (size < 4) return GiopPeek::need_more;
  std::uint32_t magic;
  std::memcpy(&magic, data, sizeof(magic));
  if (magic != kGiopMagic) return GiopPeek::invalid;
  if (size < 5) return GiopPeek::need_more;
  const std::uint8_t kind = data[4];
  if (kind != kRequest && kind != kReply) return GiopPeek::invalid;
  out.is_request = kind == kRequest;
  if (size < 16) return GiopPeek::need_more;
  std::memcpy(&out.request_id, data + 8, sizeof(out.request_id));
  if (out.is_request) {
    if (size < 24) return GiopPeek::need_more;
    std::memcpy(&out.servant_key, data + 16, sizeof(out.servant_key));
  }
  out.valid = true;
  return GiopPeek::ok;
}

GiopHeader peek_giop_header(const util::Bytes& payload) {
  GiopHeader h;
  if (peek_giop_header(payload.data(), payload.size(), h) != GiopPeek::ok) {
    h = GiopHeader{};  // a short complete buffer is simply not a GIOP frame
  }
  return h;
}

void DeferredReply::reply(wire::Encoder result) {
  if (done_) return;
  done_ = true;
  orb_->send_reply(requester_, request_id_, true, std::move(result).take(),
                   util::Errc::ok, "");
}

void DeferredReply::raise(const OrbException& ex) {
  if (done_) return;
  done_ = true;
  orb_->send_reply(requester_, request_id_, false, {}, ex.code, ex.message);
}

Orb::Orb(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {}

net::TimerId Orb::schedule(util::Duration delay, std::function<void()> fn) {
  if (scheduler_) return scheduler_(delay, std::move(fn));
  return network_.schedule(self_, delay, std::move(fn));
}

ObjectRef Orb::activate(std::shared_ptr<Servant> servant) {
  const std::uint64_t key = mint_id(next_key_);
  ObjectRef ref;
  ref.node = self_.value();
  ref.key = key;
  ref.interface = servant->interface_name();
  servants_.emplace(key, std::move(servant));
  return ref;
}

void Orb::deactivate(std::uint64_t key) { servants_.erase(key); }

Servant* Orb::servant_of(std::uint64_t key) const {
  const auto it = servants_.find(key);
  return it != servants_.end() ? it->second.get() : nullptr;
}

void Orb::invoke(const ObjectRef& ref, const std::string& method,
                 wire::Encoder args, ResultCallback cb,
                 util::Duration timeout) {
  // A full table means callers fired calls whose callees never answered
  // (e.g. timeout==0 against a dead node).  Evict oldest-first so the
  // table — and the leak — stays bounded.
  while (!pending_.empty() && pending_.size() >= max_pending_) {
    complete(pending_.begin()->first,
             util::Error{util::Errc::resource_exhausted,
                         "pending-call table full"});
  }

  const std::uint64_t request_id = mint_id(next_request_);
  ++invocations_;

  wire::Encoder frame;
  frame.u32(kGiopMagic);
  frame.u8(kRequest);
  frame.u64(request_id);
  frame.u64(ref.key);
  frame.str(method);
  frame.bytes(std::move(args).take());
  util::TraceContext call_trace;
  if (tracer_ != nullptr && tracer_->current().valid()) {
    call_trace = tracer_->child_of(tracer_->current());
    wire::encode_trace_context(frame, call_trace);
  }
  util::Bytes payload = std::move(frame).take();
  bytes_marshalled_ += payload.size();

  PendingCall pending;
  pending.cb = std::move(cb);
  pending.sent_at = network_.now();
  pending.frame = payload;
  pending.dest = ref.host();
  pending.timeout = timeout;
  if (call_trace.valid()) {
    pending.trace = call_trace;
    pending.method = method;
  }
  if (timeout > 0) {
    pending.timeout_timer =
        schedule(timeout, [this, request_id] { on_timeout(request_id); });
  }
  pending_.emplace(request_id, std::move(pending));

  transmit(ref.host(), std::move(payload));
}

void Orb::transmit(net::NodeId dest, util::Bytes payload) {
  if (dest == self_) {
    // Collocated call: skip the network (and its traffic counters) but keep
    // marshalling and asynchrony so semantics match the remote path.  With
    // a loopback installed (sharded core) the frame goes through the node's
    // dispatcher instead, so the owning core serves it.
    if (loopback_) {
      net::Message msg;
      msg.src = self_;
      msg.dst = self_;
      msg.channel = net::Channel::giop;
      msg.payload = std::move(payload);
      loopback_(std::move(msg));
      return;
    }
    network_.post(self_, [this, payload = std::move(payload)] {
      net::Message msg;
      msg.src = self_;
      msg.dst = self_;
      msg.channel = net::Channel::giop;
      msg.payload = payload;
      handle(msg);
    });
  } else {
    network_.send(self_, dest, net::Channel::giop, std::move(payload));
  }
}

void Orb::on_timeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  PendingCall& p = it->second;
  if (retry_policy_.enabled() && p.attempts < retry_policy_.max_attempts) {
    const util::Duration delay =
        retry_policy_.backoff_after(p.attempts, retry_rng_);
    ++p.attempts;
    ++retries_;
    // Retransmit after backoff with the SAME request id: the callee's
    // reply cache recognizes it and a reply to any attempt completes the
    // call.  A late reply landing during the backoff cancels this timer
    // via complete().
    p.timeout_timer = schedule(delay, [this, request_id] {
      const auto rit = pending_.find(request_id);
      if (rit == pending_.end()) return;
      PendingCall& rp = rit->second;
      transmit(rp.dest, rp.frame);
      rp.timeout_timer = schedule(
          rp.timeout, [this, request_id] { on_timeout(request_id); });
    });
    return;
  }
  complete(request_id,
           util::Error{util::Errc::timeout, "orb call timed out"});
}

void Orb::handle(const net::Message& msg) {
  try {
    wire::Decoder d(msg.payload);
    if (d.u32() != kGiopMagic) return;
    const std::uint8_t kind = d.u8();
    if (kind == kRequest) {
      dispatch_request(msg, d);
    } else if (kind == kReply) {
      dispatch_reply(d);
    }
  } catch (const wire::DecodeError& err) {
    DISCOVER_LOG(warn, "orb") << "malformed giop frame: " << err.what();
  }
}

void Orb::dispatch_request(const net::Message& msg, wire::Decoder& d) {
  const std::uint64_t request_id = d.u64();
  const std::uint64_t key = d.u64();
  const std::string method = d.str();
  const util::Bytes args = d.bytes();
  const util::TraceContext wire_trace = wire::decode_trace_context_tail(d);

  // Deduplicate retransmitted / network-duplicated requests: replay the
  // cached reply instead of re-executing the servant, and swallow copies
  // of a request whose deferred dispatch is still in progress.
  const DedupKey dedup_key{msg.src.value(), request_id};
  const auto cached = reply_cache_.find(dedup_key);
  if (cached != reply_cache_.end()) {
    ++dedup_hits_;
    transmit(msg.src, cached->second);
    return;
  }
  if (inflight_requests_.count(dedup_key) != 0) {
    ++dedup_hits_;
    return;
  }

  Servant* servant = servant_of(key);
  if (servant == nullptr) {
    send_reply(msg.src, request_id, false, {}, util::Errc::not_found,
               "no servant with key " + std::to_string(key));
    return;
  }

  bool deferred = false;
  wire::Encoder out;
  DispatchContext ctx;
  ctx.requester = msg.src;
  ctx.now = network_.now();
  ctx.defer = [this, &deferred, &msg, request_id, dedup_key] {
    deferred = true;
    inflight_requests_.insert(dedup_key);
    return std::make_shared<DeferredReply>(this, msg.src, request_id);
  };

  // Serve under the wire-carried context: nested invokes and stage
  // histograms executed by the servant inherit the caller's trace.
  util::TraceContext serve_trace;
  std::optional<util::Tracer::Scope> scope;
  if (tracer_ != nullptr) {
    if (wire_trace.valid()) serve_trace = tracer_->child_of(wire_trace);
    scope.emplace(*tracer_, serve_trace);
  }

  try {
    wire::Decoder arg_decoder(args);
    servant->dispatch(method, arg_decoder, out, ctx);
  } catch (const OrbException& ex) {
    send_reply(msg.src, request_id, false, {}, ex.code, ex.message);
    return;
  } catch (const wire::DecodeError& err) {
    send_reply(msg.src, request_id, false, {}, util::Errc::protocol_error,
               err.what());
    return;
  }
  if (serve_trace.valid()) {
    tracer_->record(serve_trace, "orb.serve:" + method, ctx.now,
                    network_.now() - ctx.now);
  }
  if (!deferred) {
    send_reply(msg.src, request_id, true, std::move(out).take(),
               util::Errc::ok, "");
  }
}

void Orb::send_reply(net::NodeId to, std::uint64_t request_id, bool ok,
                     const util::Bytes& body, util::Errc code,
                     const std::string& error_message) {
  wire::Encoder frame;
  frame.u32(kGiopMagic);
  frame.u8(kReply);
  frame.u64(request_id);
  frame.boolean(ok);
  if (ok) {
    frame.bytes(body);
  } else {
    frame.u8(static_cast<std::uint8_t>(code));
    frame.str(error_message);
  }
  util::Bytes payload = std::move(frame).take();
  bytes_marshalled_ += payload.size();

  cache_reply({to.value(), request_id}, payload);
  inflight_requests_.erase({to.value(), request_id});
  transmit(to, std::move(payload));
}

void Orb::cache_reply(const DedupKey& key, const util::Bytes& payload) {
  if (!reply_cache_.emplace(key, payload).second) return;
  reply_cache_order_.push_back(key);
  while (reply_cache_order_.size() > kReplyCacheCap) {
    reply_cache_.erase(reply_cache_order_.front());
    reply_cache_order_.pop_front();
  }
}

void Orb::dispatch_reply(wire::Decoder& d) {
  const std::uint64_t request_id = d.u64();
  const bool ok = d.boolean();
  if (ok) {
    complete(request_id, d.bytes());
  } else {
    const auto code = static_cast<util::Errc>(d.u8());
    complete(request_id, util::Error{code, d.str()});
  }
}

void Orb::complete(std::uint64_t request_id,
                   util::Result<util::Bytes> result) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // timed out earlier
  call_latency_.record(network_.now() - it->second.sent_at);
  if (tracer_ != nullptr && it->second.trace.valid()) {
    tracer_->record(it->second.trace, "orb:" + it->second.method,
                    it->second.sent_at,
                    network_.now() - it->second.sent_at);
  }
  if (it->second.timeout_timer.value() != 0) {
    network_.cancel(it->second.timeout_timer);
  }
  ResultCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(result));
}

}  // namespace discover::orb
