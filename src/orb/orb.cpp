#include "orb/orb.h"

#include <cstdio>

#include "util/log.h"

namespace discover::orb {

namespace {
constexpr std::uint32_t kGiopMagic = 0x47494F50;  // "GIOP"
constexpr std::uint8_t kRequest = 0;
constexpr std::uint8_t kReply = 1;
}  // namespace

std::string ObjectRef::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "IOR:%s@%u/%llu", interface.c_str(), node,
                static_cast<unsigned long long>(key));
  return buf;
}

void encode(wire::Encoder& e, const ObjectRef& ref) {
  e.u32(ref.node);
  e.u64(ref.key);
  e.str(ref.interface);
}

ObjectRef decode_object_ref(wire::Decoder& d) {
  ObjectRef ref;
  ref.node = d.u32();
  ref.key = d.u64();
  ref.interface = d.str();
  return ref;
}

void DeferredReply::reply(wire::Encoder result) {
  if (done_) return;
  done_ = true;
  orb_->send_reply(requester_, request_id_, true, std::move(result).take(),
                   util::Errc::ok, "");
}

void DeferredReply::raise(const OrbException& ex) {
  if (done_) return;
  done_ = true;
  orb_->send_reply(requester_, request_id_, false, {}, ex.code, ex.message);
}

Orb::Orb(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {}

ObjectRef Orb::activate(std::shared_ptr<Servant> servant) {
  const std::uint64_t key = next_key_++;
  ObjectRef ref;
  ref.node = self_.value();
  ref.key = key;
  ref.interface = servant->interface_name();
  servants_.emplace(key, std::move(servant));
  return ref;
}

void Orb::deactivate(std::uint64_t key) { servants_.erase(key); }

Servant* Orb::servant_of(std::uint64_t key) const {
  const auto it = servants_.find(key);
  return it != servants_.end() ? it->second.get() : nullptr;
}

void Orb::invoke(const ObjectRef& ref, const std::string& method,
                 wire::Encoder args, ResultCallback cb,
                 util::Duration timeout) {
  const std::uint64_t request_id = next_request_++;
  ++invocations_;

  wire::Encoder frame;
  frame.u32(kGiopMagic);
  frame.u8(kRequest);
  frame.u64(request_id);
  frame.u64(ref.key);
  frame.str(method);
  frame.bytes(std::move(args).take());
  util::Bytes payload = std::move(frame).take();
  bytes_marshalled_ += payload.size();

  PendingCall pending;
  pending.cb = std::move(cb);
  pending.sent_at = network_.now();
  if (timeout > 0) {
    pending.timeout_timer =
        network_.schedule(self_, timeout, [this, request_id] {
          complete(request_id,
                   util::Error{util::Errc::timeout, "orb call timed out"});
        });
  }
  pending_.emplace(request_id, std::move(pending));

  if (ref.node == self_.value()) {
    // Collocated call: skip the network (and its traffic counters) but keep
    // marshalling and asynchrony so semantics match the remote path.
    network_.post(self_, [this, payload = std::move(payload)] {
      net::Message msg;
      msg.src = self_;
      msg.dst = self_;
      msg.channel = net::Channel::giop;
      msg.payload = payload;
      handle(msg);
    });
  } else {
    network_.send(self_, ref.host(), net::Channel::giop, std::move(payload));
  }
}

void Orb::handle(const net::Message& msg) {
  try {
    wire::Decoder d(msg.payload);
    if (d.u32() != kGiopMagic) return;
    const std::uint8_t kind = d.u8();
    if (kind == kRequest) {
      dispatch_request(msg, d);
    } else if (kind == kReply) {
      dispatch_reply(d);
    }
  } catch (const wire::DecodeError& err) {
    DISCOVER_LOG(warn, "orb") << "malformed giop frame: " << err.what();
  }
}

void Orb::dispatch_request(const net::Message& msg, wire::Decoder& d) {
  const std::uint64_t request_id = d.u64();
  const std::uint64_t key = d.u64();
  const std::string method = d.str();
  const util::Bytes args = d.bytes();

  Servant* servant = servant_of(key);
  if (servant == nullptr) {
    send_reply(msg.src, request_id, false, {}, util::Errc::not_found,
               "no servant with key " + std::to_string(key));
    return;
  }

  bool deferred = false;
  wire::Encoder out;
  DispatchContext ctx;
  ctx.requester = msg.src;
  ctx.now = network_.now();
  ctx.defer = [this, &deferred, &msg, request_id] {
    deferred = true;
    return std::make_shared<DeferredReply>(this, msg.src, request_id);
  };

  try {
    wire::Decoder arg_decoder(args);
    servant->dispatch(method, arg_decoder, out, ctx);
  } catch (const OrbException& ex) {
    send_reply(msg.src, request_id, false, {}, ex.code, ex.message);
    return;
  } catch (const wire::DecodeError& err) {
    send_reply(msg.src, request_id, false, {}, util::Errc::protocol_error,
               err.what());
    return;
  }
  if (!deferred) {
    send_reply(msg.src, request_id, true, std::move(out).take(),
               util::Errc::ok, "");
  }
}

void Orb::send_reply(net::NodeId to, std::uint64_t request_id, bool ok,
                     const util::Bytes& body, util::Errc code,
                     const std::string& error_message) {
  wire::Encoder frame;
  frame.u32(kGiopMagic);
  frame.u8(kReply);
  frame.u64(request_id);
  frame.boolean(ok);
  if (ok) {
    frame.bytes(body);
  } else {
    frame.u8(static_cast<std::uint8_t>(code));
    frame.str(error_message);
  }
  util::Bytes payload = std::move(frame).take();
  bytes_marshalled_ += payload.size();

  if (to == self_) {
    network_.post(self_, [this, payload = std::move(payload)] {
      net::Message msg;
      msg.src = self_;
      msg.dst = self_;
      msg.channel = net::Channel::giop;
      msg.payload = payload;
      handle(msg);
    });
  } else {
    network_.send(self_, to, net::Channel::giop, std::move(payload));
  }
}

void Orb::dispatch_reply(wire::Decoder& d) {
  const std::uint64_t request_id = d.u64();
  const bool ok = d.boolean();
  if (ok) {
    complete(request_id, d.bytes());
  } else {
    const auto code = static_cast<util::Errc>(d.u8());
    complete(request_id, util::Error{code, d.str()});
  }
}

void Orb::complete(std::uint64_t request_id,
                   util::Result<util::Bytes> result) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // timed out earlier
  call_latency_.record(network_.now() - it->second.sent_at);
  if (it->second.timeout_timer.value() != 0) {
    network_.cancel(it->second.timeout_timer);
  }
  ResultCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  cb(std::move(result));
}

}  // namespace discover::orb
