#include "orb/naming.h"

namespace discover::orb {

void NamingService::dispatch(const std::string& method, wire::Decoder& args,
                             wire::Encoder& out, DispatchContext& ctx) {
  (void)ctx;
  if (method == "bind" || method == "rebind") {
    const std::string name = args.str();
    const ObjectRef ref = decode_object_ref(args);
    if (method == "bind" && bindings_.count(name) != 0) {
      throw OrbException{util::Errc::already_exists,
                         "name already bound: " + name};
    }
    bindings_[name] = ref;
  } else if (method == "unbind") {
    const std::string name = args.str();
    if (bindings_.erase(name) == 0) {
      throw OrbException{util::Errc::not_found, "name not bound: " + name};
    }
  } else if (method == "resolve") {
    const std::string name = args.str();
    const auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      throw OrbException{util::Errc::not_found, "name not bound: " + name};
    }
    encode(out, it->second);
  } else if (method == "list") {
    out.u32(static_cast<std::uint32_t>(bindings_.size()));
    for (const auto& [name, ref] : bindings_) {
      out.str(name);
      encode(out, ref);
    }
  } else {
    throw OrbException{util::Errc::invalid_argument,
                       "NamingService has no method " + method};
  }
}

namespace {
void expect_ok(util::Result<util::Bytes> r,
               const NamingClient::StatusCallback& cb) {
  if (!r.ok()) {
    cb(r.error());
  } else {
    cb(util::Status());
  }
}
}  // namespace

void NamingClient::bind(const std::string& name, const ObjectRef& ref,
                        StatusCallback cb) {
  wire::Encoder args;
  args.str(name);
  encode(args, ref);
  orb_->invoke(service_, "bind", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 expect_ok(std::move(r), cb);
               },
               call_timeout_);
}

void NamingClient::rebind(const std::string& name, const ObjectRef& ref,
                          StatusCallback cb) {
  wire::Encoder args;
  args.str(name);
  encode(args, ref);
  orb_->invoke(service_, "rebind", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 expect_ok(std::move(r), cb);
               },
               call_timeout_);
}

void NamingClient::unbind(const std::string& name, StatusCallback cb) {
  wire::Encoder args;
  args.str(name);
  orb_->invoke(service_, "unbind", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 expect_ok(std::move(r), cb);
               },
               call_timeout_);
}

void NamingClient::resolve(const std::string& name, RefCallback cb) {
  wire::Encoder args;
  args.str(name);
  orb_->invoke(service_, "resolve", std::move(args),
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 cb(decode_object_ref(d));
               },
               call_timeout_);
}

void NamingClient::list(ListCallback cb) {
  orb_->invoke(service_, "list", wire::Encoder{},
               [cb = std::move(cb)](util::Result<util::Bytes> r) {
                 if (!r.ok()) {
                   cb(r.error());
                   return;
                 }
                 wire::Decoder d(r.value());
                 std::vector<std::pair<std::string, ObjectRef>> out;
                 const std::uint32_t n = d.u32();
                 out.reserve(n);
                 for (std::uint32_t i = 0; i < n; ++i) {
                   std::string name = d.str();
                   ObjectRef ref = decode_object_ref(d);
                   out.emplace_back(std::move(name), ref);
                 }
                 cb(std::move(out));
               },
               call_timeout_);
}

}  // namespace discover::orb
