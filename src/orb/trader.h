// CORBA-trader-service analogue (paper §5.2.1): service offers are
// (service-type, object reference, property list) triples; clients query by
// service type plus a property constraint.  DISCOVER servers publish
// themselves under service type "DISCOVER" and discover peers at runtime.
//
// The constraint language is the subset the middleware needs:
//   ""                      matches everything
//   "name == value"         property equality
//   "name != value"         property inequality
//   "exist name"            property presence
// joined with "and".  (The full OMG constraint language has arithmetic and
// preferences; nothing in the paper's usage requires them.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "orb/orb.h"

namespace discover::orb {

struct ServiceOffer {
  std::uint64_t offer_id = 0;
  std::string service_type;
  ObjectRef ref;
  std::map<std::string, std::string> properties;

  friend bool operator==(const ServiceOffer&, const ServiceOffer&) = default;
};

void encode(wire::Encoder& e, const ServiceOffer& offer);
ServiceOffer decode_service_offer(wire::Decoder& d);

/// Evaluates the constraint subset against a property list.  Returns an
/// error for syntactically invalid constraints.
util::Result<bool> match_constraint(
    const std::string& constraint,
    const std::map<std::string, std::string>& properties);

class TraderService final : public Servant {
 public:
  [[nodiscard]] std::string interface_name() const override {
    return "TraderService";
  }

  // Methods: export_offer(type, ref, props) -> offer_id,
  // withdraw(offer_id), query(type, constraint) -> vector<ServiceOffer>.
  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, DispatchContext& ctx) override;

  [[nodiscard]] std::size_t offer_count() const { return offers_.size(); }

 private:
  std::map<std::uint64_t, ServiceOffer> offers_;
  std::uint64_t next_offer_ = 1;
};

/// Typed client stubs for TraderService.
class TraderClient {
 public:
  TraderClient(Orb& orb, ObjectRef service) : orb_(&orb),
                                              service_(std::move(service)) {}
  TraderClient() = default;

  using ExportCallback = std::function<void(util::Result<std::uint64_t>)>;
  using QueryCallback =
      std::function<void(util::Result<std::vector<ServiceOffer>>)>;
  using StatusCallback = std::function<void(util::Status)>;

  void export_offer(const std::string& service_type, const ObjectRef& ref,
                    const std::map<std::string, std::string>& properties,
                    ExportCallback cb);
  void withdraw(std::uint64_t offer_id, StatusCallback cb);
  void query(const std::string& service_type, const std::string& constraint,
             QueryCallback cb);

  [[nodiscard]] bool configured() const { return service_.valid(); }

  /// Per-call deadline on every trader invocation.  0 (the legacy default)
  /// waits forever — on a lossy link that wedges callers whose next step
  /// lives in the callback, so servers set this to their ORB call timeout.
  void set_call_timeout(util::Duration t) { call_timeout_ = t; }

 private:
  Orb* orb_ = nullptr;
  ObjectRef service_;
  util::Duration call_timeout_ = 0;
};

}  // namespace discover::orb
