// Interoperable-object-reference analogue: enough location information for
// any node to invoke a servant anywhere in the network.
#pragma once

#include <cstdint>
#include <string>

#include "net/address.h"
#include "wire/cdr.h"

namespace discover::orb {

struct ObjectRef {
  std::uint32_t node = 0;   // NodeId value hosting the servant
  std::uint64_t key = 0;    // servant key within that node's Orb
  std::string interface;    // e.g. "DiscoverCorbaServer", "CorbaProxy"

  [[nodiscard]] bool valid() const { return key != 0; }
  [[nodiscard]] net::NodeId host() const { return net::NodeId{node}; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

void encode(wire::Encoder& e, const ObjectRef& ref);
ObjectRef decode_object_ref(wire::Decoder& d);

}  // namespace discover::orb
