// A small object request broker.
//
// SUBSTITUTION NOTE (DESIGN.md §2): stands in for the commercial CORBA ORB
// + IIOP of the original system.  It reproduces the invocation model the
// middleware depends on — location-transparent request/reply on named
// methods of remote servants, CDR marshalling, GIOP-style framed messages
// on their own channel — and adds per-call accounting so the ORB-overhead
// ablation (bench A1) can compare it against the raw framed protocol.
//
// Asynchronous by construction: invoke() returns immediately and the reply
// callback fires in the caller node's context.  Servants may answer inline
// or defer (needed when serving a request requires another network hop,
// e.g. CorbaProxy::send_command forwarding to the application).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/network.h"
#include "net/retry.h"
#include "orb/ior.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/trace.h"
#include "wire/cdr.h"

namespace discover::orb {

class Orb;

/// Remote-exception payload: an Errc + message marshalled in the reply.
struct OrbException {
  util::Errc code = util::Errc::internal;
  std::string message;
};

/// Handle for completing a deferred dispatch later.
class DeferredReply {
 public:
  DeferredReply(Orb* orb, net::NodeId requester, std::uint64_t request_id)
      : orb_(orb), requester_(requester), request_id_(request_id) {}

  void reply(wire::Encoder result);
  void raise(const OrbException& ex);

 private:
  Orb* orb_;
  net::NodeId requester_;
  std::uint64_t request_id_;
  bool done_ = false;
};

struct DispatchContext {
  net::NodeId requester;
  util::TimePoint now;
  /// Call to take ownership of the reply; after this the inline `out`
  /// encoder is ignored and the servant must complete the handle.
  std::function<std::shared_ptr<DeferredReply>()> defer;
};

class Servant {
 public:
  virtual ~Servant() = default;
  [[nodiscard]] virtual std::string interface_name() const = 0;
  /// Decode `args`, execute, encode the result into `out`.  Throw
  /// OrbException for application-level errors; wire::DecodeError is mapped
  /// to a protocol error automatically.
  virtual void dispatch(const std::string& method, wire::Decoder& args,
                        wire::Encoder& out, DispatchContext& ctx) = 0;
};

/// Result of a non-destructive look at a GIOP frame header: enough to route
/// the frame to the core that owns the servant (requests) or the pending
/// call (replies) without decoding the body.  `valid` is false for frames
/// that are not well-formed GIOP — those fall back to the caller's default.
struct GiopHeader {
  bool valid = false;
  bool is_request = false;
  std::uint64_t request_id = 0;
  std::uint64_t servant_key = 0;  // requests only
};

/// Verdict of peeking at a (possibly partial) GIOP stream prefix.  A real
/// TCP segment can end anywhere, so "not enough bytes yet" must be
/// distinguishable from "not GIOP": a router that treated a short prefix
/// as malformed would misroute the frame once the rest arrived.
enum class GiopPeek { ok, need_more, invalid };

/// Resumable header peek: classifies whatever prefix has arrived so far.
/// Returns ok with `out` filled once enough bytes are present (16 for a
/// reply, 24 for a request), need_more on a clean truncation, invalid on
/// bad magic / unknown message kind.
[[nodiscard]] GiopPeek peek_giop_header(const std::uint8_t* data,
                                        std::size_t size, GiopHeader& out);

/// Complete-buffer convenience: a truncated buffer is invalid here, since
/// the caller asserts the frame is whole.
[[nodiscard]] GiopHeader peek_giop_header(const util::Bytes& payload);

class Orb {
 public:
  using ResultCallback =
      std::function<void(util::Result<util::Bytes>)>;  // reply body bytes
  using Scheduler =
      std::function<net::TimerId(util::Duration, std::function<void()>)>;
  using Loopback = std::function<void(net::Message)>;

  Orb(net::Network& network, net::NodeId self);

  /// Activates a servant; the returned ref is valid network-wide.
  ObjectRef activate(std::shared_ptr<Servant> servant);
  void deactivate(std::uint64_t key);
  [[nodiscard]] Servant* servant_of(std::uint64_t key) const;

  /// Invokes `method` on the servant behind `ref`.  Local refs short-circuit
  /// through the same dispatch path (still paying marshalling, as a real ORB
  /// collocated call would without POA shortcuts).
  void invoke(const ObjectRef& ref, const std::string& method,
              wire::Encoder args, ResultCallback cb,
              util::Duration timeout = 0);

  /// Feeds one Channel::giop message from the owner's demux.
  void handle(const net::Message& msg);

  /// Retransmission policy for timed-out calls.  Retries reuse the original
  /// request id, so the callee's reply cache deduplicates them; a call
  /// without a timeout never retries (there is no failure signal).
  void set_retry_policy(net::RetryPolicy policy) { retry_policy_ = policy; }
  void set_retry_seed(std::uint64_t seed) { retry_rng_ = util::Rng(seed); }
  /// Caps the pending-call table: when full, the oldest entry is completed
  /// with Errc::resource_exhausted.  Bounds the leak from timeout==0 calls
  /// whose callee died.
  void set_max_pending(std::size_t n) { max_pending_ = n; }

  /// Tags every servant key and request id this ORB mints with a shard
  /// index in the low `bits` bits: `(counter << bits) | index`.  A sharded
  /// node runs one ORB per core; the tag lets the core-0 dispatcher route
  /// inbound GIOP frames to the owning core from the header alone (requests
  /// by servant key, replies by request id).  bits = 0 keeps the legacy
  /// id sequence byte-for-byte.  Must be called before any activate/invoke.
  void set_id_partition(std::uint32_t index, std::uint32_t bits) {
    id_shift_ = bits;
    id_tag_ = index;
  }

  /// Routes the ORB's internal timers (call timeouts, retry backoff)
  /// through the owning core's scheduler instead of the node's home
  /// worker.  Sharded cores install their shard-affine schedule_self here;
  /// the returned TimerId must stay cancellable via Network::cancel.
  void set_scheduler(Scheduler s) { scheduler_ = std::move(s); }

  /// Replaces the collocated-call delivery path (transmit to self).  A
  /// sharded core installs the node's dispatcher here so a self-call is
  /// routed to the core that owns the target servant rather than handled
  /// by whichever core placed it.
  void set_loopback(Loopback lb) { loopback_ = std::move(lb); }

  /// Attaches the owning node's tracer.  When set, invoke() made under an
  /// ambient trace context appends (trace_id, span_id) metadata to the
  /// request frame, dispatch runs the servant under the wire-carried
  /// context, and both sides record spans.  Untraced calls keep the legacy
  /// frame bytes exactly.
  void set_tracer(util::Tracer* tracer) { tracer_ = tracer; }

  // Accounting for bench A1 / E5.
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
  [[nodiscard]] std::uint64_t bytes_marshalled() const {
    return bytes_marshalled_;
  }
  [[nodiscard]] const util::LatencyHistogram& call_latency() const {
    return call_latency_;
  }
  [[nodiscard]] std::size_t active_servants() const {
    return servants_.size();
  }
  [[nodiscard]] net::NodeId self() const { return self_; }
  [[nodiscard]] std::size_t pending_calls() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }

 private:
  friend class DeferredReply;

  struct PendingCall {
    ResultCallback cb;
    util::TimePoint sent_at;
    net::TimerId timeout_timer{0};
    // Retransmission state: the exact frame already sent, where it went,
    // the per-attempt timeout, and how many attempts have been made.
    util::Bytes frame;
    net::NodeId dest{0};
    util::Duration timeout = 0;
    std::uint32_t attempts = 1;
    // Tracing: set only for sampled calls (method kept for the span name).
    util::TraceContext trace;
    std::string method;
  };

  // Replies are cached by (requester, request id) so a retransmitted or
  // duplicated request replays the original answer instead of re-executing
  // the servant (exactly-once effects for non-idempotent methods).
  using DedupKey = std::pair<std::uint32_t, std::uint64_t>;

  void dispatch_request(const net::Message& msg, wire::Decoder& d);
  void dispatch_reply(wire::Decoder& d);
  void send_reply(net::NodeId to, std::uint64_t request_id, bool ok,
                  const util::Bytes& body, util::Errc code,
                  const std::string& error_message);
  void complete(std::uint64_t request_id, util::Result<util::Bytes> result);
  void transmit(net::NodeId dest, util::Bytes payload);
  void on_timeout(std::uint64_t request_id);
  void cache_reply(const DedupKey& key, const util::Bytes& payload);
  [[nodiscard]] net::TimerId schedule(util::Duration delay,
                                      std::function<void()> fn);
  [[nodiscard]] std::uint64_t mint_id(std::uint64_t& counter) {
    return (counter++ << id_shift_) | id_tag_;
  }

  net::Network& network_;
  net::NodeId self_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Servant>> servants_;
  // Ordered by request id (monotonic), so begin() is always the oldest
  // entry — the one evicted when the table hits max_pending_.
  std::map<std::uint64_t, PendingCall> pending_;
  std::size_t max_pending_ = 4096;
  net::RetryPolicy retry_policy_{};
  util::Rng retry_rng_{0x07b1eULL};
  std::uint64_t retries_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::map<DedupKey, util::Bytes> reply_cache_;
  std::deque<DedupKey> reply_cache_order_;
  std::set<DedupKey> inflight_requests_;  // deferred dispatches in progress
  static constexpr std::size_t kReplyCacheCap = 1024;
  std::uint64_t next_key_ = 1;
  std::uint64_t next_request_ = 1;
  std::uint32_t id_shift_ = 0;
  std::uint64_t id_tag_ = 0;
  Scheduler scheduler_;
  Loopback loopback_;
  std::uint64_t invocations_ = 0;
  std::uint64_t bytes_marshalled_ = 0;
  util::LatencyHistogram call_latency_;
  util::Tracer* tracer_ = nullptr;
};

}  // namespace discover::orb
