// CORBA-naming-service analogue: a flat name -> ObjectRef directory exposed
// as a servant.  The DISCOVER CorbaProxy "binds itself to the CORBA naming
// service using the application's unique identifier as the name" (paper
// §5.1.2), so an application is remotely reachable from any server.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "orb/orb.h"

namespace discover::orb {

class NamingService final : public Servant {
 public:
  [[nodiscard]] std::string interface_name() const override {
    return "NamingService";
  }

  // Methods: bind(name, ref), rebind(name, ref), unbind(name),
  // resolve(name) -> ref, list() -> vector<(name, ref)>.
  void dispatch(const std::string& method, wire::Decoder& args,
                wire::Encoder& out, DispatchContext& ctx) override;

  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

 private:
  std::map<std::string, ObjectRef> bindings_;
};

/// Typed client stubs for NamingService.
class NamingClient {
 public:
  NamingClient(Orb& orb, ObjectRef service) : orb_(&orb),
                                              service_(std::move(service)) {}
  NamingClient() = default;

  using RefCallback = std::function<void(util::Result<ObjectRef>)>;
  using StatusCallback = std::function<void(util::Status)>;
  using ListCallback = std::function<void(
      util::Result<std::vector<std::pair<std::string, ObjectRef>>>)>;

  void bind(const std::string& name, const ObjectRef& ref, StatusCallback cb);
  void rebind(const std::string& name, const ObjectRef& ref,
              StatusCallback cb);
  void unbind(const std::string& name, StatusCallback cb);
  void resolve(const std::string& name, RefCallback cb);
  void list(ListCallback cb);

  [[nodiscard]] bool configured() const { return service_.valid(); }

  /// Per-call deadline on every naming invocation (0 = wait forever, the
  /// legacy default).  See TraderClient::set_call_timeout.
  void set_call_timeout(util::Duration t) { call_timeout_ = t; }

 private:
  Orb* orb_ = nullptr;
  ObjectRef service_;
  util::Duration call_timeout_ = 0;
};

}  // namespace discover::orb
