// Wire form of the trace context carried as trailing metadata on ORB
// request frames: an 8-aligned (trace_id, span_id) u64 pair appended after
// the args payload.  Frames from peers that predate tracing (or that carry
// an unsampled request) simply omit the pair — decode of an empty tail
// yields an invalid context, so the formats interoperate both ways.
#pragma once

#include "util/trace.h"
#include "wire/cdr.h"

namespace discover::wire {

inline void encode_trace_context(Encoder& e,
                                 const util::TraceContext& ctx) {
  e.u64(ctx.trace_id);
  e.u64(ctx.span_id);
}

/// Decodes the optional trailing pair; returns an invalid context when the
/// frame ends at the current position (untraced sender).
inline util::TraceContext decode_trace_context_tail(Decoder& d) {
  util::TraceContext ctx;
  if (d.remaining() > 0) {
    ctx.trace_id = d.u64();
    ctx.span_id = d.u64();
  }
  return ctx;
}

}  // namespace discover::wire
