// CDR-style binary serialization.
//
// Models CORBA's Common Data Representation closely enough that the ORB
// substrate has realistic marshalling behaviour: little-endian primitives,
// natural alignment padding, length-prefixed strings and sequences.  The
// same codec also carries the "custom TCP protocol" frames between servers
// and applications (the paper used Java serialization there; one codec for
// both keeps the comparison in bench A1 about *protocol* cost, not codec
// cost).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace discover::wire {

/// Thrown on malformed input; callers at frame boundaries convert it to a
/// protocol error Status.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequence decoders pre-reserve at most this many elements no matter what
/// the wire-carried count claims: the count is attacker-controlled and a
/// sizeof(T) multiplier away from the byte-level bound check_remaining can
/// enforce.  Vectors still grow past this normally while real elements
/// decode.
inline constexpr std::size_t kMaxSequencePrereserve = 1024;

class Encoder {
 public:
  Encoder() = default;

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { align(2); raw_le(v); }
  void u32(std::uint32_t v) { align(4); raw_le(v); }
  void u64(std::uint64_t v) { align(8); raw_le(v); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed UTF-8 string (no NUL terminator on the wire).
  void str(std::string_view s);
  /// Length-prefixed opaque byte sequence.
  void bytes(const util::Bytes& b);

  template <typename T, typename Fn>
  void sequence(const std::vector<T>& v, Fn encode_element) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& e : v) encode_element(*this, e);
  }

  template <typename K, typename V, typename FnK, typename FnV>
  void map(const std::map<K, V>& m, FnK encode_key, FnV encode_value) {
    u32(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      encode_key(*this, k);
      encode_value(*this, v);
    }
  }

  template <typename T, typename Fn>
  void optional(const std::optional<T>& v, Fn encode_element) {
    boolean(v.has_value());
    if (v) encode_element(*this, *v);
  }

  /// Pre-sizes the underlying buffer.  Hot encode paths (framed protocol
  /// messages, poll replies) call this with an estimate of the final wire
  /// size so a message grows in zero or one reallocation instead of the
  /// log(n) doublings of an unreserved vector.
  void reserve(std::size_t n) { buffer_.reserve(n); }

  /// Pads with zero bytes to an n-byte boundary, exactly like the padding
  /// emitted before an n-byte primitive.  Pairs with splice().
  void align_to(std::size_t n) { align(n); }
  /// Appends an already-encoded CDR fragment verbatim.  Alignment padding
  /// inside a fragment depends only on its starting offset modulo the
  /// largest primitive size, so a fragment encoded standalone (offset 0)
  /// re-decodes identically when spliced at any align_to(8) boundary.  This
  /// is how the peer outbox serializes each event once and memcpys it into
  /// every per-peer batch.
  void splice(const util::Bytes& b) { raw(b.data(), b.size()); }

  [[nodiscard]] const util::Bytes& data() const& { return buffer_; }
  [[nodiscard]] util::Bytes take() && { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  void align(std::size_t n) {
    while (buffer_.size() % n != 0) buffer_.push_back(0);
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buffer_.insert(buffer_.end(), b, b + n);
  }
  template <typename T>
  void raw_le(T v) {
    // Assumes little-endian host (checked in tests); CDR carries an
    // endianness flag in the frame header, fixed to LE here.
    raw(&v, sizeof(v));
  }

  util::Bytes buffer_;
};

class Decoder {
 public:
  explicit Decoder(const util::Bytes& data)
      : data_(data.data()), size_(data.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return read_raw<std::uint8_t>(1); }
  std::uint16_t u16() { align(2); return read_raw<std::uint16_t>(2); }
  std::uint32_t u32() { align(4); return read_raw<std::uint32_t>(4); }
  std::uint64_t u64() { align(8); return read_raw<std::uint64_t>(8); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str();
  util::Bytes bytes();

  template <typename T, typename Fn>
  std::vector<T> sequence(Fn decode_element) {
    const std::uint32_t n = u32();
    check_remaining(n);  // Each element is at least one byte.
    std::vector<T> out;
    out.reserve(std::min<std::size_t>(n, kMaxSequencePrereserve));
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(decode_element(*this));
    return out;
  }

  template <typename K, typename V, typename FnK, typename FnV>
  std::map<K, V> map(FnK decode_key, FnV decode_value) {
    const std::uint32_t n = u32();
    check_remaining(n);
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      K k = decode_key(*this);
      V v = decode_value(*this);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }

  template <typename T, typename Fn>
  std::optional<T> optional(Fn decode_element) {
    if (!boolean()) return std::nullopt;
    return decode_element(*this);
  }

  /// Skips the padding emitted by Encoder::align_to at the same offset.
  void align_to(std::size_t n) { align(n); }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == size_; }

  /// Requires that all input was consumed (catches trailing garbage).
  void finish() const {
    if (!at_end()) throw DecodeError("trailing bytes after message");
  }

 private:
  void align(std::size_t n) {
    while (pos_ % n != 0) {
      if (pos_ >= size_) throw DecodeError("truncated (padding)");
      ++pos_;
    }
  }
  void check_remaining(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated sequence");
  }
  template <typename T>
  T read_raw(std::size_t n) {
    if (remaining() < n) throw DecodeError("truncated value");
    T v;
    std::memcpy(&v, data_ + pos_, n);
    pos_ += n;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace discover::wire
