#include "wire/cdr.h"

namespace discover::wire {

void Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void Encoder::bytes(const util::Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b.data(), b.size());
}

std::string Decoder::str() {
  const std::uint32_t n = u32();
  if (remaining() < n) throw DecodeError("truncated string");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return out;
}

util::Bytes Decoder::bytes() {
  const std::uint32_t n = u32();
  if (remaining() < n) throw DecodeError("truncated bytes");
  util::Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace discover::wire
