// E4: response latency for LOCAL vs REMOTE application access (the
// measurement §7 of the paper announces).  A client at the application's
// host server steers directly; a client at a peer server steers through
// the host's CorbaProxy.  Expected shape: remote = local + ~1 WAN round
// trip (command relay) and the gap grows linearly with WAN latency.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E4: remote vs local steering latency (SimNetwork, virtual time)",
      {"wan_latency", "local_ack", "remote_ack", "remote_extra",
       "local_update_lat", "remote_update_lat"});
  return s;
}

struct Measured {
  util::Duration local_ack = 0;
  util::Duration remote_ack = 0;
  util::Duration local_update = 0;
  util::Duration remote_update = 0;
};

Measured run_scenario(util::Duration wan_latency) {
  workload::ScenarioConfig cfg;
  cfg.wan = {wan_latency, 12.5e6};
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& texas = scenario.add_server("texas", 1);
  auto& rutgers = scenario.add_server("rutgers", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "target";
  app_cfg.acl = workload::make_acl({{"local", security::Privilege::steer},
                                    {"remote", security::Privilege::steer}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 10;
  app_cfg.interact_every = 2;  // highly interactive: commands flow quickly
  app_cfg.interaction_window = util::milliseconds(1);
  auto& target = scenario.add_app<app::SyntheticApp>(texas, app_cfg,
                                                     app::SyntheticSpec{});
  // Remote user identity at rutgers.
  app::AppConfig id_cfg;
  id_cfg.name = "identity";
  id_cfg.acl = workload::make_acl({{"remote", security::Privilege::read_only}});
  id_cfg.step_time = util::milliseconds(10);
  id_cfg.update_every = 0;
  id_cfg.interact_every = 0;
  scenario.add_app<app::SyntheticApp>(rutgers, id_cfg, app::SyntheticSpec{});

  scenario.run_until([&] {
    return target.registered() && rutgers.peer_count() == 1 &&
           texas.peer_count() == 1;
  });
  const proto::AppId app_id = target.app_id();

  auto& local = scenario.add_client("local", texas);
  auto& remote = scenario.add_client("remote", rutgers);
  (void)workload::sync_onboard_steerer(scenario.net(), local, app_id);
  // Hand the lock over to remote for its measurements later; sample acks
  // via read commands which need no lock.
  Measured out;

  const auto measure_ack = [&](core::DiscoverClient& c) {
    util::LatencyHistogram hist;
    for (int i = 0; i < 20; ++i) {
      const util::TimePoint t0 = scenario.net().now();
      auto ack = workload::sync_command(scenario.net(), c, app_id,
                                        proto::CommandKind::get_param,
                                        "param_0");
      if (ack.ok() && ack.value().accepted) {
        hist.record(scenario.net().now() - t0);
      }
    }
    return hist.percentile(0.5);
  };
  // Remote must also be logged in/selected.
  (void)workload::sync_login(scenario.net(), remote);
  (void)workload::sync_select(scenario.net(), remote, app_id);

  out.local_ack = measure_ack(local);
  out.remote_ack = measure_ack(remote);

  // Update delivery latency: event timestamp (host) -> client receipt.
  util::LatencyHistogram local_upd;
  util::LatencyHistogram remote_upd;
  util::LatencyHistogram discard;
  const auto drain = [&](core::DiscoverClient& c,
                         util::LatencyHistogram& hist) {
    const std::size_t before = c.received_events().size();
    (void)workload::sync_poll(scenario.net(), c, app_id);
    const util::TimePoint now = scenario.net().now();
    for (std::size_t i = before; i < c.received_events().size(); ++i) {
      const auto& ev = c.received_events()[i];
      if (ev.kind == proto::EventKind::update) hist.record(now - ev.at);
    }
  };
  // Flush the backlog accumulated during the command phase so the
  // measurement reflects steady-state poll-and-pull staleness only.
  for (auto* c : {&local, &remote}) {
    for (int i = 0; i < 50; ++i) {
      const std::size_t before = c->received_events().size();
      drain(*c, discard);
      if (c->received_events().size() - before < 32) break;  // drained dry
    }
  }
  for (int round = 0; round < 10; ++round) {
    scenario.run_for(util::milliseconds(100));
    drain(local, local_upd);
    drain(remote, remote_upd);
  }
  out.local_update = local_upd.percentile(0.5);
  out.remote_update = remote_upd.percentile(0.5);
  return out;
}

void BM_E4(benchmark::State& state) {
  const auto wan = util::milliseconds(state.range(0));
  Measured m{};
  for (auto _ : state) {
    m = run_scenario(wan);
  }
  state.counters["local_ack_ms"] = util::to_ms(m.local_ack);
  state.counters["remote_ack_ms"] = util::to_ms(m.remote_ack);
  summary().row({util::format_duration(wan),
                 util::format_duration(m.local_ack),
                 util::format_duration(m.remote_ack),
                 util::format_duration(m.remote_ack - m.local_ack),
                 util::format_duration(m.local_update),
                 util::format_duration(m.remote_update)});
}
BENCHMARK(BM_E4)->Arg(5)->Arg(20)->Arg(50)->Arg(100)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
