// E5: application/service discovery overhead (announced in §7).  Measures
// (a) how long a freshly started server takes to discover all peers via
// the trader, (b) the cost of resolving a remote application through the
// naming service at select time, and (c) the ORB invocations that
// discovery generates.  Expected shape: linear in the number of servers
// with small per-server constants (one trader query returns all offers;
// one resolve + one get_interface per remote app touched).
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E5: discovery overhead vs network size (SimNetwork, virtual time)",
      {"servers", "apps_total", "peer_discovery", "remote_select",
       "orb_calls", "giop_msgs"});
  return s;
}

void BM_E5(benchmark::State& state) {
  const int n_servers = static_cast<int>(state.range(0));
  util::Duration discovery_time = 0;
  util::Duration select_time = 0;
  std::uint64_t orb_calls = 0;
  std::uint64_t giop_msgs = 0;
  int apps_total = 0;

  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.wan = {util::milliseconds(20), 12.5e6};
    cfg.server_template.peer_refresh_period = util::milliseconds(50);
    workload::Scenario scenario(cfg);

    std::vector<core::DiscoverServer*> servers;
    for (int i = 0; i < n_servers; ++i) {
      servers.push_back(
          &scenario.add_server("s" + std::to_string(i),
                               static_cast<std::uint32_t>(i + 1)));
    }
    // Two applications per server; "alice" is on every ACL.
    std::vector<app::SyntheticApp*> apps;
    for (auto* server : servers) {
      for (int k = 0; k < 2; ++k) {
        app::AppConfig app_cfg;
        app_cfg.name = "app";
        app_cfg.acl = workload::make_acl({{"alice",
                                           security::Privilege::steer}});
        app_cfg.step_time = util::milliseconds(5);
        app_cfg.update_every = 0;
        app_cfg.interact_every = 0;
        apps.push_back(&scenario.add_app<app::SyntheticApp>(
            *server, app_cfg, app::SyntheticSpec{}));
      }
    }
    apps_total = static_cast<int>(apps.size());

    // (a) time for server 0 to see all peers through the trader.
    const util::TimePoint t0 = scenario.net().now();
    scenario.run_until([&] {
      for (auto* s : servers) {
        if (s->peer_count() != static_cast<std::size_t>(n_servers - 1)) {
          return false;
        }
      }
      return true;
    });
    discovery_time = scenario.net().now() - t0;

    // (b) login + remote select cost at server 0 for an app on the last
    // server (naming resolve + level-2 get_interface + subscribe).
    auto& alice = scenario.add_client("alice", *servers[0]);
    (void)workload::sync_login(scenario.net(), alice);
    const proto::AppId remote_app = apps.back()->app_id();
    const std::uint64_t calls_before = servers[0]->orb().invocations();
    const util::TimePoint t1 = scenario.net().now();
    (void)workload::sync_select(scenario.net(), alice, remote_app);
    select_time = scenario.net().now() - t1;
    orb_calls = servers[0]->orb().invocations() - calls_before;
    giop_msgs = scenario.net().traffic().messages;
  }

  state.counters["discovery_ms"] = util::to_ms(discovery_time);
  state.counters["select_ms"] = util::to_ms(select_time);
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_servers)),
                 workload::fmt_int(static_cast<std::uint64_t>(apps_total)),
                 util::format_duration(discovery_time),
                 util::format_duration(select_time),
                 workload::fmt_int(orb_calls),
                 workload::fmt_int(giop_msgs)});
}
BENCHMARK(BM_E5)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
