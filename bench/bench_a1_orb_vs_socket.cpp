// A1 (ablation): CORBA-style ORB vs the raw framed socket protocol for the
// same logical operation (paper §6.2: CORBA "reduces performance when
// compared to a lower level socket based system").  Two measurements:
//  * wire cost — bytes on the wire and virtual round-trip latency for one
//    steering command relayed via orb::invoke vs a direct framed message
//    exchange on a bandwidth-limited link;
//  * CPU cost — marshalling throughput for the two encodings.
#include "bench_common.h"

#include "net/sim_network.h"
#include "orb/orb.h"
#include "proto/messages.h"
#include "workload/report.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "A1: ORB invocation vs raw framed protocol (1 Mb/s link, 5ms "
      "latency)",
      {"transport", "bytes_per_op", "round_trip", "ops_measured"});
  return s;
}

/// Echo servant: decodes a command, returns an ack — the CorbaProxy
/// send_command shape without the server bookkeeping.
class EchoCommandServant : public orb::Servant {
 public:
  [[nodiscard]] std::string interface_name() const override {
    return "EchoCommand";
  }
  void dispatch(const std::string&, wire::Decoder& args, wire::Encoder& out,
                orb::DispatchContext&) override {
    (void)args.str();   // user
    (void)args.u64();   // request id
    (void)args.u8();    // kind
    (void)args.str();   // param
    (void)proto::decode_param_value(args);
    out.boolean(true);
    out.str("ok");
  }
};

/// Raw framed peer: replies to AppCommand frames with AppResponse frames.
class FramedEcho : public net::MessageHandler {
 public:
  explicit FramedEcho(net::Network& net) : net_(net) {}
  void on_message(const net::Message& msg) override {
    auto decoded = proto::decode_framed(msg.payload);
    if (!decoded.ok()) return;
    if (const auto* cmd = std::get_if<proto::AppCommand>(&decoded.value())) {
      proto::AppResponse resp;
      resp.app_id = cmd->app_id;
      resp.request_id = cmd->request_id;
      resp.ok = true;
      resp.message = "ok";
      net_.send(msg.dst, msg.src, net::Channel::response,
                proto::encode_framed(proto::FramedMessage{resp}));
    }
  }
  net::Network& net_;
};

class OrbCaller : public net::MessageHandler {
 public:
  explicit OrbCaller(net::Network& net) : net_(net) {}
  void init(net::NodeId self) { orb = std::make_unique<orb::Orb>(net_, self); }
  void on_message(const net::Message& msg) override { orb->handle(msg); }
  net::Network& net_;
  std::unique_ptr<orb::Orb> orb;
};

class FramedCaller : public net::MessageHandler {
 public:
  void on_message(const net::Message& msg) override {
    auto decoded = proto::decode_framed(msg.payload);
    if (decoded.ok() &&
        std::holds_alternative<proto::AppResponse>(decoded.value())) {
      ++replies;
    }
  }
  int replies = 0;
};

struct WireCost {
  std::uint64_t bytes_per_op = 0;
  util::Duration round_trip = 0;
  int ops = 0;
};

WireCost measure_orb() {
  net::SimNetwork net;
  net.set_lan_model({util::milliseconds(5), 125'000.0});  // 1 Mb/s
  OrbCaller caller(net);
  OrbCaller callee(net);
  const net::NodeId nc = net.add_node("caller", &caller);
  const net::NodeId ns = net.add_node("callee", &callee);
  caller.init(nc);
  callee.init(ns);
  const orb::ObjectRef ref =
      callee.orb->activate(std::make_shared<EchoCommandServant>());

  constexpr int kOps = 50;
  int done = 0;
  const util::TimePoint t0 = net.now();
  std::function<void()> issue = [&] {
    wire::Encoder args;
    args.str("alice");
    args.u64(static_cast<std::uint64_t>(done));
    args.u8(static_cast<std::uint8_t>(proto::CommandKind::set_param));
    args.str("alpha");
    proto::encode(args, proto::ParamValue{0.5});
    caller.orb->invoke(ref, "send_command", std::move(args),
                       [&](util::Result<util::Bytes>) {
                         if (++done < kOps) issue();
                       });
  };
  issue();
  net.run_until_idle();
  WireCost cost;
  cost.ops = done;
  cost.bytes_per_op = net.traffic().bytes / static_cast<std::uint64_t>(done);
  cost.round_trip = (net.now() - t0) / done;
  return cost;
}

WireCost measure_framed() {
  net::SimNetwork net;
  net.set_lan_model({util::milliseconds(5), 125'000.0});  // 1 Mb/s
  FramedCaller caller;
  FramedEcho callee(net);
  const net::NodeId nc = net.add_node("caller", &caller);
  const net::NodeId ns = net.add_node("callee", &callee);

  constexpr int kOps = 50;
  const util::TimePoint t0 = net.now();
  // FIFO ordering lets us pipeline-free issue one at a time via timers.
  std::function<void()> issue = [&] {
    proto::AppCommand cmd;
    cmd.app_id = {1, 1};
    cmd.request_id = static_cast<std::uint64_t>(caller.replies);
    cmd.user = "alice";
    cmd.kind = proto::CommandKind::set_param;
    cmd.param = "alpha";
    cmd.value = proto::ParamValue{0.5};
    net.send(nc, ns, net::Channel::command,
             proto::encode_framed(proto::FramedMessage{cmd}));
  };
  issue();
  // Re-issue on each reply until kOps complete.
  int last_seen = 0;
  while (net.run_until([&] { return caller.replies > last_seen; })) {
    last_seen = caller.replies;
    if (caller.replies >= kOps) break;
    issue();
  }
  WireCost cost;
  cost.ops = caller.replies;
  cost.bytes_per_op =
      net.traffic().bytes / static_cast<std::uint64_t>(caller.replies);
  cost.round_trip = (net.now() - t0) / caller.replies;
  return cost;
}

void BM_A1_OrbWire(benchmark::State& state) {
  WireCost cost{};
  for (auto _ : state) {
    cost = measure_orb();
  }
  state.counters["bytes_per_op"] = static_cast<double>(cost.bytes_per_op);
  summary().row({"ORB (GIOP over CDR)",
                 workload::fmt_int(cost.bytes_per_op),
                 util::format_duration(cost.round_trip),
                 workload::fmt_int(static_cast<std::uint64_t>(cost.ops))});
}
BENCHMARK(BM_A1_OrbWire)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_A1_FramedWire(benchmark::State& state) {
  WireCost cost{};
  for (auto _ : state) {
    cost = measure_framed();
  }
  state.counters["bytes_per_op"] = static_cast<double>(cost.bytes_per_op);
  summary().row({"raw framed socket",
                 workload::fmt_int(cost.bytes_per_op),
                 util::format_duration(cost.round_trip),
                 workload::fmt_int(static_cast<std::uint64_t>(cost.ops))});
}
BENCHMARK(BM_A1_FramedWire)->Iterations(1)->Unit(benchmark::kMillisecond);

// CPU marshalling comparison: GIOP request frame vs framed AppCommand.
void BM_A1_MarshalOrb(benchmark::State& state) {
  for (auto _ : state) {
    wire::Encoder frame;
    frame.u32(0x47494F50);
    frame.u8(0);
    frame.u64(1);
    frame.u64(2);
    frame.str("send_command");
    wire::Encoder args;
    args.str("alice");
    args.u64(7);
    args.u8(1);
    args.str("alpha");
    proto::encode(args, proto::ParamValue{0.5});
    frame.bytes(std::move(args).take());
    benchmark::DoNotOptimize(frame.data());
  }
}
BENCHMARK(BM_A1_MarshalOrb);

void BM_A1_MarshalFramed(benchmark::State& state) {
  proto::AppCommand cmd;
  cmd.app_id = {1, 1};
  cmd.request_id = 7;
  cmd.user = "alice";
  cmd.kind = proto::CommandKind::set_param;
  cmd.param = "alpha";
  cmd.value = proto::ParamValue{0.5};
  for (auto _ : state) {
    const util::Bytes frame =
        proto::encode_framed(proto::FramedMessage{cmd});
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_A1_MarshalFramed);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
