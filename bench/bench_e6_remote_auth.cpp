// E6: remote-authentication overhead (announced in §7).  Login at the
// client's home server fans out a DiscoverCorbaServer::authenticate call
// to EVERY peer (§5.2.2) and aggregates the application lists.  Expected
// shape: login latency is flat in the number of peers (the fan-out is
// parallel, bounded by the slowest WAN round trip) while the message count
// grows linearly; level-2 auth adds one round trip to the host.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E6: two-level authentication across servers (SimNetwork)",
      {"peers", "login_latency", "apps_listed", "wan_msgs_login",
       "level2_latency"});
  return s;
}

void BM_E6(benchmark::State& state) {
  const int n_peers = static_cast<int>(state.range(0));
  util::Duration login_latency = 0;
  util::Duration level2_latency = 0;
  std::uint64_t wan_msgs = 0;
  std::size_t apps_listed = 0;

  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.wan = {util::milliseconds(20), 12.5e6};
    cfg.server_template.peer_refresh_period = util::milliseconds(50);
    workload::Scenario scenario(cfg);

    auto& home = scenario.add_server("home", 1);
    std::vector<core::DiscoverServer*> peers;
    for (int i = 0; i < n_peers; ++i) {
      peers.push_back(&scenario.add_server(
          "peer" + std::to_string(i), static_cast<std::uint32_t>(i + 2)));
    }
    const auto add_app = [&](core::DiscoverServer& server) {
      app::AppConfig app_cfg;
      app_cfg.name = "sim";
      app_cfg.acl =
          workload::make_acl({{"alice", security::Privilege::steer}});
      app_cfg.step_time = util::milliseconds(5);
      app_cfg.update_every = 0;
      app_cfg.interact_every = 0;
      return &scenario.add_app<app::SyntheticApp>(server, app_cfg,
                                                  app::SyntheticSpec{});
    };
    app::SyntheticApp* home_app = add_app(home);
    app::SyntheticApp* last_remote = nullptr;
    for (auto* p : peers) last_remote = add_app(*p);

    scenario.run_until([&] {
      if (!home_app->registered()) return false;
      if (last_remote != nullptr && !last_remote->registered()) return false;
      return home.peer_count() == static_cast<std::size_t>(n_peers);
    });

    auto& alice = scenario.add_client("alice", home);
    scenario.net().reset_traffic();
    const util::TimePoint t0 = scenario.net().now();
    auto login = workload::sync_login(scenario.net(), alice);
    login_latency = scenario.net().now() - t0;
    wan_msgs = scenario.net().traffic().wan_messages;
    apps_listed = login.ok() ? login.value().applications.size() : 0;

    if (last_remote != nullptr) {
      const util::TimePoint t1 = scenario.net().now();
      (void)workload::sync_select(scenario.net(), alice,
                                  last_remote->app_id());
      level2_latency = scenario.net().now() - t1;
    } else {
      // 0 peers: level-2 against the local app.
      const util::TimePoint t1 = scenario.net().now();
      (void)workload::sync_select(scenario.net(), alice,
                                  proto::AppId{home.node().value(), 1});
      level2_latency = scenario.net().now() - t1;
    }
  }

  state.counters["login_ms"] = util::to_ms(login_latency);
  state.counters["level2_ms"] = util::to_ms(level2_latency);
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_peers)),
                 util::format_duration(login_latency),
                 workload::fmt_int(apps_listed),
                 workload::fmt_int(wan_msgs),
                 util::format_duration(level2_latency)});
}
BENCHMARK(BM_E6)->Arg(0)->Arg(1)->Arg(3)->Arg(7)->Arg(15)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
