// E2: simultaneous clients per server (paper §6.1: "the middleware was
// able to support 20 simultaneous clients.  As we increased the number of
// simultaneous clients beyond 20, we noticed degradation in performance").
// Real threads, real time: K portal clients run the poll-and-pull loop and
// issue periodic read commands against one application on one server over
// HTTP.  Expected shape: request latency grows super-linearly once the
// servlet path saturates, visibly past the ~20-client knee.
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "app/synthetic.h"
#include "workload/drivers.h"
#include "workload/thread_scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E2: simultaneous HTTP clients on one server (ThreadNetwork, real "
      "time; paper: degradation past ~20)",
      {"clients", "req_per_s", "rtt_p50", "rtt_p95", "rtt_max",
       "cmd_acks_ok"});
  return s;
}

void BM_E2(benchmark::State& state) {
  const int n_clients = static_cast<int>(state.range(0));
  util::LatencyHistogram rtt;
  std::uint64_t acks_ok = 0;
  double req_rate = 0;

  for (auto _ : state) {
    core::ServerConfig server_cfg;
    // Emulate 2001-era servlet cost so the paper's ~20-client knee is
    // reproducible on modern hardware (see ServerConfig::servlet_cpu_cost).
    server_cfg.servlet_cpu_cost = util::microseconds(1500);
    workload::ThreadScenario scenario(server_cfg);
    auto& server = scenario.add_server("portal");

    std::vector<security::AclEntry> acl;
    for (int i = 0; i < n_clients; ++i) {
      acl.push_back({"u" + std::to_string(i),
                     security::Privilege::read_only, 0});
    }
    app::AppConfig cfg;
    cfg.name = "target";
    cfg.acl = acl;
    cfg.step_time = util::milliseconds(10);
    cfg.update_every = 5;  // 20 updates/s into every client FIFO
    cfg.interact_every = 4;
    cfg.interaction_window = util::milliseconds(2);
    auto& target = scenario.add_app<app::SyntheticApp>(
        server, cfg, app::SyntheticSpec{4, 8, 50});

    std::vector<core::DiscoverClient*> clients;
    for (int i = 0; i < n_clients; ++i) {
      core::ClientConfig ccfg;
      ccfg.poll_period = util::milliseconds(50);
      clients.push_back(&scenario.add_client("u" + std::to_string(i), server,
                                             ccfg));
    }
    scenario.start();
    workload::wait_for(scenario.net(), [&] { return target.registered(); },
                       util::seconds(10));
    const proto::AppId app_id = target.app_id();

    std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
    for (auto* c : clients) {
      (void)workload::sync_login(scenario.net(), *c, util::seconds(20));
      (void)workload::sync_select(scenario.net(), *c, app_id,
                                  util::seconds(20));
      workload::DriverConfig dcfg;
      dcfg.command_period = util::milliseconds(100);
      dcfg.kind = proto::CommandKind::get_param;
      dcfg.param = "param_0";
      drivers.push_back(std::make_unique<workload::ClientDriver>(
          scenario.net(), *c, app_id, dcfg));
    }
    const std::uint64_t req_before = server.live_requests_served();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& d : drivers) d->start();
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    for (auto& d : drivers) d->stop();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t req_after = server.live_requests_served();
    scenario.net().wait_idle(util::seconds(5));
    scenario.stop();

    // Workers are joined: safe to aggregate per-client histograms.
    for (auto* c : clients) rtt.merge(c->http().round_trip_latency());
    for (auto& d : drivers) acks_ok += d->acks_ok();
    req_rate = static_cast<double>(req_after - req_before) / elapsed_s;
  }

  state.counters["rtt_p50_ms"] = util::to_ms(rtt.percentile(0.5));
  state.counters["rtt_p95_ms"] = util::to_ms(rtt.percentile(0.95));
  state.counters["req_per_s"] = req_rate;
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_clients)),
                 workload::fmt_double(req_rate, 0),
                 util::format_duration(rtt.percentile(0.5)),
                 util::format_duration(rtt.percentile(0.95)),
                 util::format_duration(rtt.max()),
                 workload::fmt_int(acks_ok)});
}
BENCHMARK(BM_E2)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(24)->Arg(32)->Arg(48)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
