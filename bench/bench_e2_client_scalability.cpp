// E2: simultaneous clients per server (paper §6.1: "the middleware was
// able to support 20 simultaneous clients.  As we increased the number of
// simultaneous clients beyond 20, we noticed degradation in performance").
// Real threads, real time: K portal clients run the poll-and-pull loop and
// issue periodic read commands against one application on one server over
// HTTP.  Expected shape: request latency grows super-linearly once the
// servlet path saturates, visibly past the ~20-client knee.
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "app/synthetic.h"
#include "workload/drivers.h"
#include "workload/thread_scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E2: simultaneous HTTP clients on one server (ThreadNetwork, real "
      "time; paper: degradation past ~20)",
      {"clients", "req_per_s", "rtt_p50", "rtt_p95", "rtt_max",
       "cmd_acks_ok"});
  return s;
}

void BM_E2(benchmark::State& state) {
  const int n_clients = static_cast<int>(state.range(0));
  util::LatencyHistogram rtt;
  std::uint64_t acks_ok = 0;
  double req_rate = 0;

  for (auto _ : state) {
    core::ServerConfig server_cfg;
    // Emulate 2001-era servlet cost so the paper's ~20-client knee is
    // reproducible on modern hardware (see ServerConfig::servlet_cpu_cost).
    server_cfg.servlet_cpu_cost = util::microseconds(1500);
    workload::ThreadScenario scenario(server_cfg);
    auto& server = scenario.add_server("portal");

    std::vector<security::AclEntry> acl;
    for (int i = 0; i < n_clients; ++i) {
      acl.push_back({"u" + std::to_string(i),
                     security::Privilege::read_only, 0});
    }
    app::AppConfig cfg;
    cfg.name = "target";
    cfg.acl = acl;
    cfg.step_time = util::milliseconds(10);
    cfg.update_every = 5;  // 20 updates/s into every client FIFO
    cfg.interact_every = 4;
    cfg.interaction_window = util::milliseconds(2);
    auto& target = scenario.add_app<app::SyntheticApp>(
        server, cfg, app::SyntheticSpec{4, 8, 50});

    std::vector<core::DiscoverClient*> clients;
    for (int i = 0; i < n_clients; ++i) {
      core::ClientConfig ccfg;
      ccfg.poll_period = util::milliseconds(50);
      clients.push_back(&scenario.add_client("u" + std::to_string(i), server,
                                             ccfg));
    }
    scenario.start();
    workload::wait_for(scenario.net(), [&] { return target.registered(); },
                       util::seconds(10));
    const proto::AppId app_id = target.app_id();

    std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
    for (auto* c : clients) {
      (void)workload::sync_login(scenario.net(), *c, util::seconds(20));
      (void)workload::sync_select(scenario.net(), *c, app_id,
                                  util::seconds(20));
      workload::DriverConfig dcfg;
      dcfg.command_period = util::milliseconds(100);
      dcfg.kind = proto::CommandKind::get_param;
      dcfg.param = "param_0";
      drivers.push_back(std::make_unique<workload::ClientDriver>(
          scenario.net(), *c, app_id, dcfg));
    }
    const std::uint64_t req_before = server.live_requests_served();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& d : drivers) d->start();
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    for (auto& d : drivers) d->stop();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t req_after = server.live_requests_served();
    scenario.net().wait_idle(util::seconds(5));
    scenario.stop();

    // Workers are joined: safe to aggregate per-client histograms.
    for (auto* c : clients) rtt.merge(c->http().round_trip_latency());
    for (auto& d : drivers) acks_ok += d->acks_ok();
    req_rate = static_cast<double>(req_after - req_before) / elapsed_s;
  }

  state.counters["rtt_p50_ms"] = util::to_ms(rtt.percentile(0.5));
  state.counters["rtt_p95_ms"] = util::to_ms(rtt.percentile(0.95));
  state.counters["req_per_s"] = req_rate;
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_clients)),
                 workload::fmt_double(req_rate, 0),
                 util::format_duration(rtt.percentile(0.5)),
                 util::format_duration(rtt.percentile(0.95)),
                 util::format_duration(rtt.max()),
                 workload::fmt_int(acks_ok)});
}
BENCHMARK(BM_E2)->Arg(4)->Arg(8)->Arg(16)->Arg(20)->Arg(24)->Arg(32)->Arg(48)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Push fan-out on the threaded backend: N push subscribers behind real
// worker threads, one driver posting chats.  Complements the SimNetwork
// sweep in bench_e7 — here the shared wire payload is handed to N
// concurrent inboxes, so the encode-once saving shows up as wall-clock
// delivery throughput.  Counting sinks tally deliveries with atomics, so
// the measurement needs no cross-thread access to server internals.
// ---------------------------------------------------------------------------

bench::Summary& fanout_summary() {
  static bench::Summary s(
      "E2 fan-out: push delivery throughput, ThreadNetwork (legacy = "
      "full-session scan + per-recipient encode)",
      {"subs", "path", "deliveries_per_s", "delivered", "bytes_rx"});
  return s;
}

constexpr int kFanoutChats = 50;

void BM_E2_PushFanout(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  const bool fast_path = state.range(1) != 0;
  double per_sec = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bytes_rx = 0;

  for (auto _ : state) {
    core::ServerConfig server_cfg;
    server_cfg.fanout_fast_path = fast_path;
    workload::ThreadScenario scenario(server_cfg);
    auto& server = scenario.add_server("portal");

    std::vector<security::AclEntry> acl;
    acl.push_back({"driver", security::Privilege::read_write, 0});
    for (int i = 0; i < subscribers; ++i) {
      acl.push_back({"s" + std::to_string(i),
                     security::Privilege::read_only, 0});
    }
    app::AppConfig cfg;
    cfg.name = "board";
    cfg.acl = acl;
    cfg.step_time = util::milliseconds(50);
    cfg.update_every = 0;  // the driver's chats are the only events
    cfg.interact_every = 0;
    auto& board = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                      app::SyntheticSpec{});

    // Sinks are plain network nodes (no poll loop): added before start(),
    // like every ThreadNetwork node.
    std::vector<std::unique_ptr<bench::CountingClient>> sinks;
    const net::DomainId domain = scenario.net().node_domain(server.node());
    for (int i = 0; i < subscribers; ++i) {
      core::ClientConfig ccfg;
      ccfg.user = "s" + std::to_string(i);
      auto sink =
          std::make_unique<bench::CountingClient>(scenario.net(), ccfg);
      const net::NodeId node = scenario.net().add_node(
          "sink" + std::to_string(i), sink.get(), domain);
      sink->attach(node);
      sink->portal().set_server(server.node());
      sinks.push_back(std::move(sink));
    }
    auto& driver = scenario.add_client("driver", server);

    scenario.start();
    workload::wait_for(scenario.net(), [&] { return board.registered(); },
                       util::seconds(10));
    const proto::AppId app_id = board.app_id();
    for (auto& sink : sinks) {
      (void)workload::sync_login(scenario.net(), sink->portal(),
                                 util::seconds(20));
      (void)workload::sync_select(scenario.net(), sink->portal(), app_id,
                                  util::seconds(20));
      (void)workload::sync_group_op(scenario.net(), sink->portal(), app_id,
                                    proto::GroupOp::enable_push, "",
                                    util::seconds(20));
    }
    (void)workload::sync_login(scenario.net(), driver, util::seconds(20));
    (void)workload::sync_select(scenario.net(), driver, app_id,
                                util::seconds(20));

    const std::string text(256, 'w');
    const auto total_counted = [&] {
      std::uint64_t n = 0;
      for (auto& sink : sinks) n += sink->counted_messages();
      return n;
    };
    for (auto& sink : sinks) sink->set_counting(true);
    const std::uint64_t expect =
        static_cast<std::uint64_t>(subscribers) * kFanoutChats;
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kFanoutChats; ++k) {
      (void)workload::sync_collab_post(scenario.net(), driver, app_id,
                                       proto::EventKind::chat, text,
                                       util::seconds(20));
    }
    workload::wait_for(scenario.net(),
                       [&] { return total_counted() >= expect; },
                       util::seconds(20));
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    delivered = total_counted();
    for (auto& sink : sinks) bytes_rx += sink->counted_bytes();
    if (elapsed_s > 0) {
      per_sec = static_cast<double>(delivered) / elapsed_s;
    }
    scenario.stop();
  }

  state.counters["deliveries_per_sec"] = per_sec;
  state.counters["delivered"] = static_cast<double>(delivered);
  fanout_summary().row(
      {workload::fmt_int(static_cast<std::uint64_t>(subscribers)),
       fast_path ? "fast" : "legacy", workload::fmt_double(per_sec, 0),
       workload::fmt_int(delivered), workload::fmt_int(bytes_rx)});
}
BENCHMARK(BM_E2_PushFanout)
    ->ArgNames({"subs", "fast"})
    ->Args({8, 0})->Args({8, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print(); fanout_summary().print())
