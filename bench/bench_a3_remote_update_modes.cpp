// A3 (ablation): server-to-server remote update propagation — PUSH (host
// forwards each event to subscribed servers) vs POLL (the subscriber's
// CorbaProxy side "polls each other for updates and responses", §5.2.3,
// the prototype's actual design).  Expected shape: polling trades delivery
// latency (~poll period) and constant background WAN traffic for
// insensitivity to event rate; push delivers at WAN latency and scales
// WAN traffic with the event rate.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "A3: server-to-server update propagation, push vs poll "
      "(2 sites, WAN 20ms, 1 app @ 50 upd/s, 1 remote client)",
      {"mode", "update_delivery_p50", "update_delivery_p95", "wan_msgs",
       "wan_bytes", "updates_rx"});
  return s;
}

struct Result {
  util::Duration p50 = 0;
  util::Duration p95 = 0;
  std::uint64_t wan_msgs = 0;
  std::uint64_t wan_bytes = 0;
  std::uint64_t updates_rx = 0;
};

Result run_mode(core::RemoteUpdateMode mode, util::Duration poll_period) {
  workload::ScenarioConfig cfg;
  cfg.wan = {util::milliseconds(20), 12.5e6};
  cfg.server_template.remote_update_mode = mode;
  cfg.server_template.remote_poll_period = poll_period;
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  auto& peer = scenario.add_server("peer", 2);

  app::AppConfig app_cfg;
  app_cfg.name = "feed";
  app_cfg.acl = workload::make_acl({{"remote",
                                     security::Privilege::read_only}});
  app_cfg.step_time = util::milliseconds(4);
  app_cfg.update_every = 5;  // 50 updates/s
  app_cfg.interact_every = 0;
  auto& feed = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                   app::SyntheticSpec{});
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "identity";
  id_cfg.update_every = 0;
  scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
  scenario.run_until([&] {
    return feed.registered() && peer.peer_count() == 1;
  });

  core::ClientConfig ccfg;
  ccfg.poll_period = util::milliseconds(20);  // client-side poll held fixed
  auto& remote = scenario.add_client("remote", peer, ccfg);
  (void)workload::sync_login(scenario.net(), remote);
  (void)workload::sync_select(scenario.net(), remote, feed.app_id());

  util::LatencyHistogram delivery;
  remote.set_event_handler([&](const proto::ClientEvent& ev) {
    if (ev.kind == proto::EventKind::update) {
      delivery.record(scenario.net().now() - ev.at);
    }
  });
  scenario.net().post(remote.node(),
                      [&remote, id = feed.app_id()] {
                        remote.start_polling(id);
                      });

  scenario.net().reset_traffic();
  scenario.run_for(util::seconds(5));

  Result out;
  out.p50 = delivery.percentile(0.5);
  out.p95 = delivery.percentile(0.95);
  out.wan_msgs = scenario.net().traffic().wan_messages;
  out.wan_bytes = scenario.net().traffic().wan_bytes;
  out.updates_rx = remote.events_of_kind(proto::EventKind::update);
  return out;
}

void BM_A3(benchmark::State& state) {
  const bool push = state.range(0) != 0;
  const auto poll_period = util::milliseconds(state.range(1));
  Result r{};
  for (auto _ : state) {
    r = run_mode(push ? core::RemoteUpdateMode::push
                      : core::RemoteUpdateMode::poll,
                 poll_period);
  }
  state.counters["p50_ms"] = util::to_ms(r.p50);
  state.counters["wan_msgs"] = static_cast<double>(r.wan_msgs);
  const std::string mode =
      push ? "push" : "poll/" + util::format_duration(poll_period);
  summary().row({mode, util::format_duration(r.p50),
                 util::format_duration(r.p95), workload::fmt_int(r.wan_msgs),
                 util::format_bytes(r.wan_bytes),
                 workload::fmt_int(r.updates_rx)});
}
BENCHMARK(BM_A3)
    ->Args({0, 25})->Args({0, 50})->Args({0, 100})->Args({0, 200})
    ->Args({1, 100})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
