// E8: distributed locking (paper §5.2.4).  Lock state is authoritative at
// the application's host server; remote servers only relay.  Measures the
// acquire->grant-notice latency for a local vs a remote requester across
// WAN latencies, and lock hand-off under contention (fairness + the
// single-writer invariant).  Expected shape: a remote lock op costs one
// extra WAN round trip (relay) plus the notification path; grants under
// contention are FIFO-fair.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& latency_summary() {
  static bench::Summary s(
      "E8a: steering-lock acquire latency, local vs remote requester",
      {"wan_latency", "local_grant", "remote_grant", "remote_extra"});
  return s;
}

bench::Summary& contention_summary() {
  static bench::Summary s(
      "E8b: lock hand-off under contention (2 sites, WAN 20ms)",
      {"contenders", "handoffs", "grants_min", "grants_max",
       "single_writer_violations"});
  return s;
}

/// Time from issuing acquire_lock to seeing one's own "granted" notice.
util::Duration grant_latency(workload::Scenario& scenario,
                             core::DiscoverClient& client,
                             const proto::AppId& app) {
  const std::size_t before = client.received_events().size();
  const util::TimePoint t0 = scenario.net().now();
  (void)workload::sync_command(scenario.net(), client, app,
                               proto::CommandKind::acquire_lock);
  util::TimePoint granted_at = 0;
  for (int i = 0; i < 200 && granted_at == 0; ++i) {
    (void)workload::sync_poll(scenario.net(), client, app);
    for (std::size_t k = before; k < client.received_events().size(); ++k) {
      const auto& ev = client.received_events()[k];
      if (ev.kind == proto::EventKind::lock_notice &&
          ev.user == client.user() && ev.text == "granted") {
        granted_at = scenario.net().now();
        break;
      }
    }
    if (granted_at == 0) scenario.run_for(util::milliseconds(2));
  }
  const util::Duration latency = granted_at == 0 ? 0 : granted_at - t0;
  (void)workload::sync_command(scenario.net(), client, app,
                               proto::CommandKind::release_lock);
  scenario.run_for(util::milliseconds(100));
  return latency;
}

void BM_E8_Latency(benchmark::State& state) {
  const auto wan = util::milliseconds(state.range(0));
  util::Duration local_lat = 0;
  util::Duration remote_lat = 0;
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.wan = {wan, 12.5e6};
    cfg.server_template.peer_refresh_period = util::milliseconds(100);
    workload::Scenario scenario(cfg);
    auto& host = scenario.add_server("host", 1);
    auto& peer = scenario.add_server("peer", 2);

    app::AppConfig app_cfg;
    app_cfg.name = "locked";
    app_cfg.acl = workload::make_acl({{"local", security::Privilege::steer},
                                      {"remote",
                                       security::Privilege::steer}});
    app_cfg.step_time = util::milliseconds(2);
    app_cfg.update_every = 0;
    app_cfg.interact_every = 0;
    auto& target = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                       app::SyntheticSpec{});
    app::AppConfig id_cfg = app_cfg;
    id_cfg.name = "identity";
    scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
    scenario.run_until([&] {
      return target.registered() && host.peer_count() == 1 &&
             peer.peer_count() == 1;
    });
    const proto::AppId app_id = target.app_id();

    auto& local = scenario.add_client("local", host);
    auto& remote = scenario.add_client("remote", peer);
    for (auto* c : {&local, &remote}) {
      (void)workload::sync_login(scenario.net(), *c);
      (void)workload::sync_select(scenario.net(), *c, app_id);
    }
    local_lat = grant_latency(scenario, local, app_id);
    remote_lat = grant_latency(scenario, remote, app_id);
  }
  state.counters["local_ms"] = util::to_ms(local_lat);
  state.counters["remote_ms"] = util::to_ms(remote_lat);
  latency_summary().row({util::format_duration(wan),
                         util::format_duration(local_lat),
                         util::format_duration(remote_lat),
                         util::format_duration(remote_lat - local_lat)});
}
BENCHMARK(BM_E8_Latency)->Arg(5)->Arg(20)->Arg(50)->Arg(100)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_E8_Contention(benchmark::State& state) {
  const int contenders = static_cast<int>(state.range(0));
  std::map<std::string, int> grants;
  std::uint64_t handoffs = 0;
  std::uint64_t violations = 0;

  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.wan = {util::milliseconds(20), 12.5e6};
    cfg.server_template.peer_refresh_period = util::milliseconds(100);
    workload::Scenario scenario(cfg);
    auto& host = scenario.add_server("host", 1);
    auto& peer = scenario.add_server("peer", 2);

    std::vector<security::AclEntry> acl;
    for (int i = 0; i < contenders; ++i) {
      acl.push_back({"c" + std::to_string(i), security::Privilege::steer, 0});
    }
    app::AppConfig app_cfg;
    app_cfg.name = "contended";
    app_cfg.acl = acl;
    app_cfg.step_time = util::milliseconds(2);
    app_cfg.update_every = 0;
    app_cfg.interact_every = 0;
    auto& target = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                       app::SyntheticSpec{});
    app::AppConfig id_cfg = app_cfg;
    id_cfg.name = "identity";
    scenario.add_app<app::SyntheticApp>(peer, id_cfg, app::SyntheticSpec{});
    scenario.run_until([&] {
      return target.registered() && host.peer_count() == 1;
    });
    const proto::AppId app_id = target.app_id();

    // Half the contenders at each site; everyone requests the lock.
    std::vector<core::DiscoverClient*> clients;
    for (int i = 0; i < contenders; ++i) {
      auto& c = scenario.add_client("c" + std::to_string(i),
                                    i % 2 == 0 ? host : peer);
      clients.push_back(&c);
      (void)workload::sync_login(scenario.net(), c);
      (void)workload::sync_select(scenario.net(), c, app_id);
    }
    for (auto* c : clients) {
      (void)workload::sync_command(scenario.net(), *c, app_id,
                                   proto::CommandKind::acquire_lock);
    }
    // Run hand-off rounds: whoever holds the lock releases it after a
    // short hold; verify there is never more than one holder (trivially
    // true via the host's single optional, but check via observation).
    std::string last_holder;
    for (int round = 0; round < contenders * 3; ++round) {
      scenario.run_for(util::milliseconds(60));
      const auto holder = host.lock_holder(app_id);
      if (!holder) continue;
      ++grants[holder->user];
      if (holder->user != last_holder) {
        ++handoffs;
        last_holder = holder->user;
      }
      // The holder releases, and immediately re-requests (cycling).
      core::DiscoverClient* holding_client = nullptr;
      for (auto* c : clients) {
        if (c->user() == holder->user) holding_client = c;
      }
      if (holding_client != nullptr) {
        (void)workload::sync_command(scenario.net(), *holding_client, app_id,
                                     proto::CommandKind::release_lock);
        // Observe: right after release completes, holder is either empty
        // or the next waiter; it must never equal two identities (cannot
        // be observed by construction; count anomalies where release fails
        // while someone else claims to hold).
        (void)workload::sync_command(scenario.net(), *holding_client, app_id,
                                     proto::CommandKind::acquire_lock);
      }
    }
    // Fairness check: in a FIFO queue cycled N times, every contender
    // should have held the lock at least once.
    for (auto* c : clients) {
      if (grants.count(c->user()) == 0) grants[c->user()] = 0;
    }
  }
  int min_grants = 1 << 30;
  int max_grants = 0;
  for (const auto& [_, n] : grants) {
    min_grants = std::min(min_grants, n);
    max_grants = std::max(max_grants, n);
  }
  state.counters["handoffs"] = static_cast<double>(handoffs);
  contention_summary().row(
      {workload::fmt_int(static_cast<std::uint64_t>(contenders)),
       workload::fmt_int(handoffs),
       workload::fmt_int(static_cast<std::uint64_t>(min_grants)),
       workload::fmt_int(static_cast<std::uint64_t>(max_grants)),
       workload::fmt_int(violations)});
}
BENCHMARK(BM_E8_Contention)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(latency_summary().print(); contention_summary().print())
