// A4 (ablation): server-to-server event propagation with per-peer outboxes
// — peer_flush_delay=0 (legacy: one forward_event ORB call per event per
// subscribed peer) vs batched (coalesced forward_events flushes; the
// in-flight gate lets a WAN round-trip's worth of events pile into the
// next batch).  Expected shape: the batched arm cuts forward-path ORB
// invocations per delivered event by an order of magnitude at a busy
// host, at the cost of up to peer_flush_delay of added delivery latency;
// WAN bytes shrink too (one HTTP/CDR envelope per batch instead of per
// event).  A second sweep isolates the versioned-directory refresh:
// delta refreshes vs a full snapshot every round.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "A4: peer outbox batching, per-event vs coalesced "
      "(host + P peer sites, WAN 20ms, 1 app @ 500 upd/s, 1 watcher/site)",
      {"peers", "mode", "fwd_calls", "events_rx", "calls_per_evt",
       "delivery_p50", "delivery_p95", "wan_msgs", "wan_bytes"});
  return s;
}

bench::Summary& dir_summary() {
  static bench::Summary s(
      "A4b: directory refresh, deltas vs full snapshots "
      "(host with 16 apps + 4 peer sites, refresh every 100ms, 5s)",
      {"mode", "dir_fulls", "dir_deltas", "dir_bytes", "wan_msgs"});
  return s;
}

struct Result {
  std::uint64_t fwd_calls = 0;
  std::uint64_t events_rx = 0;
  std::uint64_t batches = 0;
  util::Duration p50 = 0;
  util::Duration p95 = 0;
  std::uint64_t wan_msgs = 0;
  std::uint64_t wan_bytes = 0;
};

Result run_propagation(int peers, util::Duration flush_delay) {
  workload::ScenarioConfig cfg;
  cfg.wan = {util::milliseconds(20), 12.5e6};
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_flush_delay = flush_delay;
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  std::vector<core::DiscoverServer*> sites;
  for (int p = 0; p < peers; ++p) {
    sites.push_back(&scenario.add_server("site" + std::to_string(p),
                                         2 + static_cast<std::uint32_t>(p)));
  }

  app::AppConfig app_cfg;
  app_cfg.name = "feed";
  app_cfg.acl = workload::make_acl({{"remote",
                                     security::Privilege::read_only}});
  app_cfg.step_time = util::milliseconds(1);
  app_cfg.update_every = 2;  // 500 updates/s: a busy simulation
  app_cfg.interact_every = 0;
  auto& feed = scenario.add_app<app::SyntheticApp>(host, app_cfg,
                                                   app::SyntheticSpec{});
  app::AppConfig id_cfg = app_cfg;
  id_cfg.name = "identity";
  id_cfg.update_every = 0;
  for (auto* site : sites) {
    scenario.add_app<app::SyntheticApp>(*site, id_cfg, app::SyntheticSpec{});
  }
  scenario.run_until([&] {
    if (!feed.registered()) return false;
    for (auto* site : sites) {
      if (site->peer_count() != static_cast<std::size_t>(peers)) return false;
    }
    return host.peer_count() == static_cast<std::size_t>(peers);
  });

  util::LatencyHistogram delivery;
  std::vector<core::DiscoverClient*> watchers;
  for (auto* site : sites) {
    auto& w = scenario.add_client("remote", *site);
    (void)workload::sync_login(scenario.net(), w);
    (void)workload::sync_select(scenario.net(), w, feed.app_id());
    (void)workload::sync_group_op(scenario.net(), w, feed.app_id(),
                                  proto::GroupOp::enable_push, "");
    w.set_event_handler([&](const proto::ClientEvent& ev) {
      if (ev.kind == proto::EventKind::update) {
        delivery.record(scenario.net().now() - ev.at);
      }
    });
    watchers.push_back(&w);
  }

  scenario.net().reset_traffic();
  const core::ServerStats before = host.stats();
  scenario.run_for(util::seconds(5));

  Result out;
  const core::ServerStats after = host.stats();
  out.batches = after.peer_batches_out - before.peer_batches_out;
  // Forward-path ORB calls: one per event per peer in the legacy arm, one
  // per flushed batch in the batched arm.
  out.fwd_calls = flush_delay == 0
                      ? after.peer_events_out - before.peer_events_out
                      : out.batches;
  for (auto* w : watchers) {
    out.events_rx += w->events_of_kind(proto::EventKind::update);
  }
  out.p50 = delivery.percentile(0.5);
  out.p95 = delivery.percentile(0.95);
  out.wan_msgs = scenario.net().traffic().wan_messages;
  out.wan_bytes = scenario.net().traffic().wan_bytes;
  return out;
}

void BM_PeerBatch(benchmark::State& state) {
  const int peers = static_cast<int>(state.range(0));
  const auto flush_delay = util::milliseconds(state.range(1));
  Result r{};
  for (auto _ : state) {
    r = run_propagation(peers, flush_delay);
  }
  const double per_evt =
      r.events_rx == 0 ? 0.0
                       : static_cast<double>(r.fwd_calls) /
                             static_cast<double>(r.events_rx);
  state.counters["fwd_calls"] = static_cast<double>(r.fwd_calls);
  state.counters["events_rx"] = static_cast<double>(r.events_rx);
  state.counters["calls_per_evt"] = per_evt;
  state.counters["wan_bytes"] = static_cast<double>(r.wan_bytes);
  state.counters["p50_ms"] = util::to_ms(r.p50);
  char per_evt_s[32];
  std::snprintf(per_evt_s, sizeof(per_evt_s), "%.4f", per_evt);
  summary().row({std::to_string(peers),
                 state.range(1) == 0 ? "per-event" : "batched/5ms",
                 workload::fmt_int(r.fwd_calls), workload::fmt_int(r.events_rx),
                 per_evt_s, util::format_duration(r.p50),
                 util::format_duration(r.p95), workload::fmt_int(r.wan_msgs),
                 util::format_bytes(r.wan_bytes)});
}
BENCHMARK(BM_PeerBatch)
    ->ArgNames({"peers", "flush_ms"})
    ->Args({1, 0})->Args({1, 5})
    ->Args({4, 0})->Args({4, 5})
    ->Args({8, 0})->Args({8, 5})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

struct DirResult {
  std::uint64_t fulls = 0;
  std::uint64_t deltas = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wan_msgs = 0;
};

DirResult run_directory(bool use_deltas) {
  workload::ScenarioConfig cfg;
  cfg.wan = {util::milliseconds(20), 12.5e6};
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  cfg.server_template.peer_dir_deltas = use_deltas;
  workload::Scenario scenario(cfg);
  auto& host = scenario.add_server("host", 1);
  std::vector<core::DiscoverServer*> sites;
  for (int p = 0; p < 4; ++p) {
    sites.push_back(&scenario.add_server("site" + std::to_string(p),
                                         2 + static_cast<std::uint32_t>(p)));
  }
  // A directory worth shipping: 16 registered applications, mostly idle so
  // refresh traffic (not event traffic) dominates the WAN.
  std::vector<app::SyntheticApp*> apps;
  for (int a = 0; a < 16; ++a) {
    app::AppConfig app_cfg;
    app_cfg.name = "app" + std::to_string(a);
    app_cfg.step_time = util::milliseconds(50);
    app_cfg.update_every = 0;
    app_cfg.interact_every = 0;
    apps.push_back(&scenario.add_app<app::SyntheticApp>(
        host, app_cfg, app::SyntheticSpec{}));
  }
  scenario.run_until([&] {
    for (auto* a : apps) {
      if (!a->registered()) return false;
    }
    return host.peer_count() == sites.size();
  });

  scenario.net().reset_traffic();
  std::vector<core::ServerStats> before;
  for (auto* site : sites) before.push_back(site->stats());
  scenario.run_for(util::seconds(5));

  DirResult out;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const core::ServerStats s = sites[i]->stats();
    out.fulls += s.dir_fulls_in - before[i].dir_fulls_in;
    out.deltas += s.dir_deltas_in - before[i].dir_deltas_in;
    out.bytes += s.dir_refresh_bytes - before[i].dir_refresh_bytes;
  }
  out.wan_msgs = scenario.net().traffic().wan_messages;
  return out;
}

void BM_DirRefresh(benchmark::State& state) {
  const bool deltas = state.range(0) != 0;
  DirResult r{};
  for (auto _ : state) {
    r = run_directory(deltas);
  }
  state.counters["dir_bytes"] = static_cast<double>(r.bytes);
  state.counters["dir_fulls"] = static_cast<double>(r.fulls);
  dir_summary().row({deltas ? "deltas" : "full-every-round",
                     workload::fmt_int(r.fulls), workload::fmt_int(r.deltas),
                     util::format_bytes(r.bytes),
                     workload::fmt_int(r.wan_msgs)});
}
BENCHMARK(BM_DirRefresh)
    ->ArgNames({"deltas"})
    ->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print(); dir_summary().print())
