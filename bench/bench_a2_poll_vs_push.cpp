// A2 (ablation): HTTP poll-and-pull vs server push (paper §6.2: HTTP
// "necessitates a poll and pull mechanism ... makes it necessary to
// maintain FIFO buffers at the server for each client to support slow
// clients", with memory and performance overheads).  We compare the
// paper's poll-and-pull portal against the server-push extension on the
// same workload.  Expected shape: push delivers fresher updates (latency
// independent of the poll period), needs no FIFO memory, and sends one
// message per event instead of poll round trips.
#include "bench_common.h"

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "A2: poll-and-pull vs server push (1 app @ ~33 upd/s, 4 clients)",
      {"mode", "staleness_p50", "staleness_p95", "peak_fifo_backlog",
       "http_msgs", "events_delivered"});
  return s;
}

struct Result {
  util::Duration p50 = 0;
  util::Duration p95 = 0;
  std::size_t peak_backlog = 0;
  std::uint64_t http_msgs = 0;
  std::uint64_t delivered = 0;
};

Result run_mode(bool push, util::Duration poll_period) {
  workload::Scenario scenario;
  auto& server = scenario.add_server("srv", 1);
  app::AppConfig cfg;
  cfg.name = "feed";
  cfg.acl = workload::make_acl({{"u0", security::Privilege::read_only},
                                {"u1", security::Privilege::read_only},
                                {"u2", security::Privilege::read_only},
                                {"u3", security::Privilege::read_only}});
  cfg.step_time = util::milliseconds(3);
  cfg.update_every = 10;  // update every 30 ms
  cfg.interact_every = 0;
  auto& feed = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                   app::SyntheticSpec{});
  scenario.run_until([&] { return feed.registered(); });
  const proto::AppId app_id = feed.app_id();

  std::vector<core::DiscoverClient*> clients;
  for (int i = 0; i < 4; ++i) {
    core::ClientConfig ccfg;
    ccfg.poll_period = poll_period;
    auto& c = scenario.add_client("u" + std::to_string(i), server, ccfg);
    clients.push_back(&c);
    (void)workload::sync_login(scenario.net(), c);
    (void)workload::sync_select(scenario.net(), c, app_id);
    if (push) {
      (void)workload::sync_group_op(scenario.net(), c, app_id,
                                    proto::GroupOp::enable_push, "");
    } else {
      scenario.net().post(c.node(), [&c, app_id] { c.start_polling(app_id); });
    }
  }

  // Staleness = event's host timestamp -> client receipt (virtual time),
  // captured by the event handler as each update lands.
  util::LatencyHistogram staleness;
  for (auto* c : clients) {
    c->set_event_handler(
        [&staleness, &scenario](const proto::ClientEvent& ev) {
          if (ev.kind == proto::EventKind::update) {
            staleness.record(scenario.net().now() - ev.at);
          }
        });
  }

  // Steady state for 5 simulated seconds; track the worst FIFO backlog.
  scenario.net().reset_traffic();
  Result out;
  for (int i = 0; i < 50; ++i) {
    scenario.run_for(util::milliseconds(100));
    out.peak_backlog = std::max(out.peak_backlog,
                                server.total_fifo_backlog());
  }
  out.http_msgs = scenario.net().traffic().messages;
  for (auto* c : clients) out.delivered += c->events_received();
  out.p50 = staleness.percentile(0.5);
  out.p95 = staleness.percentile(0.95);
  return out;
}

void BM_A2(benchmark::State& state) {
  const bool push = state.range(0) != 0;
  const auto poll_period = util::milliseconds(state.range(1));
  Result r{};
  for (auto _ : state) {
    r = run_mode(push, poll_period);
  }
  state.counters["staleness_p50_ms"] = util::to_ms(r.p50);
  state.counters["peak_backlog"] = static_cast<double>(r.peak_backlog);
  const std::string mode =
      push ? "push"
           : "poll/" + util::format_duration(poll_period);
  summary().row({mode, util::format_duration(r.p50),
                 util::format_duration(r.p95),
                 workload::fmt_int(r.peak_backlog),
                 workload::fmt_int(r.http_msgs),
                 workload::fmt_int(r.delivered)});
}
BENCHMARK(BM_A2)
    ->Args({0, 25})->Args({0, 50})->Args({0, 100})->Args({0, 200})
    ->Args({1, 100})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
