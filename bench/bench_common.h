// Shared scaffolding for the experiment benches: every binary registers
// google-benchmark cases for its sweep points AND accumulates rows for a
// paper-style summary table printed after the run (see DESIGN.md §4 for
// the experiment ids).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "workload/report.h"

namespace discover::bench {

/// Collects summary rows during benchmark execution; printed from main().
class Summary {
 public:
  Summary(std::string title, std::vector<std::string> columns)
      : table_(std::move(title), std::move(columns)) {}

  void row(std::vector<std::string> cells) {
    table_.add_row(std::move(cells));
  }
  void print() const { table_.print(); }

 private:
  workload::Table table_;
};

}  // namespace discover::bench

/// Standard main: run benchmarks, then print the summary table(s).
#define DISCOVER_BENCH_MAIN(...)                                   \
  int main(int argc, char** argv) {                                \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    __VA_ARGS__;                                                   \
    return 0;                                                      \
  }
