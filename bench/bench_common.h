// Shared scaffolding for the experiment benches: every binary registers
// google-benchmark cases for its sweep points AND accumulates rows for a
// paper-style summary table printed after the run (see DESIGN.md §4 for
// the experiment ids).
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/client.h"
#include "net/network.h"
#include "workload/report.h"

namespace discover::bench {

/// A portal client whose inbox can be switched into counting mode: during a
/// measured fan-out storm it only tallies arriving messages and bytes
/// instead of parsing them, so the measurement isolates the server's
/// fan-out path from client-side decode cost.  Counters are atomic so the
/// same type works on both SimNetwork and ThreadNetwork.
class CountingClient final : public net::MessageHandler {
 public:
  CountingClient(net::Network& network, core::ClientConfig config)
      : inner_(network, std::move(config)) {}

  void attach(net::NodeId self) { inner_.attach(self); }

  void on_message(const net::Message& msg) override {
    if (counting_.load(std::memory_order_relaxed)) {
      messages_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
      return;
    }
    inner_.on_message(msg);
  }

  /// The wrapped client, used for the HTTP setup phase (login/select/...).
  [[nodiscard]] core::DiscoverClient& portal() { return inner_; }
  void set_counting(bool on) {
    counting_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t counted_messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t counted_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  core::DiscoverClient inner_;
  std::atomic<bool> counting_{false};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Collects summary rows during benchmark execution; printed from main().
class Summary {
 public:
  Summary(std::string title, std::vector<std::string> columns)
      : table_(std::move(title), std::move(columns)) {}

  void row(std::vector<std::string> cells) {
    table_.add_row(std::move(cells));
  }
  void print() const { table_.print(); }

 private:
  workload::Table table_;
};

}  // namespace discover::bench

/// Standard main: run benchmarks, then print the summary table(s).
#define DISCOVER_BENCH_MAIN(...)                                   \
  int main(int argc, char** argv) {                                \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    __VA_ARGS__;                                                   \
    return 0;                                                      \
  }
