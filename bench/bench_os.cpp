// Transport A/B: loopback-TCP (OsNetwork) vs in-process (ThreadNetwork).
//
// The same point-to-point workload — one source node streaming payloads to
// one sink node — runs over both real-time backends, so the recorded
// events/sec prices exactly what the OS socket path adds: frame
// encode/decode, syscalls, the event loop and kernel loopback copies.
// Payloads are built once and sent as refcounted net::Payload, so the
// encode-once zero-copy path is what is measured on both sides.
// scripts/bench_os.sh runs the sweep and writes BENCH_os.json with the
// os-over-thread throughput ratios per payload size.
#include "bench_common.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "net/os_network.h"
#include "net/thread_network.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "Transport A/B: one-way stream throughput, ThreadNetwork vs "
      "OsNetwork over 127.0.0.1 (E13)",
      {"backend", "payload_bytes", "messages", "events_per_s", "MB_per_s"});
  return s;
}

/// Counts deliveries and wakes the bench thread at the target.
class CountingSink final : public net::MessageHandler {
 public:
  void on_message(const net::Message& msg) override {
    std::uint64_t n;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      n = ++count_;
      bytes_ += msg.payload.size();
    }
    if (n >= target_) cv_.notify_all();
  }

  void arm(std::uint64_t target) {
    const std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    bytes_ = 0;
    target_ = target;
  }

  bool wait(std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return count_ >= target_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t count_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t target_ = ~0ULL;
};

class NullSource final : public net::MessageHandler {
 public:
  void on_message(const net::Message&) override {}
};

struct RunResult {
  double events_per_s = 0;
  double mb_per_s = 0;
  std::uint64_t messages = 0;
};

RunResult run_stream(net::Network& net, net::NodeId src, net::NodeId dst,
                     CountingSink& sink, std::size_t payload_bytes,
                     std::uint64_t messages) {
  // Encode once; every send shares the same refcounted buffer.
  util::Bytes body(payload_bytes);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i * 131);
  }
  const net::Payload payload{std::move(body)};

  sink.arm(messages);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < messages; ++i) {
    net.send(src, dst, net::Channel::main_channel, payload);
  }
  const bool done = sink.wait(std::chrono::seconds(60));
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  RunResult r;
  r.messages = messages;
  if (done && secs > 0) {
    r.events_per_s = static_cast<double>(messages) / secs;
    r.mb_per_s = static_cast<double>(messages) *
                 static_cast<double>(payload_bytes) / secs / (1024 * 1024);
  }
  return r;
}

std::uint64_t messages_for(std::size_t payload_bytes) {
  if (payload_bytes <= 256) return 200000;
  if (payload_bytes <= 8192) return 50000;
  return 4000;
}

void BM_Transport(benchmark::State& state) {
  const bool os = state.range(0) == 1;
  const auto payload_bytes = static_cast<std::size_t>(state.range(1));
  const std::uint64_t messages = messages_for(payload_bytes);
  RunResult result;

  for (auto _ : state) {
    NullSource source;
    CountingSink sink;
    if (os) {
      net::OsNetwork sink_net;
      sink_net.add_remote("src", "127.0.0.1", 0);
      const net::NodeId dst = sink_net.add_node("sink", &sink);
      if (!sink_net.start().ok()) {
        state.SkipWithError("sink_net start failed");
        break;
      }
      net::OsNetworkConfig src_cfg;
      src_cfg.listen = false;
      net::OsNetwork src_net(src_cfg);
      const net::NodeId src = src_net.add_node("src", &source);
      src_net.add_remote("sink", "127.0.0.1", sink_net.listen_port());
      if (!src_net.start().ok()) {
        state.SkipWithError("src_net start failed");
        break;
      }
      result = run_stream(src_net, src, dst, sink, payload_bytes, messages);
      src_net.stop();
      sink_net.stop();
    } else {
      net::ThreadNetwork tnet;
      const net::NodeId src = tnet.add_node("src", &source);
      const net::NodeId dst = tnet.add_node("sink", &sink);
      tnet.start();
      result = run_stream(tnet, src, dst, sink, payload_bytes, messages);
      tnet.stop();
    }
  }

  state.counters["events_per_sec"] = result.events_per_s;
  state.counters["mb_per_sec"] = result.mb_per_s;
  state.SetItemsProcessed(static_cast<std::int64_t>(result.messages) *
                          static_cast<std::int64_t>(state.iterations()));
  summary().row({os ? "os" : "thread", std::to_string(payload_bytes),
                 std::to_string(result.messages),
                 std::to_string(static_cast<std::uint64_t>(
                     result.events_per_s)),
                 std::to_string(result.mb_per_s)});
}

}  // namespace

BENCHMARK(BM_Transport)
    ->ArgNames({"os", "bytes"})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

DISCOVER_BENCH_MAIN(summary().print())
