// Shard sweep: one DiscoverServer on the ThreadNetwork with the servlet
// core striped across shard_count worker shards (DESIGN.md §5i).  A fixed
// closed-loop client population (64 portal users polling and issuing read
// commands) saturates the calibrated 1500us servlet burn, so the served
// request rate tracks how many cores the burn actually parallelises over:
// shard_count = 1 pins everything on one worker (~1/burn req/s), higher
// counts scale until the client population itself becomes the limit.
// scripts/bench_shards.sh runs the sweep and records BENCH_shards.json;
// the acceptance line is >= 2x events/sec at shard_count = 4 vs 1.
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "app/synthetic.h"
#include "workload/drivers.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace {

using namespace discover;

constexpr int kClients = 64;
constexpr int kApps = 4;

bench::Summary& summary() {
  static bench::Summary s(
      "Shard sweep: closed-loop portal load vs shard_count (ThreadNetwork, "
      "1500us servlet burn; 64 clients over 4 apps)",
      {"shards", "req_per_s", "rtt_p50", "rtt_p95", "rtt_max", "acks_ok",
       "routed"});
  return s;
}

void BM_Shards(benchmark::State& state) {
  const auto shard_count = static_cast<std::uint32_t>(state.range(0));
  util::LatencyHistogram rtt;
  std::uint64_t acks_ok = 0;
  std::uint64_t routed = 0;
  double req_rate = 0;

  for (auto _ : state) {
    core::ServerConfig server_cfg;
    // Same calibrated 2001-era servlet cost as the E2 knee experiment, so
    // the two benches share a baseline (ServerConfig::servlet_cpu_cost).
    // Modelled as blocking service time rather than a CPU spin: shard
    // workers then overlap the burn even when the host has fewer physical
    // cores than shards, so the sweep measures the dispatch pipeline and
    // not the CI container's core count.
    server_cfg.servlet_cpu_cost = util::microseconds(1500);
    server_cfg.servlet_cost_sleeps = true;
    server_cfg.shard_count = shard_count;
    workload::ThreadScenario scenario(server_cfg);
    auto& server = scenario.add_server("portal");

    std::vector<security::AclEntry> acl;
    for (int i = 0; i < kClients; ++i) {
      acl.push_back({"u" + std::to_string(i),
                     security::Privilege::read_only, 0});
    }
    // Several app endpoints so no single app node serialises the command
    // acks; the servlet burn itself runs on the server's shard workers.
    std::vector<app::SyntheticApp*> apps;
    for (int a = 0; a < kApps; ++a) {
      app::AppConfig cfg;
      cfg.name = "target" + std::to_string(a);
      cfg.acl = acl;
      cfg.step_time = util::milliseconds(10);
      cfg.update_every = 0;  // client-driven load only
      cfg.interact_every = 4;
      cfg.interaction_window = util::milliseconds(2);
      apps.push_back(&scenario.add_app<app::SyntheticApp>(
          server, cfg, app::SyntheticSpec{4, 8, 50}));
    }

    std::vector<core::DiscoverClient*> clients;
    for (int i = 0; i < kClients; ++i) {
      core::ClientConfig ccfg;
      ccfg.poll_period = util::milliseconds(50);
      clients.push_back(&scenario.add_client("u" + std::to_string(i), server,
                                             ccfg));
    }
    scenario.start();
    for (auto* a : apps) {
      workload::wait_for(scenario.net(), [&] { return a->registered(); },
                         util::seconds(10));
    }

    std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
    for (int i = 0; i < kClients; ++i) {
      core::DiscoverClient* c = clients[static_cast<std::size_t>(i)];
      const proto::AppId app_id =
          apps[static_cast<std::size_t>(i % kApps)]->app_id();
      (void)workload::sync_login(scenario.net(), *c, util::seconds(20));
      (void)workload::sync_select(scenario.net(), *c, app_id,
                                  util::seconds(20));
      workload::DriverConfig dcfg;
      dcfg.command_period = util::milliseconds(25);
      dcfg.kind = proto::CommandKind::get_param;
      dcfg.param = "param_0";
      drivers.push_back(std::make_unique<workload::ClientDriver>(
          scenario.net(), *c, app_id, dcfg));
    }
    const std::uint64_t req_before = server.live_requests_served();
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& d : drivers) d->start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2000));
    for (auto& d : drivers) d->stop();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t req_after = server.live_requests_served();
    scenario.net().wait_idle(util::seconds(5));
    scenario.stop();

    // Workers joined: per-client histograms and server internals are safe.
    for (auto* c : clients) rtt.merge(c->http().round_trip_latency());
    for (auto& d : drivers) acks_ok += d->acks_ok();
    routed = server.metrics().counter_value("shard_routed_total");
    req_rate = static_cast<double>(req_after - req_before) / elapsed_s;
  }

  state.counters["events_per_sec"] = req_rate;
  state.counters["rtt_p50_ms"] = util::to_ms(rtt.percentile(0.5));
  state.counters["rtt_p95_ms"] = util::to_ms(rtt.percentile(0.95));
  state.counters["acks_ok"] = static_cast<double>(acks_ok);
  summary().row({workload::fmt_int(shard_count),
                 workload::fmt_double(req_rate, 0),
                 util::format_duration(rtt.percentile(0.5)),
                 util::format_duration(rtt.percentile(0.95)),
                 util::format_duration(rtt.max()),
                 workload::fmt_int(acks_ok), workload::fmt_int(routed)});
}
BENCHMARK(BM_Shards)
    ->ArgNames({"shards"})
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
