// OBS (observability ablation): what does end-to-end tracing cost?  Each
// arm replays the SAME flash-crowd scenario (fixed spec + seed, so the
// discrete-event schedule and sim-time results are fixed) while sweeping
// trace_sample_every: 0 (tracing off), 16 (default: first root of every
// 16), 1 (trace every request), plus an everything-off arm that also
// drops the per-stage latency histograms.  Because sim time is pinned,
// the wall clock measures only the host-side bookkeeping — span minting,
// ring appends, histogram records, header/tail encoding — and events/s
// is directly comparable across arms.  Expected shape: the default
// stride costs <=5% of the all-off arm's events/s and tracing-off is in
// the noise; the trace-everything arm bounds the worst case.
#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <map>

#include "workload/scenario_spec.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "OBS: tracing + stage-histogram overhead (flash crowd, fixed seed; "
      "same sim schedule per arm, wall clock isolates observability cost)",
      {"clients", "trace", "stage", "events", "spans", "wall",
       "events_per_s", "vs_off"});
  return s;
}

struct ObsResult {
  std::uint64_t events = 0;
  std::uint64_t polls = 0;
  std::int64_t spans = 0;
  double wall_s = 0.0;
};

ObsResult run_observe(std::uint64_t trace_every, std::uint64_t stage_every,
                      std::uint32_t clients) {
  workload::ScenarioSpec spec = workload::flash_crowd_spec(clients, 1);
  spec.trace_sample_every = trace_every;
  spec.stage_sample_every = stage_every;
  workload::ScenarioEngine engine(std::move(spec));
  const auto t0 = std::chrono::steady_clock::now();
  const workload::ScenarioMetrics m = engine.run();
  const auto t1 = std::chrono::steady_clock::now();

  ObsResult out;
  out.events = m.events_delivered;
  out.polls = m.polls;
  const auto it = m.server_metrics.find("trace_spans_recorded");
  if (it != m.server_metrics.end()) out.spans = it->second;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

// events/s of the all-off arm per client scale, so later rows can report
// their overhead relative to it (arms run in registration order).
double& baseline_eps(std::uint32_t clients) {
  static std::map<std::uint32_t, double> base;
  return base[clients];
}

void BM_ObserveOverhead(benchmark::State& state) {
  const auto trace_every = static_cast<std::uint64_t>(state.range(0));
  const auto stage_every = static_cast<std::uint64_t>(state.range(1));
  const auto clients = static_cast<std::uint32_t>(state.range(2));
  ObsResult r{};
  for (auto _ : state) {
    // Best-of-3: the sim schedule (and so the event counts) is identical
    // every run, so the minimum wall time is the least-noisy estimate of
    // the bookkeeping cost on a shared machine.
    for (int rep = 0; rep < 3; ++rep) {
      ObsResult one = run_observe(trace_every, stage_every, clients);
      if (rep == 0 || one.wall_s < r.wall_s) r = one;
    }
    state.SetIterationTime(r.wall_s);
  }
  const double eps =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  if (trace_every == 0 && stage_every == 0) baseline_eps(clients) = eps;
  const double base = baseline_eps(clients);
  // Negative = slower than the all-off arm.  Acceptance: default stride
  // within 5%, tracing-off within noise.
  const double delta_pct = base > 0 ? (eps / base - 1.0) * 100.0 : 0.0;

  state.counters["events"] = static_cast<double>(r.events);
  state.counters["polls"] = static_cast<double>(r.polls);
  state.counters["spans"] = static_cast<double>(r.spans);
  state.counters["events_per_s"] = eps;
  state.counters["overhead_pct"] = -delta_pct;

  char wall_s[32], eps_s[32], delta_s[32];
  std::snprintf(wall_s, sizeof(wall_s), "%.3fs", r.wall_s);
  std::snprintf(eps_s, sizeof(eps_s), "%.0f", eps);
  std::snprintf(delta_s, sizeof(delta_s), "%+.1f%%", delta_pct);
  const char* trace_label = trace_every == 0   ? "off"
                            : trace_every == 1 ? "all"
                                               : "1/16";
  summary().row({std::to_string(clients), trace_label,
                 stage_every == 0 ? "off" : "on", workload::fmt_int(r.events),
                 workload::fmt_int(static_cast<std::uint64_t>(r.spans)),
                 wall_s, eps_s,
                 trace_every == 0 && stage_every == 0 ? "base" : delta_s});
}
BENCHMARK(BM_ObserveOverhead)
    ->ArgNames({"trace", "stage", "clients"})
    // Smoke scale (ctest -L bench-smoke runs the clients:64 pair).
    ->Args({0, 0, 64})
    ->Args({16, 1, 64})
    // Full A/B at the sweep scale (scripts/bench_observe.sh).
    ->Args({0, 0, 512})
    ->Args({0, 1, 512})
    ->Args({16, 1, 512})
    ->Args({1, 1, 512})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
