// Federation sweep: a sharded origin server pushes batched events to an
// unsharded subscribing peer (DESIGN.md §5j).  Apps at the origin publish a
// steady collab stream; the subscriber watches every app through the
// cross-server push path, and each inbound event burns a calibrated
// per-event application cost on its owning core at the receiver
// (ServerConfig::app_event_cpu_cost, modelled as blocking service time so
// the sweep measures the dispatch pipeline, not the CI container's core
// count).  With shard_count = 1 every peer event funnels through one
// worker (~1/burn events/s); higher counts spread the ingest across owning
// cores.  scripts/bench_federation.sh runs the sweep and records
// BENCH_federation.json; the acceptance line is >= 2x cross-server
// events/sec at shard_count = 4 vs 1.
#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "app/synthetic.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace {

using namespace discover;

constexpr int kApps = 8;
constexpr auto kPostPeriod = std::chrono::milliseconds(2);
constexpr auto kMeasureWindow = std::chrono::milliseconds(2000);

bench::Summary& summary() {
  static bench::Summary s(
      "Federation sweep: cross-server push ingest vs receiver shard_count "
      "(ThreadNetwork, 8 origin apps, 1200us per-event burn at the "
      "receiver)",
      {"shards", "events_per_s", "peer_events_in", "batches_out"});
  return s;
}

void BM_Federation(benchmark::State& state) {
  const auto shard_count = static_cast<std::uint32_t>(state.range(0));
  double event_rate = 0;
  std::uint64_t peer_events = 0;
  std::uint64_t batches_in = 0;

  for (auto _ : state) {
    // Only the SUBSCRIBER shards: the sweep prices how inbound peer
    // traffic spreads over owning cores, so the origin stays fixed.
    core::ServerConfig sub_cfg;
    sub_cfg.shard_count = shard_count;
    sub_cfg.app_event_cpu_cost = util::microseconds(1200);
    sub_cfg.servlet_cost_sleeps = true;
    sub_cfg.peer_refresh_period = util::milliseconds(100);
    workload::ThreadScenario scenario(sub_cfg);
    auto& sub = scenario.add_server("sub", 1);
    // The origin side runs with the same template (it shards too); its
    // cost knob only fires on inbound peer events, of which it has none.
    auto& origin = scenario.add_server("origin", 2);

    std::vector<security::AclEntry> acl;
    acl.push_back({"watcher", security::Privilege::read_only, 0});
    for (int a = 0; a < kApps; ++a) {
      acl.push_back({"p" + std::to_string(a), security::Privilege::steer, 0});
    }
    std::vector<app::SyntheticApp*> apps;
    for (int a = 0; a < kApps; ++a) {
      app::AppConfig cfg;
      cfg.name = "origin" + std::to_string(a);
      cfg.acl = acl;
      cfg.step_time = util::milliseconds(10);
      cfg.update_every = 0;  // poster-driven load only
      cfg.interact_every = 0;
      apps.push_back(&scenario.add_app<app::SyntheticApp>(
          origin, cfg, app::SyntheticSpec{}));
    }
    // Anchor app so the watcher can authenticate at `sub`.
    app::AppConfig anchor;
    anchor.name = "anchor";
    anchor.acl = acl;
    anchor.step_time = util::milliseconds(10);
    anchor.update_every = 0;
    anchor.interact_every = 0;
    scenario.add_app<app::SyntheticApp>(sub, anchor, app::SyntheticSpec{});

    auto& watcher = scenario.add_client("watcher", sub);
    std::vector<core::DiscoverClient*> posters;
    for (int a = 0; a < kApps; ++a) {
      posters.push_back(
          &scenario.add_client("p" + std::to_string(a), origin));
    }
    scenario.start();
    for (auto* a : apps) {
      workload::wait_for(scenario.net(), [&] { return a->registered(); },
                         util::seconds(10));
    }
    workload::wait_for(
        scenario.net(),
        [&] { return sub.peer_count() == 1 && origin.peer_count() == 1; },
        util::seconds(20));

    // Watcher subscribes to every origin app over the peer link, push on.
    workload::wait_for(
        scenario.net(),
        [&] {
          auto l = workload::sync_login(scenario.net(), watcher,
                                        util::seconds(20));
          if (!l.ok() || !l.value().ok) return false;
          auto sel = workload::sync_select(scenario.net(), watcher,
                                           apps[0]->app_id(),
                                           util::seconds(20));
          return sel.ok() && sel.value().ok;
        },
        util::seconds(30));
    for (auto* a : apps) {
      (void)workload::sync_select(scenario.net(), watcher, a->app_id(),
                                  util::seconds(20));
      (void)workload::sync_group_op(scenario.net(), watcher, a->app_id(),
                                    proto::GroupOp::enable_push, "",
                                    util::seconds(20));
    }
    for (int a = 0; a < kApps; ++a) {
      (void)workload::sync_login(scenario.net(), *posters[a],
                                 util::seconds(20));
      (void)workload::sync_select(scenario.net(), *posters[a],
                                  apps[a]->app_id(), util::seconds(20));
    }

    // Open-loop posters: one thread per app fires chats at a rate well
    // above what a single receiving core can burn through, so the
    // subscriber's ingest is the bottleneck being priced.
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int a = 0; a < kApps; ++a) {
      core::DiscoverClient* c = posters[static_cast<std::size_t>(a)];
      const proto::AppId id = apps[static_cast<std::size_t>(a)]->app_id();
      threads.emplace_back([&scenario, &stop, c, id] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          (void)workload::sync_collab_post(scenario.net(), *c, id,
                                           proto::EventKind::chat,
                                           "m" + std::to_string(i++),
                                           util::seconds(5));
          std::this_thread::sleep_for(kPostPeriod);
        }
      });
    }

    // Let the pipeline fill, then measure the subscriber's ingest rate.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const std::uint64_t before = sub.live_peer_events_in();
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(kMeasureWindow);
    const std::uint64_t after = sub.live_peer_events_in();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stop.store(true);
    for (auto& t : threads) t.join();
    scenario.stop();

    event_rate = static_cast<double>(after - before) / elapsed_s;
    peer_events = after - before;
    batches_in = origin.stats_sum().peer_batches_out;
  }

  state.counters["events_per_sec"] = event_rate;
  state.counters["peer_events_in"] = static_cast<double>(peer_events);
  summary().row({workload::fmt_int(shard_count),
                 workload::fmt_double(event_rate, 0),
                 workload::fmt_int(peer_events),
                 workload::fmt_int(batches_in)});
}
BENCHMARK(BM_Federation)
    ->ArgNames({"shards"})
    ->Arg(1)->Arg(2)->Arg(4)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
