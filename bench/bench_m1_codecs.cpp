// M1 (micro): codec costs underlying every middleware path — CDR
// encode/decode, framed protocol messages, HTTP parse/serialize, GIOP-style
// request frames.  These constants set the floor for the E-series results.
#include <benchmark/benchmark.h>

#include "http/http_message.h"
#include "proto/messages.h"
#include "wire/cdr.h"

namespace {

using namespace discover;

proto::ClientEvent sample_event(int metric_count) {
  proto::ClientEvent ev;
  ev.kind = proto::EventKind::update;
  ev.seq = 123456;
  ev.app = {7, 3};
  ev.at = 42'000'000;
  ev.user = "alice";
  ev.iteration = 991;
  for (int i = 0; i < metric_count; ++i) {
    ev.metrics["metric_" + std::to_string(i)] = 1.5 * i;
  }
  return ev;
}

void BM_CdrEncodeClientEvent(benchmark::State& state) {
  const auto ev = sample_event(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    wire::Encoder e;
    proto::encode(e, ev);
    bytes = e.size();
    benchmark::DoNotOptimize(e.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_CdrEncodeClientEvent)->Arg(0)->Arg(8)->Arg(32);

void BM_CdrDecodeClientEvent(benchmark::State& state) {
  const auto ev = sample_event(static_cast<int>(state.range(0)));
  wire::Encoder e;
  proto::encode(e, ev);
  const util::Bytes data = e.data();
  for (auto _ : state) {
    wire::Decoder d(data);
    auto decoded = proto::decode_client_event(d);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(data.size()) *
                          state.iterations());
}
BENCHMARK(BM_CdrDecodeClientEvent)->Arg(0)->Arg(8)->Arg(32);

void BM_FramedAppUpdateRoundTrip(benchmark::State& state) {
  proto::AppUpdate update;
  update.app_id = {7, 3};
  update.iteration = 12;
  update.sim_time = 44.5;
  for (int i = 0; i < 8; ++i) {
    update.metrics["m" + std::to_string(i)] = 0.5 * i;
  }
  for (auto _ : state) {
    const util::Bytes frame =
        proto::encode_framed(proto::FramedMessage{update});
    auto decoded = proto::decode_framed(frame);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_FramedAppUpdateRoundTrip);

void BM_HttpSerializeRequest(benchmark::State& state) {
  http::HttpRequest req;
  req.method = http::Method::post;
  req.path = "/discover/command";
  req.headers.set("X-Request-Id", "123456");
  req.headers.set("Cookie", "DISCOVERID=42");
  req.body = util::Bytes(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    const util::Bytes wire_bytes = http::serialize(req);
    benchmark::DoNotOptimize(wire_bytes);
  }
}
BENCHMARK(BM_HttpSerializeRequest)->Arg(64)->Arg(1024);

void BM_HttpParseRequest(benchmark::State& state) {
  http::HttpRequest req;
  req.method = http::Method::post;
  req.path = "/discover/command";
  req.headers.set("X-Request-Id", "123456");
  req.headers.set("Cookie", "DISCOVERID=42");
  req.body = util::Bytes(static_cast<std::size_t>(state.range(0)), 0x5A);
  const util::Bytes wire_bytes = http::serialize(req);
  for (auto _ : state) {
    auto parsed = http::parse_request(wire_bytes);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(wire_bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_HttpParseRequest)->Arg(64)->Arg(1024);

void BM_TokenIssueVerify(benchmark::State& state) {
  security::TokenAuthority authority(3, 0xFEED);
  for (auto _ : state) {
    const auto token = authority.issue("alice", 1000, 1'000'000);
    benchmark::DoNotOptimize(authority.verify(token, 2000));
  }
}
BENCHMARK(BM_TokenIssueVerify);

}  // namespace

BENCHMARK_MAIN();
