// E1: simultaneous applications per server (paper §6.1: "the current
// middleware can support more than 40 simultaneous applications on a
// single server").  Real threads, real time: N synthetic applications
// stream periodic updates over the custom framed protocol to one server.
// Expected shape: all N register, and the server sustains the offered
// update rate with flat efficiency through N=40 and beyond (the custom
// TCP-style app path is cheap — contrast with E2's HTTP client path).
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "app/synthetic.h"
#include "workload/thread_scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

constexpr util::Duration kMeasureWindow = util::milliseconds(1200);
constexpr int kUpdatesPerSecPerApp = 50;  // step 10ms, update every 2 steps

bench::Summary& summary() {
  static bench::Summary s(
      "E1: simultaneous applications on one server (ThreadNetwork, "
      "real time; paper: >40 supported)",
      {"apps", "registered", "offered_upd_per_s", "sustained_upd_per_s",
       "efficiency"});
  return s;
}

void BM_E1(benchmark::State& state) {
  const int n_apps = static_cast<int>(state.range(0));
  double offered = 0;
  double sustained = 0;
  std::uint64_t registered = 0;

  for (auto _ : state) {
    workload::ThreadScenario scenario;
    auto& server = scenario.add_server("loaded");
    std::vector<app::SyntheticApp*> apps;
    for (int i = 0; i < n_apps; ++i) {
      app::AppConfig cfg;
      cfg.name = "app" + std::to_string(i);
      cfg.acl = workload::make_acl({{"alice", security::Privilege::steer}});
      cfg.step_time = util::milliseconds(10);
      cfg.update_every = 2;  // 50 updates/s per app
      cfg.interact_every = 0;
      apps.push_back(&scenario.add_app<app::SyntheticApp>(
          server, cfg, app::SyntheticSpec{4, 8, 50}));
    }
    scenario.start();
    workload::wait_for(
        scenario.net(),
        [&] {
          return server.live_apps_registered() ==
                 static_cast<std::uint64_t>(n_apps);
        },
        util::seconds(20));
    registered = server.live_apps_registered();

    // Measure the sustained server-side update ingest rate.
    const std::uint64_t before = server.live_updates_processed();
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::nanoseconds(kMeasureWindow));
    const std::uint64_t after = server.live_updates_processed();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    sustained = static_cast<double>(after - before) / elapsed_s;
    offered = static_cast<double>(n_apps * kUpdatesPerSecPerApp);
    scenario.stop();
  }

  state.counters["offered"] = offered;
  state.counters["sustained"] = sustained;
  state.counters["efficiency"] = offered > 0 ? sustained / offered : 0;
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_apps)),
                 workload::fmt_int(registered),
                 workload::fmt_double(offered, 0),
                 workload::fmt_double(sustained, 0),
                 workload::fmt_double(offered > 0 ? sustained / offered : 0,
                                      3)});
}
BENCHMARK(BM_E1)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(60)->Arg(80)
    ->Iterations(1)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
