// E7: cross-server collaboration traffic (paper §5.2.3).  The claim: with
// peer-to-peer servers, a collaboration event crosses the WAN ONCE PER
// REMOTE SERVER and fans out to clients over their local LAN, whereas a
// single central server sends every remote client its own copy over the
// WAN (and serves every remote poll over the WAN).  Expected shape: WAN
// messages/bytes grow with #servers in P2P but with #clients in the
// centralized deployment, and far clients see lower delivery latency in
// P2P.
#include "bench_common.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

// ---------------------------------------------------------------------------
// Global allocation counter (fan-out sweep): SimNetwork runs are
// single-threaded, so relaxed atomics cost nothing and stay correct if a
// future case spins up threads.  Aligned-new falls through to the default
// implementation — the payloads measured here are byte buffers and events
// with natural alignment.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace discover;

constexpr int kSites = 4;
constexpr int kChats = 30;

bench::Summary& summary() {
  static bench::Summary s(
      "E7: collaboration traffic, P2P server network vs centralized "
      "(4 sites, WAN 20ms)",
      {"clients", "deploy", "wan_msgs", "wan_bytes", "wan_bytes_per_event",
       "chat_delivery_p50", "events_rx_total"});
  return s;
}

struct Result {
  std::uint64_t wan_msgs = 0;
  std::uint64_t wan_bytes = 0;
  util::Duration chat_p50 = 0;
  std::uint64_t events_rx = 0;
};

Result run_deployment(int n_clients, bool p2p) {
  workload::ScenarioConfig cfg;
  cfg.wan = {util::milliseconds(20), 12.5e6};
  cfg.server_template.peer_refresh_period = util::milliseconds(100);
  workload::Scenario scenario(cfg);

  // Servers: P2P puts one per site; centralized has a single server at
  // site 1 that every remote client must reach over the WAN.
  std::vector<core::DiscoverServer*> servers;
  const int n_servers = p2p ? kSites : 1;
  for (int i = 0; i < n_servers; ++i) {
    servers.push_back(&scenario.add_server(
        "site" + std::to_string(i + 1), static_cast<std::uint32_t>(i + 1)));
  }

  std::vector<security::AclEntry> acl;
  for (int c = 0; c < n_clients; ++c) {
    acl.push_back({"user" + std::to_string(c),
                   security::Privilege::read_write, 0});
  }
  app::AppConfig app_cfg;
  app_cfg.name = "shared";
  app_cfg.acl = acl;
  app_cfg.step_time = util::milliseconds(2);
  app_cfg.update_every = 10;  // periodic updates contribute traffic too
  app_cfg.interact_every = 0;
  auto& shared = scenario.add_app<app::SyntheticApp>(*servers[0], app_cfg,
                                                     app::SyntheticSpec{});
  // In P2P mode every non-host server also hosts an identity app so users
  // can pass level-1 auth at their local server.
  if (p2p) {
    for (int i = 1; i < n_servers; ++i) {
      app::AppConfig id_cfg;
      id_cfg.name = "identity";
      id_cfg.acl = acl;
      id_cfg.step_time = util::milliseconds(50);
      id_cfg.update_every = 0;
      id_cfg.interact_every = 0;
      scenario.add_app<app::SyntheticApp>(*servers[i], id_cfg,
                                          app::SyntheticSpec{});
    }
  }
  scenario.run_until([&] {
    if (!shared.registered()) return false;
    for (auto* s : servers) {
      if (s->peer_count() != static_cast<std::size_t>(n_servers - 1)) {
        return false;
      }
    }
    return true;
  });
  const proto::AppId app_id = shared.app_id();

  // Clients round-robin across the sites.  In P2P they talk to their
  // site-local server; centralized, everyone talks to the single server
  // (crossing the WAN for sites 2..4 — Scenario places a client in its
  // server's domain, so emulate the far clients via a domain override).
  std::vector<core::DiscoverClient*> clients;
  for (int c = 0; c < n_clients; ++c) {
    const int site = c % kSites;
    core::DiscoverServer& my_server = p2p ? *servers[site] : *servers[0];
    // The client physically sits at its own site either way; with one
    // central server, sites 2..4 reach it across the WAN.
    auto& client = scenario.add_client_in_domain(
        "user" + std::to_string(c), my_server,
        static_cast<std::uint32_t>(site + 1));
    clients.push_back(&client);
    (void)workload::sync_login(scenario.net(), client);
    (void)workload::sync_select(scenario.net(), client, app_id);
  }

  // Steady state: everyone polls every 50 ms; chats posted round-robin.
  scenario.net().reset_traffic();
  util::LatencyHistogram chat_latency;
  std::vector<std::size_t> seen(clients.size(), 0);
  const auto drain_all = [&] {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      (void)workload::sync_poll(scenario.net(), *clients[i], app_id);
      const util::TimePoint now = scenario.net().now();
      const auto& events = clients[i]->received_events();
      for (std::size_t k = seen[i]; k < events.size(); ++k) {
        if (events[k].kind == proto::EventKind::chat) {
          chat_latency.record(now - events[k].at);
        }
      }
      seen[i] = events.size();
    }
  };

  for (int chat = 0; chat < kChats; ++chat) {
    auto& sender = *clients[static_cast<std::size_t>(chat) % clients.size()];
    (void)workload::sync_collab_post(scenario.net(), sender, app_id,
                                     proto::EventKind::chat,
                                     "msg" + std::to_string(chat));
    scenario.run_for(util::milliseconds(50));
    drain_all();
  }

  Result out;
  out.wan_msgs = scenario.net().traffic().wan_messages;
  out.wan_bytes = scenario.net().traffic().wan_bytes;
  out.chat_p50 = chat_latency.percentile(0.5);
  for (auto* c : clients) out.events_rx += c->events_received();
  return out;
}

void BM_E7(benchmark::State& state) {
  const int n_clients = static_cast<int>(state.range(0));
  const bool p2p = state.range(1) != 0;
  Result r{};
  for (auto _ : state) {
    r = run_deployment(n_clients, p2p);
  }
  state.counters["wan_msgs"] = static_cast<double>(r.wan_msgs);
  state.counters["chat_p50_ms"] = util::to_ms(r.chat_p50);
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n_clients)),
                 p2p ? "p2p(4 servers)" : "central(1 server)",
                 workload::fmt_int(r.wan_msgs),
                 util::format_bytes(r.wan_bytes),
                 workload::fmt_double(
                     r.events_rx > 0
                         ? static_cast<double>(r.wan_bytes) /
                               static_cast<double>(r.events_rx)
                         : 0,
                     1),
                 util::format_duration(r.chat_p50),
                 workload::fmt_int(r.events_rx)});
}
BENCHMARK(BM_E7)
    ->Args({8, 0})->Args({8, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fan-out sweep: events/sec and allocations per delivered event as one
// publish storm fans out to 8/64/512 subscribers, fast path vs legacy scan
// (ServerConfig::fanout_fast_path).  Push mode measures the encode-once
// broadcast; poll mode measures the shared-event FIFOs.
// ---------------------------------------------------------------------------

bench::Summary& fanout_summary() {
  static bench::Summary s(
      "Fan-out fast path: one chat event -> N subscribers, single server "
      "(SimNetwork; legacy = pre-index full scan + per-recipient encode)",
      {"subs", "mode", "path", "events_per_s", "allocs_per_delivery",
       "alloc_bytes_per_delivery", "delivered"});
  return s;
}

struct FanoutResult {
  std::uint64_t delivered = 0;
  double events_per_sec = 0;
  double allocs_per_delivery = 0;
  double alloc_bytes_per_delivery = 0;
};

constexpr int kFanoutEvents = 100;

FanoutResult run_fanout(int subscribers, bool push, bool fast_path) {
  workload::ScenarioConfig cfg;
  cfg.server_template.fanout_fast_path = fast_path;
  cfg.server_template.client_fifo_cap = 0;  // storm must not drop (poll mode)
  workload::Scenario scenario(cfg);
  auto& server = scenario.add_server("s", 1);

  std::vector<security::AclEntry> acl;
  acl.push_back({"driver", security::Privilege::read_write, 0});
  for (int i = 0; i < subscribers; ++i) {
    acl.push_back({"s" + std::to_string(i),
                   security::Privilege::read_only, 0});
  }
  app::AppConfig app_cfg;
  app_cfg.name = "board";
  app_cfg.acl = acl;
  app_cfg.step_time = util::milliseconds(50);
  app_cfg.update_every = 0;  // the driver's chats are the only events
  app_cfg.interact_every = 0;
  auto& app = scenario.add_app<app::SyntheticApp>(server, app_cfg,
                                                  app::SyntheticSpec{});
  scenario.run_until([&] { return app.registered(); });
  const proto::AppId app_id = app.app_id();

  // N counting sinks (setup over real HTTP, storm counted without parsing)
  // plus one regular driver client that publishes the chats.
  std::vector<std::unique_ptr<bench::CountingClient>> sinks;
  const net::DomainId domain = scenario.net().node_domain(server.node());
  for (int i = 0; i < subscribers; ++i) {
    core::ClientConfig ccfg;
    ccfg.user = "s" + std::to_string(i);
    auto sink =
        std::make_unique<bench::CountingClient>(scenario.net(), ccfg);
    const net::NodeId node = scenario.net().add_node(
        "sink" + std::to_string(i), sink.get(), domain);
    sink->attach(node);
    sink->portal().set_server(server.node());
    (void)workload::sync_login(scenario.net(), sink->portal());
    (void)workload::sync_select(scenario.net(), sink->portal(), app_id);
    if (push) {
      (void)workload::sync_group_op(scenario.net(), sink->portal(), app_id,
                                    proto::GroupOp::enable_push, "");
    }
    sinks.push_back(std::move(sink));
  }
  auto& driver = scenario.add_client("driver", server);
  (void)workload::sync_login(scenario.net(), driver);
  (void)workload::sync_select(scenario.net(), driver, app_id);

  // A realistic whiteboard-op payload (a stroke batch, ~1 KiB);
  // per-recipient serialization cost in the legacy path scales with this,
  // the shared payload does not.
  const std::string text(1024, 'w');

  for (auto& sink : sinks) sink->set_counting(true);
  const std::uint64_t delivered0 = server.stats().events_delivered;
  const std::uint64_t allocs0 =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t alloc_bytes0 =
      g_alloc_bytes.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();

  for (int k = 0; k < kFanoutEvents; ++k) {
    (void)workload::sync_collab_post(scenario.net(), driver, app_id,
                                     proto::EventKind::whiteboard, text);
  }
  scenario.run_for(util::milliseconds(100));  // flush in-flight pushes

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t delivered =
      server.stats().events_delivered - delivered0;
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs0;
  const std::uint64_t alloc_bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - alloc_bytes0;

  FanoutResult out;
  out.delivered = delivered;
  if (elapsed_s > 0) {
    out.events_per_sec = static_cast<double>(delivered) / elapsed_s;
  }
  if (delivered > 0) {
    out.allocs_per_delivery =
        static_cast<double>(allocs) / static_cast<double>(delivered);
    out.alloc_bytes_per_delivery =
        static_cast<double>(alloc_bytes) / static_cast<double>(delivered);
  }
  return out;
}

void BM_E7_Fanout(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  const bool push = state.range(1) != 0;
  const bool fast_path = state.range(2) != 0;
  FanoutResult r{};
  for (auto _ : state) {
    r = run_fanout(subscribers, push, fast_path);
  }
  state.counters["events_per_sec"] = r.events_per_sec;
  state.counters["allocs_per_delivery"] = r.allocs_per_delivery;
  state.counters["alloc_bytes_per_delivery"] = r.alloc_bytes_per_delivery;
  state.counters["delivered"] = static_cast<double>(r.delivered);
  fanout_summary().row(
      {workload::fmt_int(static_cast<std::uint64_t>(subscribers)),
       push ? "push" : "poll", fast_path ? "fast" : "legacy",
       workload::fmt_double(r.events_per_sec, 0),
       workload::fmt_double(r.allocs_per_delivery, 2),
       workload::fmt_double(r.alloc_bytes_per_delivery, 1),
       workload::fmt_int(r.delivered)});
}
BENCHMARK(BM_E7_Fanout)
    ->ArgNames({"subs", "push", "fast"})
    ->Args({8, 1, 0})->Args({8, 1, 1})
    ->Args({8, 0, 0})->Args({8, 0, 1})
    ->Args({64, 1, 0})->Args({64, 1, 1})
    ->Args({64, 0, 0})->Args({64, 0, 1})
    ->Args({512, 1, 0})->Args({512, 1, 1})
    ->Args({512, 0, 0})->Args({512, 0, 1})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

DISCOVER_BENCH_MAIN(summary().print(); fanout_summary().print())
