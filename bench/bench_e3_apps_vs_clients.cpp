// E3: the apps-vs-clients asymmetry (paper §6.1: "the system is able to
// support more simultaneous applications than simultaneous clients,
// [which] illustrates the design trade off between high performance and
// wide spread deployment when using commodity technologies").  Same
// server, two faces: N producers over the custom framed protocol vs N
// consumers over HTTP poll-and-pull, at matched per-peer message rates.
// Expected shape: per-message server cost (and latency) is markedly lower
// on the application path than on the HTTP servlet path.
#include "bench_common.h"

#include <chrono>
#include <thread>

#include "app/synthetic.h"
#include "workload/drivers.h"
#include "workload/thread_scenario.h"
#include "workload/sync_ops.h"

namespace {

using namespace discover;

bench::Summary& summary() {
  static bench::Summary s(
      "E3: same server, app-facing vs client-facing load at matched "
      "peer counts (~20 msg/s per peer)",
      {"peers", "kind", "msgs_per_s_served", "p95_latency",
       "per_msg_cost"});
  return s;
}

/// N applications, each ~20 updates/s; returns (served rate, p95 n/a).
double run_apps(int n, util::LatencyHistogram* /*unused*/) {
  workload::ThreadScenario scenario;
  auto& server = scenario.add_server("s");
  for (int i = 0; i < n; ++i) {
    app::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.acl = workload::make_acl({{"alice", security::Privilege::steer}});
    cfg.step_time = util::milliseconds(10);
    cfg.update_every = 5;  // 20 updates/s
    cfg.interact_every = 0;
    scenario.add_app<app::SyntheticApp>(server, cfg,
                                        app::SyntheticSpec{4, 8, 50});
  }
  scenario.start();
  workload::wait_for(
      scenario.net(),
      [&] {
        return server.live_apps_registered() == static_cast<std::uint64_t>(n);
      },
      util::seconds(20));
  const std::uint64_t before = server.live_updates_processed();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const std::uint64_t after = server.live_updates_processed();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  scenario.stop();
  return static_cast<double>(after - before) / elapsed;
}

/// N clients, each ~20 HTTP requests/s (poll every 50 ms); returns served
/// request rate and fills the RTT histogram.
double run_clients(int n, util::LatencyHistogram* rtt) {
  core::ServerConfig server_cfg;
  // Same 2001-servlet calibration as E2 (the asymmetry the paper explains
  // by the HTTP/servlet path being costlier than the custom TCP protocol).
  server_cfg.servlet_cpu_cost = util::microseconds(1500);
  workload::ThreadScenario scenario(server_cfg);
  auto& server = scenario.add_server("s");
  std::vector<security::AclEntry> acl;
  for (int i = 0; i < n; ++i) {
    acl.push_back({"u" + std::to_string(i),
                   security::Privilege::read_only, 0});
  }
  app::AppConfig cfg;
  cfg.name = "target";
  cfg.acl = acl;
  cfg.step_time = util::milliseconds(10);
  cfg.update_every = 5;
  cfg.interact_every = 0;
  auto& target = scenario.add_app<app::SyntheticApp>(
      server, cfg, app::SyntheticSpec{4, 8, 50});
  std::vector<core::DiscoverClient*> clients;
  for (int i = 0; i < n; ++i) {
    core::ClientConfig ccfg;
    ccfg.poll_period = util::milliseconds(50);  // 20 polls/s
    clients.push_back(
        &scenario.add_client("u" + std::to_string(i), server, ccfg));
  }
  scenario.start();
  workload::wait_for(scenario.net(), [&] { return target.registered(); },
                     util::seconds(10));
  const proto::AppId app_id = target.app_id();
  for (auto* c : clients) {
    (void)workload::sync_login(scenario.net(), *c, util::seconds(20));
    (void)workload::sync_select(scenario.net(), *c, app_id,
                                util::seconds(20));
  }
  const std::uint64_t before = server.live_requests_served();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto* c : clients) {
    scenario.net().post(c->node(), [c, app_id] { c->start_polling(app_id); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  const std::uint64_t after = server.live_requests_served();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  scenario.net().wait_idle(util::seconds(5));
  scenario.stop();
  for (auto* c : clients) rtt->merge(c->http().round_trip_latency());
  return static_cast<double>(after - before) / elapsed;
}

void BM_E3_Apps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double rate = 0;
  for (auto _ : state) {
    rate = run_apps(n, nullptr);
  }
  state.counters["msgs_per_s"] = rate;
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n)),
                 "applications (framed)", workload::fmt_double(rate, 0),
                 "-", rate > 0 ? util::format_duration(static_cast<
                                     util::Duration>(1e9 / rate))
                               : "-"});
}
BENCHMARK(BM_E3_Apps)->Arg(10)->Arg(40)->Arg(80)->Iterations(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_E3_Clients(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double rate = 0;
  util::LatencyHistogram rtt;
  for (auto _ : state) {
    rate = run_clients(n, &rtt);
  }
  state.counters["msgs_per_s"] = rate;
  state.counters["rtt_p95_ms"] = util::to_ms(rtt.percentile(0.95));
  summary().row({workload::fmt_int(static_cast<std::uint64_t>(n)),
                 "clients (HTTP poll)", workload::fmt_double(rate, 0),
                 util::format_duration(rtt.percentile(0.95)),
                 rate > 0 ? util::format_duration(
                                static_cast<util::Duration>(1e9 / rate))
                          : "-"});
}
BENCHMARK(BM_E3_Clients)->Arg(10)->Arg(40)->Arg(80)->Iterations(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

DISCOVER_BENCH_MAIN(summary().print())
