// Scenario-suite sweep runner (EXPERIMENTS.md "E9: scenario suite").
//
// Runs the four canned ScenarioSpecs — flash crowd, churn storm, slow-poll
// swarm, partition mix — at a given population over the SimNetwork, prints
// a per-scenario table and writes the metrics as BENCH_scenarios.json.
// Plain main (no google-benchmark): each scenario is one deterministic
// discrete-event run, not a statistical sample; identical (clients, seed)
// inputs produce a byte-identical JSON file.
//
//   scenario_runner [--clients=N] [--seed=S] [--out=PATH] [--only=NAME]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "workload/scenario_spec.h"

namespace {

using namespace discover;

double ms(std::int64_t nanos) {
  return static_cast<double>(nanos) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t clients = 10000;
  std::uint64_t seed = 1;
  std::string out = "BENCH_scenarios.json";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--only=", 0) == 0) {
      only = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients=N] [--seed=S] [--out=PATH] "
                   "[--only=NAME]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<workload::ScenarioMetrics> all;
  std::printf("%-16s %8s %10s %9s %9s %9s %10s %9s %8s %8s\n", "scenario",
              "clients", "polls", "p50_ms", "p95_ms", "p99_ms", "delivered",
              "shed", "resync", "adm_rej");
  for (const auto& spec : workload::scenario_suite(clients, seed)) {
    if (!only.empty() && spec.name != only) continue;
    const auto wall0 = std::chrono::steady_clock::now();
    workload::ScenarioEngine engine(spec);
    const workload::ScenarioMetrics m = engine.run();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    std::printf(
        "%-16s %8llu %10llu %9.3f %9.3f %9.3f %10llu %9llu %8llu %8llu"
        "   (%.1fs wall)\n",
        m.name.c_str(), static_cast<unsigned long long>(m.clients),
        static_cast<unsigned long long>(m.polls), ms(m.poll_p50_ns),
        ms(m.poll_p95_ns), ms(m.poll_p99_ns),
        static_cast<unsigned long long>(m.events_delivered),
        static_cast<unsigned long long>(m.events_shed),
        static_cast<unsigned long long>(m.resync_markers),
        static_cast<unsigned long long>(m.admission_rejected_logins +
                                        m.admission_rejected_selects),
        wall_s);
    std::fflush(stdout);
    all.push_back(m);
  }
  if (all.empty()) {
    std::fprintf(stderr, "no scenario matched --only=%s\n", only.c_str());
    return 2;
  }

  std::ofstream f(out, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  f << workload::scenario_metrics_json(all);
  std::printf("wrote %s (%zu scenarios, seed %llu)\n", out.c_str(),
              all.size(), static_cast<unsigned long long>(seed));
  return 0;
}
