// Grid substrate (paper §7's CORBA CoG direction): GIS resource/identity
// directories, GRAM job lifecycle (queue -> stage -> run -> finish/cancel),
// the CoG allocator, and the full launch-then-steer integration.
#include <gtest/gtest.h>

#include "core/service_host.h"
#include "grid/cog.h"
#include "grid/resource.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class GridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<workload::Scenario>();
    server_ = &scenario_->add_server("steering", 1);

    // GIS hosted on its own service node.
    gis_host_ = std::make_unique<core::ServiceHost>(scenario_->net());
    const net::NodeId gis_node = scenario_->net().add_node(
        "gis", gis_host_.get(), net::DomainId{0});
    gis_host_->attach(gis_node);
    gis_host_->set_registry(scenario_->registry().trader_ref());
    gis_ = std::make_shared<grid::GridInformationService>();
    gis_ref_ = gis_host_->publish(grid::kGisServiceType, gis_, {});

    cog_ = grid::CorbaCoG(gis_host_->orb(), gis_ref_);
  }

  grid::GridResource& add_resource(const std::string& name,
                                   std::uint32_t cpus,
                                   const std::string& site) {
    grid::ResourceConfig cfg;
    cfg.name = name;
    cfg.cpus = cpus;
    cfg.attributes = {{"site", site}, {"arch", "x86"}};
    cfg.reap_period = util::milliseconds(10);
    auto resource =
        std::make_unique<grid::GridResource>(scenario_->net(), cfg);
    const net::NodeId node = scenario_->net().add_node(
        "resource:" + name, resource.get(), net::DomainId{2});
    resource->attach(node);
    resource->set_gis(gis_ref_);
    resource->start();
    resources_.push_back(std::move(resource));
    return *resources_.back();
  }

  grid::JobDescription job(const std::string& kind, const std::string& name,
                           std::uint64_t max_steps = 0) {
    grid::JobDescription d;
    d.kind = kind;
    d.name = name;
    d.acl = make_acl({{"alice", Privilege::steer}});
    d.discover_server = server_->node().value();
    d.step_time = util::milliseconds(1);
    d.update_every = 5;
    d.interact_every = 10;
    d.max_steps = max_steps;
    d.stage_bytes = 1 << 20;
    return d;
  }

  std::unique_ptr<workload::Scenario> scenario_;
  core::DiscoverServer* server_ = nullptr;
  std::unique_ptr<core::ServiceHost> gis_host_;
  std::shared_ptr<grid::GridInformationService> gis_;
  orb::ObjectRef gis_ref_;
  grid::CorbaCoG cog_;
  std::vector<std::unique_ptr<grid::GridResource>> resources_;
};

TEST_F(GridTest, ResourcesRegisterWithGis) {
  add_resource("r1", 4, "texas");
  add_resource("r2", 8, "rutgers");
  ASSERT_TRUE(scenario_->run_until([&] { return gis_->resource_count() == 2; }));

  std::vector<grid::ResourceInfo> found;
  bool done = false;
  cog_.discover_resources("site == texas",
                          [&](util::Result<std::vector<grid::ResourceInfo>> r) {
                            ASSERT_TRUE(r.ok());
                            found = r.value();
                            done = true;
                          });
  ASSERT_TRUE(scenario_->run_until([&] { return done; }));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "r1");
  EXPECT_EQ(found[0].total_cpus, 4u);
}

TEST_F(GridTest, JobRunsToCompletionAndRegistersWithDiscover) {
  auto& resource = add_resource("r1", 2, "texas");
  ASSERT_TRUE(scenario_->run_until([&] { return gis_->resource_count() == 1; }));

  grid::JobId id = 0;
  cog_.submit(resource.gram_ref(), job("heat2d", "gridheat", 50),
              [&](util::Result<grid::JobId> r) {
                ASSERT_TRUE(r.ok());
                id = r.value();
              });
  ASSERT_TRUE(scenario_->run_until([&] { return id != 0; }));

  // Stage -> run: the job becomes a registered DISCOVER application.
  ASSERT_TRUE(scenario_->run_until(
      [&] { return server_->local_app_count() == 1; }, util::seconds(10)));
  // Then completes (max_steps = 50) and is reaped.
  ASSERT_TRUE(scenario_->run_until(
      [&] { return resource.jobs_completed() == 1; }, util::seconds(30)));
  const grid::JobStatus status = resource.status_of(id);
  EXPECT_EQ(status.state, grid::JobState::finished);
  EXPECT_EQ(status.steps, 50u);
  EXPECT_FALSE(status.discover_app_id.empty());
  // The finished app deregistered from the steering server too.
  ASSERT_TRUE(scenario_->run_until(
      [&] { return server_->local_app_count() == 0; }));
}

TEST_F(GridTest, CpuSlotsBoundConcurrencyFifo) {
  auto& resource = add_resource("r1", 1, "texas");  // single slot
  std::vector<grid::JobId> ids;
  for (int i = 0; i < 3; ++i) {
    cog_.submit(resource.gram_ref(),
                job("synthetic", "q" + std::to_string(i), 30),
                [&](util::Result<grid::JobId> r) {
                  ASSERT_TRUE(r.ok());
                  ids.push_back(r.value());
                });
  }
  ASSERT_TRUE(scenario_->run_until([&] { return ids.size() == 3; }));
  EXPECT_LE(resource.running_jobs(), 1u);
  EXPECT_GE(resource.queued_jobs(), 1u);
  // Eventually all three finish, one after another.
  ASSERT_TRUE(scenario_->run_until(
      [&] { return resource.jobs_completed() == 3; }, util::seconds(60)));
}

TEST_F(GridTest, CancelKillsRunningJob) {
  auto& resource = add_resource("r1", 2, "texas");
  grid::JobId id = 0;
  cog_.submit(resource.gram_ref(), job("reservoir", "killme", 0),
              [&](util::Result<grid::JobId> r) { id = r.value(); });
  ASSERT_TRUE(scenario_->run_until([&] { return id != 0; }));
  ASSERT_TRUE(scenario_->run_until(
      [&] { return resource.status_of(id).state == grid::JobState::running; },
      util::seconds(10)));
  ASSERT_TRUE(scenario_->run_until(
      [&] { return server_->local_app_count() == 1; }));

  bool cancelled = false;
  cog_.cancel(resource.gram_ref(), id,
              [&](util::Status s) { cancelled = s.ok(); });
  ASSERT_TRUE(scenario_->run_until([&] { return cancelled; }));
  EXPECT_EQ(resource.status_of(id).state, grid::JobState::cancelled);
  // The aborted app deregisters from the steering server.
  ASSERT_TRUE(scenario_->run_until(
      [&] { return server_->local_app_count() == 0; }));
  // Double-cancel is a clean failure.
  util::Errc code = util::Errc::ok;
  cog_.cancel(resource.gram_ref(), id, [&](util::Status s) {
    code = s.error().code;
  });
  ASSERT_TRUE(scenario_->run_until(
      [&] { return code == util::Errc::failed_precondition; }));
}

TEST_F(GridTest, AllocatorPicksLeastLoadedResource) {
  add_resource("small", 1, "texas");
  auto& big = add_resource("big", 8, "texas");
  ASSERT_TRUE(scenario_->run_until([&] { return gis_->resource_count() == 2; }));

  grid::JobStatus status;
  bool done = false;
  cog_.allocate_and_submit("site == texas", job("synthetic", "placed", 100),
                           [&](util::Result<grid::JobStatus> r) {
                             ASSERT_TRUE(r.ok()) << r.error().message;
                             status = r.value();
                             done = true;
                           });
  ASSERT_TRUE(scenario_->run_until([&] { return done; }));
  // The 8-cpu resource had the most free slots.
  EXPECT_EQ(big.status_of(status.id).name, "placed");
}

TEST_F(GridTest, AllocatorFailsWhenNothingMatches) {
  add_resource("r1", 2, "texas");
  ASSERT_TRUE(scenario_->run_until([&] { return gis_->resource_count() == 1; }));
  util::Errc code = util::Errc::ok;
  cog_.allocate_and_submit("site == mars", job("synthetic", "nowhere"),
                           [&](util::Result<grid::JobStatus> r) {
                             ASSERT_FALSE(r.ok());
                             code = r.error().code;
                           });
  ASSERT_TRUE(scenario_->run_until(
      [&] { return code == util::Errc::unavailable; }));
}

TEST_F(GridTest, UnknownKindFailsCleanly) {
  auto& resource = add_resource("r1", 2, "texas");
  grid::JobId id = 0;
  cog_.submit(resource.gram_ref(), job("fortran-monolith", "bad"),
              [&](util::Result<grid::JobId> r) { id = r.value(); });
  ASSERT_TRUE(scenario_->run_until([&] { return id != 0; }));
  ASSERT_TRUE(scenario_->run_until(
      [&] { return resource.status_of(id).state == grid::JobState::failed; },
      util::seconds(10)));
}

TEST_F(GridTest, LaunchThenSteerEndToEnd) {
  // The paper's §7 closing scenario: allocate + stage via the CoG kit,
  // then steer the running job through the DISCOVER portal.
  add_resource("r1", 4, "texas");
  ASSERT_TRUE(scenario_->run_until([&] { return gis_->resource_count() == 1; }));

  grid::JobStatus status;
  bool placed = false;
  cog_.allocate_and_submit("", job("heat2d", "steerable-job", 0),
                           [&](util::Result<grid::JobStatus> r) {
                             ASSERT_TRUE(r.ok());
                             status = r.value();
                             placed = true;
                           });
  ASSERT_TRUE(scenario_->run_until([&] { return placed; }));
  ASSERT_TRUE(scenario_->run_until(
      [&] { return server_->local_app_count() == 1; }, util::seconds(10)));

  auto& alice = scenario_->add_client("alice", *server_);
  auto login = workload::sync_login(scenario_->net(), alice);
  ASSERT_TRUE(login.value().ok);
  ASSERT_EQ(login.value().applications.size(), 1u);
  const proto::AppId app_id = login.value().applications[0].id;
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_->net(), alice, app_id));
  auto ack = workload::sync_command(scenario_->net(), alice, app_id,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.19});
  EXPECT_TRUE(ack.value().accepted);
  // Stop the job through steering; the grid resource reaps it as finished.
  ASSERT_TRUE(workload::sync_command(scenario_->net(), alice, app_id,
                                     proto::CommandKind::stop_app)
                  .value().accepted);
  ASSERT_TRUE(scenario_->run_until(
      [&] { return resources_[0]->jobs_completed() == 1; },
      util::seconds(30)));
}

TEST_F(GridTest, GisIdentityDirectoryEnablesForeignLogin) {
  // §6.3: "a centralized directory service like the GIS that maintains
  // user-IDs" — wanda has no local application ACL anywhere on this
  // server, but the directory vouches for her.
  gis_->add_identity("wanda", security::digest64("pw"));
  server_->set_identity_directory(gis_ref_);
  scenario_->run_for(util::seconds(2));  // at least one refresh cycle

  core::ClientConfig ccfg;
  ccfg.password = "pw";
  auto& wanda = scenario_->add_client("wanda", *server_, ccfg);
  auto login = workload::sync_login(scenario_->net(), wanda);
  ASSERT_TRUE(login.ok());
  EXPECT_TRUE(login.value().ok) << login.value().message;

  core::ClientConfig bad;
  bad.password = "wrong";
  auto& fake = scenario_->add_client("wanda", *server_, bad);
  auto bad_login = workload::sync_login(scenario_->net(), fake);
  EXPECT_FALSE(bad_login.value().ok);
}

}  // namespace
}  // namespace discover
