// End-to-end smoke on the real-time ThreadNetwork backend: the same
// middleware code that runs in simulation must behave with one OS thread
// per node and wall-clock timers.
#include <gtest/gtest.h>

#include "app/heat2d.h"
#include "workload/sync_ops.h"
#include "workload/thread_scenario.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

TEST(ThreadIntegrationTest, FullSteeringFlow) {
  workload::ThreadScenario scenario;
  auto& server = scenario.add_server("rt-server");

  app::AppConfig cfg;
  cfg.name = "rt-heat";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 10;
  cfg.interaction_window = util::milliseconds(1);
  auto& heat = scenario.add_app<app::Heat2DApp>(server, cfg, 16);

  core::ClientConfig ccfg;
  ccfg.poll_period = util::milliseconds(10);
  auto& alice = scenario.add_client("alice", server, ccfg);

  scenario.start();
  ASSERT_TRUE(workload::wait_for(scenario.net(),
                                 [&] { return heat.registered(); },
                                 util::seconds(10)));

  auto login = workload::sync_login(scenario.net(), alice);
  ASSERT_TRUE(login.ok()) << login.error().message;
  ASSERT_TRUE(login.value().ok);
  ASSERT_EQ(login.value().applications.size(), 1u);
  const proto::AppId app_id = login.value().applications[0].id;

  ASSERT_TRUE(workload::sync_select(scenario.net(), alice, app_id)
                  .value().ok);
  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario.net(), alice, app_id));

  auto ack = workload::sync_command(scenario.net(), alice, app_id,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.21});
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().accepted);
  ASSERT_TRUE(workload::wait_for(
      scenario.net(), [&] { return std::abs(heat.alpha() - 0.21) < 1e-12; },
      util::seconds(10)));

  // Updates flow under real time as well.
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        (void)workload::sync_poll(scenario.net(), alice, app_id,
                                  util::seconds(5));
        return alice.events_of_kind(proto::EventKind::update) > 0;
      },
      util::seconds(10)));

  scenario.stop();
}

TEST(ThreadIntegrationTest, ManyAppsRegisterConcurrently) {
  workload::ThreadScenario scenario;
  auto& server = scenario.add_server("rt-many");
  std::vector<app::Heat2DApp*> apps;
  for (int i = 0; i < 12; ++i) {
    app::AppConfig cfg;
    cfg.name = "app" + std::to_string(i);
    cfg.acl = make_acl({{"alice", Privilege::steer}});
    cfg.step_time = util::milliseconds(2);
    cfg.update_every = 10;
    cfg.interact_every = 0;
    apps.push_back(&scenario.add_app<app::Heat2DApp>(server, cfg, 8));
  }
  scenario.start();
  ASSERT_TRUE(workload::wait_for(
      scenario.net(),
      [&] {
        for (const auto* a : apps) {
          if (!a->registered()) return false;
        }
        return true;
      },
      util::seconds(15)));
  EXPECT_EQ(server.local_app_count(), 12u);
  // Ids are unique and host-scoped.
  std::set<std::string> ids;
  for (const auto* a : apps) ids.insert(a->app_id().to_string());
  EXPECT_EQ(ids.size(), 12u);
  scenario.stop();
}

}  // namespace
}  // namespace discover
