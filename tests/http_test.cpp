#include <gtest/gtest.h>

#include "http/http_client.h"
#include "http/http_message.h"
#include "http/servlet_container.h"
#include "net/sim_network.h"

namespace discover::http {
namespace {

TEST(HttpCodecTest, RequestRoundTrip) {
  HttpRequest req;
  req.method = Method::post;
  req.path = "/discover/command?x=1&y=2";
  req.headers.set("X-Request-Id", "42");
  req.body = util::to_bytes("payload");
  const util::Bytes wire = serialize(req);
  auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().method, Method::post);
  EXPECT_EQ(parsed.value().path, "/discover/command?x=1&y=2");
  EXPECT_EQ(parsed.value().path_without_query(), "/discover/command");
  EXPECT_EQ(parsed.value().query_param("x"), "1");
  EXPECT_EQ(parsed.value().query_param("y"), "2");
  EXPECT_EQ(parsed.value().query_param("z"), std::nullopt);
  EXPECT_EQ(parsed.value().headers.get("x-request-id"), "42");  // case-insens
  EXPECT_EQ(util::to_string(parsed.value().body), "payload");
}

TEST(HttpCodecTest, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.headers.set("Set-Cookie", "DISCOVERID=7");
  resp.body = util::to_bytes("missing");
  auto parsed = parse_response(serialize(resp));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 404);
  EXPECT_EQ(parsed.value().reason, "Not Found");
  EXPECT_EQ(parsed.value().headers.get("set-cookie"), "DISCOVERID=7");
}

TEST(HttpCodecTest, WireFormatIsRealHttp) {
  HttpRequest req;
  req.method = Method::get;
  req.path = "/index";
  const std::string text = util::to_string(serialize(req));
  EXPECT_EQ(text.rfind("GET /index HTTP/1.0\r\n", 0), 0u);
  EXPECT_NE(text.find("Content-Length: 0\r\n\r\n"), std::string::npos);
}

TEST(HttpCodecTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_request(util::to_bytes("garbage")).ok());
  EXPECT_FALSE(parse_request(util::to_bytes("FETCH / HTTP/1.0\r\n\r\n")).ok());
  EXPECT_FALSE(parse_response(util::to_bytes("HTP/1.0 200 OK\r\n\r\n")).ok());
  // Content-Length mismatch.
  EXPECT_FALSE(
      parse_request(
          util::to_bytes("GET / HTTP/1.0\r\nContent-Length: 5\r\n\r\nab"))
          .ok());
}

TEST(HttpCodecTest, RejectsBadContentLengthValues) {
  // Trailing garbage must not be silently truncated to a valid prefix.
  EXPECT_FALSE(
      parse_request(
          util::to_bytes("GET / HTTP/1.0\r\nContent-Length: 2junk\r\n\r\nab"))
          .ok());
  // Non-numeric and empty values.
  EXPECT_FALSE(
      parse_request(
          util::to_bytes("GET / HTTP/1.0\r\nContent-Length: abc\r\n\r\n"))
          .ok());
  EXPECT_FALSE(parse_request(util::to_bytes(
                                 "GET / HTTP/1.0\r\nContent-Length: \r\n\r\n"))
                   .ok());
  // Sign characters are not part of the grammar.
  EXPECT_FALSE(
      parse_request(
          util::to_bytes("GET / HTTP/1.0\r\nContent-Length: +2\r\n\r\nab"))
          .ok());
  // Overflow beyond uint64 must be rejected, not wrapped.
  EXPECT_FALSE(parse_request(util::to_bytes("GET / HTTP/1.0\r\n"
                                            "Content-Length: "
                                            "99999999999999999999999999\r\n"
                                            "\r\n"))
                   .ok());
  // Surrounding whitespace is tolerated (RFC 7230 OWS).
  EXPECT_TRUE(
      parse_request(
          util::to_bytes("GET / HTTP/1.0\r\nContent-Length: 2 \r\n\r\nab"))
          .ok());
}

TEST(HttpCodecTest, RejectsConflictingDuplicateContentLength) {
  // Disagreeing duplicates are a smuggling vector: reject.
  EXPECT_FALSE(parse_request(util::to_bytes("GET / HTTP/1.0\r\n"
                                            "Content-Length: 2\r\n"
                                            "Content-Length: 3\r\n"
                                            "\r\nab"))
                   .ok());
  // Identical duplicates are tolerated (serialize() appends its own copy
  // after any caller-set header).
  EXPECT_TRUE(parse_request(util::to_bytes("POST /x HTTP/1.0\r\n"
                                           "Content-Length: 2\r\n"
                                           "content-length: 2\r\n"
                                           "\r\nab"))
                  .ok());
}

TEST(HeaderMapTest, SetOverwritesCaseInsensitively) {
  HeaderMap h;
  h.set("Content-Type", "a");
  h.set("content-type", "b");
  EXPECT_EQ(h.all().size(), 1u);
  EXPECT_EQ(h.get("CONTENT-TYPE"), "b");
}

// ---------------------------------------------------------------------------
// Container + client over a SimNetwork
// ---------------------------------------------------------------------------

class EchoServlet : public Servlet {
 public:
  void service(const HttpRequest& request, HttpResponse& response,
               ServletContext& ctx) override {
    response.body = request.body;
    response.headers.set("X-Session", std::to_string(ctx.session->id()));
    ++hits;
  }
  int hits = 0;
};

class ServerNode : public net::MessageHandler {
 public:
  explicit ServerNode(net::Network& net) : network_(net) {}
  void init(net::NodeId self) {
    container = std::make_unique<ServletContainer>(network_, self);
  }
  void on_message(const net::Message& msg) override {
    container->handle(msg);
  }
  net::Network& network_;
  std::unique_ptr<ServletContainer> container;
};

class ClientNode : public net::MessageHandler {
 public:
  explicit ClientNode(net::Network& net) : network_(net) {}
  void init(net::NodeId self) {
    client = std::make_unique<HttpClient>(network_, self);
  }
  void on_message(const net::Message& msg) override { client->handle(msg); }
  net::Network& network_;
  std::unique_ptr<HttpClient> client;
};

class HttpStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_node_ = std::make_unique<ServerNode>(net_);
    client_node_ = std::make_unique<ClientNode>(net_);
    server_id_ = net_.add_node("server", server_node_.get());
    client_id_ = net_.add_node("client", client_node_.get());
    server_node_->init(server_id_);
    client_node_->init(client_id_);
    echo_ = std::make_shared<EchoServlet>();
    server_node_->container->mount("/echo", echo_);
  }

  net::SimNetwork net_;
  std::unique_ptr<ServerNode> server_node_;
  std::unique_ptr<ClientNode> client_node_;
  net::NodeId server_id_{0};
  net::NodeId client_id_{0};
  std::shared_ptr<EchoServlet> echo_;
};

TEST_F(HttpStackTest, RequestResponseRoundTrip) {
  HttpRequest req;
  req.method = Method::post;
  req.path = "/echo/test";
  req.body = util::to_bytes("ping");
  std::string got;
  client_node_->client->request(server_id_, std::move(req),
                                [&](util::Result<HttpResponse> r) {
                                  ASSERT_TRUE(r.ok());
                                  got = util::to_string(r.value().body);
                                });
  net_.run_until_idle();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(echo_->hits, 1);
}

TEST_F(HttpStackTest, UnknownPathIs404) {
  HttpRequest req;
  req.path = "/nope";
  int status = 0;
  client_node_->client->request(server_id_, std::move(req),
                                [&](util::Result<HttpResponse> r) {
                                  ASSERT_TRUE(r.ok());
                                  status = r.value().status;
                                });
  net_.run_until_idle();
  EXPECT_EQ(status, 404);
}

TEST_F(HttpStackTest, SessionCookiePersistsAcrossRequests) {
  std::vector<std::string> sessions;
  for (int i = 0; i < 3; ++i) {
    HttpRequest req;
    req.path = "/echo";
    client_node_->client->request(server_id_, std::move(req),
                                  [&](util::Result<HttpResponse> r) {
                                    ASSERT_TRUE(r.ok());
                                    sessions.push_back(
                                        *r.value().headers.get("X-Session"));
                                  });
    net_.run_until_idle();
  }
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0], sessions[1]);
  EXPECT_EQ(sessions[1], sessions[2]);
  EXPECT_EQ(server_node_->container->session_count(), 1u);
}

TEST_F(HttpStackTest, ConcurrentRequestsCorrelateById) {
  // Fire 10 requests before any response arrives; each callback must see
  // its own body.
  int correct = 0;
  for (int i = 0; i < 10; ++i) {
    HttpRequest req;
    req.method = Method::post;
    req.path = "/echo";
    req.body = util::to_bytes("msg" + std::to_string(i));
    client_node_->client->request(
        server_id_, std::move(req), [&, i](util::Result<HttpResponse> r) {
          ASSERT_TRUE(r.ok());
          if (util::to_string(r.value().body) == "msg" + std::to_string(i)) {
            ++correct;
          }
        });
  }
  net_.run_until_idle();
  EXPECT_EQ(correct, 10);
}

TEST_F(HttpStackTest, TimeoutFiresWhenServerSilent) {
  // Target a node that never answers (the client itself).
  HttpRequest req;
  req.path = "/echo";
  bool timed_out = false;
  client_node_->client->request(
      client_id_, std::move(req),
      [&](util::Result<HttpResponse> r) {
        timed_out = !r.ok() && r.error().code == util::Errc::timeout;
      },
      util::milliseconds(50));
  net_.run_until_idle();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(client_node_->client->timeouts(), 1u);
}

class DeferringServlet : public Servlet {
 public:
  explicit DeferringServlet(net::Network& net) : net_(net) {}
  void service(const HttpRequest&, HttpResponse&,
               ServletContext& ctx) override {
    auto reply = ctx.defer();
    // Answer 5 ms later from a timer.
    net_.schedule(net::NodeId{0}, util::milliseconds(5), [reply] {
      HttpResponse resp;
      resp.body = util::to_bytes("deferred");
      reply->complete(std::move(resp));
    });
  }
  net::Network& net_;
};

TEST_F(HttpStackTest, DeferredReplyReachesClientWithCorrelation) {
  server_node_->container->mount(
      "/slow", std::make_shared<DeferringServlet>(net_));
  HttpRequest req;
  req.path = "/slow";
  std::string got;
  client_node_->client->request(server_id_, std::move(req),
                                [&](util::Result<HttpResponse> r) {
                                  ASSERT_TRUE(r.ok());
                                  got = util::to_string(r.value().body);
                                });
  net_.run_until_idle();
  EXPECT_EQ(got, "deferred");
}

TEST_F(HttpStackTest, SessionExpiry) {
  HttpRequest req;
  req.path = "/echo";
  client_node_->client->request(server_id_, std::move(req),
                                [](util::Result<HttpResponse>) {});
  net_.run_until_idle();
  EXPECT_EQ(server_node_->container->session_count(), 1u);
  net_.run_for(util::seconds(10));
  server_node_->container->expire_sessions(util::seconds(5));
  EXPECT_EQ(server_node_->container->session_count(), 0u);
}

}  // namespace
}  // namespace discover::http
