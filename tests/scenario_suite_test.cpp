// Flash-crowd & churn scenario suite (EXPERIMENTS.md "E9: scenario
// suite").  Each canned ScenarioSpec runs start-to-finish on a fresh
// SimNetwork at smoke scale and must
//  * replay byte-identical metrics for the same (spec, seed) pair,
//  * exercise the mechanism it was built around (admission rejections in
//    the flash crowd, reconnects in the churn storm, bounded shedding in
//    the slow-poll swarm, cross-site traffic around a partition),
//  * keep the slow-poll swarm's peak FIFO backlog under the configured
//    per-subscriber bound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workload/scenario_spec.h"

namespace discover {
namespace {

constexpr std::uint32_t kClients = 48;  // smoke scale; bench runs 10k

workload::ScenarioMetrics run_spec(const workload::ScenarioSpec& spec) {
  workload::ScenarioEngine engine(spec);
  return engine.run();
}

// ---------------------------------------------------------------------------
// Determinism: every suite member, run twice, metric-for-metric equal
// ---------------------------------------------------------------------------

TEST(ScenarioSuite, EveryScenarioReplaysByteIdenticalMetricsPerSeed) {
  for (const auto& spec : workload::scenario_suite(kClients, 7)) {
    const workload::ScenarioMetrics a = run_spec(spec);
    const workload::ScenarioMetrics b = run_spec(spec);
    EXPECT_EQ(a, b) << spec.name << " diverged between identical runs";
    EXPECT_GT(a.polls, 0u) << spec.name;
    EXPECT_GT(a.events_delivered, 0u) << spec.name;
    EXPECT_GT(a.poll_p99_ns, 0) << spec.name;
    EXPECT_GE(a.poll_p99_ns, a.poll_p50_ns) << spec.name;
  }
}

TEST(ScenarioSuite, DifferentSeedsSteerDifferentRuns) {
  // The seed feeds the slow/collab mix assignment; with a 50% slow
  // fraction two seeds virtually always shape distinct populations.
  const workload::ScenarioMetrics a =
      run_spec(workload::slow_poll_swarm_spec(kClients, 7));
  const workload::ScenarioMetrics b =
      run_spec(workload::slow_poll_swarm_spec(kClients, 8));
  EXPECT_NE(a.polls, b.polls);
}

// ---------------------------------------------------------------------------
// Flash crowd: admission control under a login burst
// ---------------------------------------------------------------------------

TEST(ScenarioSuite, FlashCrowdBouncesOffAdmissionControlThenRecovers) {
  const workload::ScenarioMetrics m =
      run_spec(workload::flash_crowd_spec(kClients, 7));
  // A quarter of the crowd exceeds max_sessions: rejections observed on
  // both sides of the wire, and clients honoured the typed retry-after.
  EXPECT_GT(m.admission_rejected_logins, 0u);
  EXPECT_EQ(m.admission_rejected_seen, m.admission_rejected_logins);
  EXPECT_GT(m.admission_retries, 0u);
  // The release phase freed capacity, so held-out clients made it in and
  // polled: more successful poll round-trips than admitted-at-burst
  // clients alone could produce in the run.
  EXPECT_GT(m.polls, static_cast<std::uint64_t>(kClients));
}

// ---------------------------------------------------------------------------
// Churn storm: mass disconnect/reconnect
// ---------------------------------------------------------------------------

TEST(ScenarioSuite, ChurnStormKeepsDeliveringThroughReconnects) {
  const workload::ScenarioMetrics m =
      run_spec(workload::churn_storm_spec(kClients, 7));
  // Every churn slot logged a client out and back in; logins exceed the
  // population, no admission involved.
  EXPECT_GT(m.admission_retries + m.polls, 0u);
  EXPECT_EQ(m.admission_rejected_logins, 0u);
  EXPECT_GT(m.events_delivered, 0u);
  EXPECT_EQ(m.overflow_disconnects, 0u);
}

// ---------------------------------------------------------------------------
// Slow-poll swarm: bounded backlog under sustained fan-out
// ---------------------------------------------------------------------------

TEST(ScenarioSuite, SlowPollSwarmHoldsPeakBacklogUnderConfiguredBound) {
  const workload::ScenarioSpec spec =
      workload::slow_poll_swarm_spec(kClients, 7);
  const workload::ScenarioMetrics m = run_spec(spec);
  // Shedding engaged and was surfaced to clients as resync markers.
  EXPECT_GT(m.events_shed, 0u);
  EXPECT_GT(m.resync_markers, 0u);
  EXPECT_GT(m.resync_seen, 0u);
  // The core bound: each subscriber FIFO may transiently hold cap+1
  // entries before the shed runs, so the server-wide peak is bounded by
  // (cap + 1) * population.
  EXPECT_LE(m.peak_fifo_backlog,
            static_cast<std::uint64_t>(spec.fifo_cap + 1) * kClients);
  // Nobody was disconnected: shed_oldest is the configured policy.
  EXPECT_EQ(m.overflow_disconnects, 0u);
  EXPECT_EQ(m.sessions_lost, 0u);
}

// ---------------------------------------------------------------------------
// Partition mix: steer + collab across a cut and heal
// ---------------------------------------------------------------------------

TEST(ScenarioSuite, PartitionMixSurvivesCutAndHeal) {
  const workload::ScenarioMetrics m =
      run_spec(workload::partition_mix_spec(kClients, 7));
  // Both sites delivered events; the run spans a partition and its heal
  // without deadlocking the suite (completion is the property).
  EXPECT_GT(m.events_delivered, 0u);
  EXPECT_GT(m.events_received, 0u);
  EXPECT_GT(m.polls, 0u);
}

}  // namespace
}  // namespace discover
