// Harness-level tests: scenario builders, sync wrappers (including their
// failure paths), client drivers and the table reporter.
#include <gtest/gtest.h>

#include <atomic>

#include "app/synthetic.h"
#include "net/thread_network.h"
#include "workload/drivers.h"
#include "workload/report.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover::workload {
namespace {

using security::Privilege;

TEST(MakeAclTest, BuildsEntries) {
  const auto acl = make_acl({{"a", Privilege::steer},
                             {"b", Privilege::read_only}});
  ASSERT_EQ(acl.size(), 2u);
  EXPECT_EQ(acl[0].user, "a");
  EXPECT_EQ(acl[0].privilege, Privilege::steer);
}

TEST(ScenarioTest, DomainsAndLinksAreApplied) {
  ScenarioConfig cfg;
  cfg.wan = {util::milliseconds(10), 1e9};
  Scenario scenario(cfg);
  auto& s1 = scenario.add_server("a", 1);
  auto& s2 = scenario.add_server("b", 2);
  EXPECT_EQ(scenario.net().node_domain(s1.node()), net::DomainId{1});
  EXPECT_EQ(scenario.net().node_domain(s2.node()), net::DomainId{2});
  EXPECT_EQ(scenario.servers().size(), 2u);
}

TEST(ScenarioTest, RunUntilTimesOutOnFalsePredicate) {
  Scenario scenario;
  scenario.add_server("a", 1);
  EXPECT_FALSE(scenario.run_until([] { return false; },
                                  util::milliseconds(100)));
}

TEST(SyncOpsTest, TimeoutWhenServerUnreachable) {
  // Client pointed at a node that never answers HTTP: its own node.
  Scenario scenario;
  auto& server = scenario.add_server("a", 1);
  core::ClientConfig ccfg;
  ccfg.request_timeout = util::milliseconds(50);
  auto& client = scenario.add_client("ghost", server, ccfg);
  scenario.net().post(client.node(),
                      [&client] { client.set_server(client.node()); });
  auto r = sync_login(scenario.net(), client, util::seconds(5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Errc::timeout);
}

TEST(SyncOpsTest, OnboardFailsForUnknownUser) {
  Scenario scenario;
  auto& server = scenario.add_server("a", 1);
  app::AppConfig cfg;
  cfg.name = "app";
  cfg.acl = make_acl({{"alice", Privilege::steer}});
  cfg.step_time = util::milliseconds(1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  auto& mallory = scenario.add_client("mallory", server);
  EXPECT_FALSE(sync_onboard_steerer(scenario.net(), mallory, app.app_id(),
                                    util::seconds(5)));
}

TEST(ClientDriverTest, IssuesCommandsAndCountsAcks) {
  Scenario scenario;
  auto& server = scenario.add_server("a", 1);
  app::AppConfig cfg;
  cfg.name = "driven";
  cfg.acl = make_acl({{"bob", Privilege::read_only}});
  cfg.step_time = util::milliseconds(1);
  cfg.update_every = 5;
  cfg.interact_every = 4;
  cfg.interaction_window = util::milliseconds(1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  auto& bob = scenario.add_client("bob", server);
  ASSERT_TRUE(sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(sync_select(scenario.net(), bob, app.app_id()).value().ok);

  DriverConfig dcfg;
  dcfg.command_period = util::milliseconds(20);
  dcfg.kind = proto::CommandKind::get_param;
  dcfg.param = "param_0";
  ClientDriver driver(scenario.net(), bob, app.app_id(), dcfg);
  driver.start();
  scenario.run_for(util::milliseconds(500));
  driver.stop();
  scenario.run_for(util::milliseconds(100));
  EXPECT_GE(driver.commands_sent(), 10u);
  EXPECT_GE(driver.acks_ok(), 10u);
  EXPECT_EQ(driver.acks_failed(), 0u);
  // Polling ran as part of the driver.
  EXPECT_GT(bob.events_received(), 0u);
}

TEST(ClientDriverTest, RejectedWritesCountAsFailures) {
  Scenario scenario;
  auto& server = scenario.add_server("a", 1);
  app::AppConfig cfg;
  cfg.name = "locked";
  cfg.acl = make_acl({{"bob", Privilege::read_write}});
  cfg.step_time = util::milliseconds(1);
  auto& app = scenario.add_app<app::SyntheticApp>(server, cfg,
                                                  app::SyntheticSpec{});
  ASSERT_TRUE(scenario.run_until([&] { return app.registered(); }));
  auto& bob = scenario.add_client("bob", server);
  ASSERT_TRUE(sync_login(scenario.net(), bob).value().ok);
  ASSERT_TRUE(sync_select(scenario.net(), bob, app.app_id()).value().ok);

  DriverConfig dcfg;
  dcfg.command_period = util::milliseconds(20);
  dcfg.kind = proto::CommandKind::set_param;  // no lock held -> rejected
  dcfg.param = "param_0";
  ClientDriver driver(scenario.net(), bob, app.app_id(), dcfg);
  driver.start();
  scenario.run_for(util::milliseconds(300));
  driver.stop();
  EXPECT_GT(driver.acks_failed(), 0u);
  EXPECT_EQ(driver.acks_ok(), 0u);
}

TEST(ReportTest, TableFormatsRows) {
  Table t("demo", {"col_a", "b"});
  t.add_row({"1", "two"});
  t.add_row({"longer-cell"});  // short row padded
  t.print();                   // visual smoke; no crash
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_int(42), "42");
}

TEST(ThreadWaitForTest, PredicatePollingWorks) {
  // wait_for on a non-sim network uses sleep-polling.
  net::ThreadNetwork network;
  class Nop : public net::MessageHandler {
    void on_message(const net::Message&) override {}
  } nop;
  const net::NodeId node = network.add_node("n", &nop);
  network.start();
  std::atomic<bool> flag{false};
  network.schedule(node, util::milliseconds(20), [&] { flag.store(true); });
  EXPECT_TRUE(
      wait_for(network, [&] { return flag.load(); }, util::seconds(5)));
  EXPECT_FALSE(wait_for(network, [] { return false; },
                        util::milliseconds(50)));
  network.stop();
}

}  // namespace
}  // namespace discover::workload
