// End-to-end middleware flows on one server: registration, two-level
// authentication, steering commands, locking, collaboration, archive.
#include <gtest/gtest.h>

#include "app/heat2d.h"
#include "app/synthetic.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using workload::make_acl;

class SingleServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = &scenario_.add_server("rutgers", 1);
    app::AppConfig cfg;
    cfg.name = "heat2d";
    cfg.description = "2-D heat diffusion";
    cfg.acl = make_acl({{"alice", Privilege::steer},
                        {"bob", Privilege::read_only}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 5;
    cfg.interact_every = 10;
    cfg.interaction_window = util::milliseconds(2);
    app_ = &scenario_.add_app<app::Heat2DApp>(*server_, cfg);
    ASSERT_TRUE(scenario_.run_until([&] { return app_->registered(); }));
    app_id_ = app_->app_id();
  }

  workload::Scenario scenario_;
  core::DiscoverServer* server_ = nullptr;
  app::Heat2DApp* app_ = nullptr;
  proto::AppId app_id_;
};

TEST_F(SingleServerTest, ApplicationRegistersAndGetsHostScopedId) {
  EXPECT_EQ(app_id_.host, server_->node().value());
  EXPECT_EQ(app_id_.local, 1u);
  EXPECT_EQ(server_->local_app_count(), 1u);
}

TEST_F(SingleServerTest, LoginListsOnlyAuthorizedApps) {
  auto& alice = scenario_.add_client("alice", *server_);
  auto reply = workload::sync_login(scenario_.net(), alice);
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  ASSERT_TRUE(reply.value().ok);
  ASSERT_EQ(reply.value().applications.size(), 1u);
  EXPECT_EQ(reply.value().applications[0].name, "heat2d");
  EXPECT_EQ(reply.value().applications[0].privilege, Privilege::steer);

  auto& mallory = scenario_.add_client("mallory", *server_);
  auto bad = workload::sync_login(scenario_.net(), mallory);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
}

TEST_F(SingleServerTest, SelectGivesCustomizedInterface) {
  auto& bob = scenario_.add_client("bob", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), bob).value().ok);
  auto sel = workload::sync_select(scenario_.net(), bob, app_id_);
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(sel.value().ok);
  EXPECT_EQ(sel.value().privilege, Privilege::read_only);
  // The heat app exposes alpha, source_temp, max_temp, avg_temp, residual.
  EXPECT_GE(sel.value().interface_spec.size(), 5u);
}

TEST_F(SingleServerTest, SteeringRequiresLock) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), alice, app_id_)
                  .value().ok);
  // Without the lock, set_param is rejected.
  auto rejected = workload::sync_command(
      scenario_.net(), alice, app_id_, proto::CommandKind::set_param, "alpha",
      proto::ParamValue{0.2});
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().accepted);

  ASSERT_TRUE(
      workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  auto accepted = workload::sync_command(
      scenario_.net(), alice, app_id_, proto::CommandKind::set_param, "alpha",
      proto::ParamValue{0.2});
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted.value().accepted);

  // The application eventually applies the change.
  ASSERT_TRUE(scenario_.run_until(
      [&] { return std::abs(app_->alpha() - 0.2) < 1e-12; }));
}

TEST_F(SingleServerTest, ReadOnlyUserCannotSteer) {
  auto& bob = scenario_.add_client("bob", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), bob, app_id_)
                  .value().ok);
  auto ack = workload::sync_command(scenario_.net(), bob, app_id_,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.2});
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack.value().accepted);
  // get_param is allowed for read-only users.
  auto get = workload::sync_command(scenario_.net(), bob, app_id_,
                                    proto::CommandKind::get_param, "alpha");
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(get.value().accepted);
}

TEST_F(SingleServerTest, UpdatesFlowToPollingClients) {
  auto& bob = scenario_.add_client("bob", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), bob, app_id_)
                  .value().ok);
  scenario_.run_for(util::milliseconds(50));  // let updates accumulate
  auto poll = workload::sync_poll(scenario_.net(), bob, app_id_);
  ASSERT_TRUE(poll.ok());
  ASSERT_TRUE(poll.value().ok);
  EXPECT_GT(bob.events_of_kind(proto::EventKind::update), 0u);
}

TEST_F(SingleServerTest, ChatReachesOtherGroupMembersNotSelfOnly) {
  auto& alice = scenario_.add_client("alice", *server_);
  auto& bob = scenario_.add_client("bob", *server_);
  for (auto* c : {&alice, &bob}) {
    ASSERT_TRUE(workload::sync_login(scenario_.net(), *c).value().ok);
    ASSERT_TRUE(workload::sync_select(scenario_.net(), *c, app_id_)
                    .value().ok);
  }
  ASSERT_TRUE(workload::sync_collab_post(scenario_.net(), alice, app_id_,
                                         proto::EventKind::chat, "hello bob")
                  .value().ok);
  scenario_.run_for(util::milliseconds(10));
  auto poll = workload::sync_poll(scenario_.net(), bob, app_id_);
  ASSERT_TRUE(poll.ok());
  bool saw_chat = false;
  for (const auto& ev : bob.received_events()) {
    if (ev.kind == proto::EventKind::chat && ev.text == "hello bob" &&
        ev.user == "alice") {
      saw_chat = true;
    }
  }
  EXPECT_TRUE(saw_chat);
}

TEST_F(SingleServerTest, LockIsExclusiveAndFifo) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  ASSERT_TRUE(server_->lock_holder(app_id_).has_value());
  EXPECT_EQ(server_->lock_holder(app_id_)->user, "alice");

  // A second steer-capable user queues behind alice... bob is read_only, so
  // give the app another steerer through a fresh registration?  Instead,
  // verify bob's acquire is rejected for privilege and alice's release works.
  auto& bob = scenario_.add_client("bob", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), bob, app_id_)
                  .value().ok);
  auto bob_ack = workload::sync_command(scenario_.net(), bob, app_id_,
                                        proto::CommandKind::acquire_lock);
  ASSERT_TRUE(bob_ack.ok());
  EXPECT_FALSE(bob_ack.value().accepted);  // read_only cannot lock

  auto rel = workload::sync_command(scenario_.net(), alice, app_id_,
                                    proto::CommandKind::release_lock);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel.value().accepted);
  ASSERT_TRUE(scenario_.run_until(
      [&] { return !server_->lock_holder(app_id_).has_value(); }));
}

TEST_F(SingleServerTest, ArchiveSupportsLatecomerCatchUp) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  ASSERT_TRUE(workload::sync_command(scenario_.net(), alice, app_id_,
                                     proto::CommandKind::set_param, "alpha",
                                     proto::ParamValue{0.11})
                  .value().accepted);
  scenario_.run_for(util::milliseconds(50));

  // A latecomer fetches history from seq 0 and sees the earlier steering.
  auto& bob = scenario_.add_client("bob", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), bob).value().ok);
  ASSERT_TRUE(workload::sync_select(scenario_.net(), bob, app_id_)
                  .value().ok);
  auto hist = workload::sync_history(scenario_.net(), bob, app_id_, 0, 0);
  ASSERT_TRUE(hist.ok());
  ASSERT_TRUE(hist.value().ok);
  const auto replayed =
      core::SessionArchive::replay_params(hist.value().events);
  ASSERT_TRUE(replayed.count("alpha"));
  EXPECT_DOUBLE_EQ(std::get<double>(replayed.at("alpha")), 0.11);
}

TEST_F(SingleServerTest, CommandsBufferWhileComputing) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_onboard_steerer(scenario_.net(), alice, app_id_));
  // Commands issued while the app computes get buffered, then flushed at
  // the next interaction phase; the response still arrives.
  auto ack = workload::sync_command(scenario_.net(), alice, app_id_,
                                    proto::CommandKind::set_param, "alpha",
                                    proto::ParamValue{0.18});
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack.value().accepted);
  ASSERT_TRUE(scenario_.run_until(
      [&] { return std::abs(app_->alpha() - 0.18) < 1e-12; }));
  EXPECT_GT(server_->stats().commands_buffered + 0, 0u);
}

}  // namespace
}  // namespace discover
