// MetricsRegistry and the /metrics endpoint (DESIGN.md "Observability"):
//  * registry — owned vs externally-registered counters, gauges sampled at
//    scrape time, histogram summaries;
//  * goldens — prometheus_text() / json() walk sorted maps, so small
//    registries expose byte-stable text the tests pin verbatim;
//  * hygiene — merge with an empty operand preserves min/max, percentile
//    clamps q, snapshot_and_reset drains without losing the snapshot;
//  * endpoint — GET /discover/metrics serves the text exposition and the
//    ?format=json variant; /discover/trace serves the span ring; neither is
//    traced, so scraping does not pollute the ring it reports;
//  * monitoring — a dead MONITORING service bumps monitoring_failures and
//    reports resume after heal (satellite of the observability PR).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "app/synthetic.h"
#include "core/server.h"
#include "core/service_host.h"
#include "http/http_message.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "workload/scenario.h"
#include "workload/sync_ops.h"

namespace discover {
namespace {

using security::Privilege;
using util::LatencyHistogram;
using util::MetricsRegistry;
using util::OnlineStats;
using workload::make_acl;

// ---------------------------------------------------------------------------
// Registry basics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, OwnedCounterIsStableAndBumpable) {
  MetricsRegistry reg;
  std::uint64_t& c = reg.counter("requests");
  c += 3;
  ++reg.counter("requests");
  EXPECT_EQ(reg.counter_value("requests"), 4u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
}

TEST(MetricsRegistry, ExternalCounterWinsOverOwned) {
  MetricsRegistry reg;
  reg.counter("hits") = 7;  // owned value, shadowed once external registers
  std::uint64_t field = 42;
  reg.register_counter("hits", &field);
  EXPECT_EQ(reg.counter_value("hits"), 42u);
  field = 43;
  EXPECT_EQ(reg.counter_value("hits"), 43u);
}

TEST(MetricsRegistry, GaugeIsSampledAtScrapeTime) {
  MetricsRegistry reg;
  std::int64_t depth = -2;
  reg.register_gauge("depth", [&depth] { return depth; });
  EXPECT_NE(reg.prometheus_text().find("depth -2"), std::string::npos);
  depth = 5;
  EXPECT_NE(reg.prometheus_text().find("depth 5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden expositions (std::map ordering makes these byte-stable)
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.counter("requests") = 3;
  std::int64_t depth = -2;
  reg.register_gauge("depth", [&depth] { return depth; });
  (void)reg.histogram("lat_ns");  // empty histogram: all-zero summary
  EXPECT_EQ(reg.prometheus_text(),
            "# TYPE requests counter\n"
            "requests 3\n"
            "# TYPE depth gauge\n"
            "depth -2\n"
            "# TYPE lat_ns summary\n"
            "lat_ns{quantile=\"0.5\"} 0\n"
            "lat_ns{quantile=\"0.95\"} 0\n"
            "lat_ns{quantile=\"0.99\"} 0\n"
            "lat_ns_sum 0\n"
            "lat_ns_count 0\n");
}

TEST(MetricsRegistry, JsonGoldenEmpty) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.json(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
}

TEST(MetricsRegistry, JsonCarriesHistogramSummary) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("lat_ns");
  h.record(1000);
  h.record(2000);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"lat_ns\": {\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"max_ns\":"), std::string::npos);
}

TEST(MetricsRegistry, MonitoringMapFlattensHistograms) {
  MetricsRegistry reg;
  reg.counter("requests") = 9;
  LatencyHistogram& h = reg.histogram("lat_ns");
  h.record(5000);
  const auto map = reg.monitoring_map();
  EXPECT_EQ(map.at("requests"), 9);
  EXPECT_EQ(map.at("lat_ns_count"), 1);
  EXPECT_GT(map.at("lat_ns_p95_ns"), 0);
}

TEST(MetricsRegistry, TakeIntervalDeltasAndDrains) {
  MetricsRegistry reg;
  reg.counter("requests") = 5;
  LatencyHistogram ext;
  ext.record(100);
  reg.register_histogram("ext_ns", &ext);
  reg.histogram("own_ns").record(200);

  auto first = reg.take_interval();
  EXPECT_EQ(first.counter_deltas.at("requests"), 5u);
  EXPECT_EQ(first.histograms.count("ext_ns"), 0u);  // cumulative, excluded
  EXPECT_EQ(first.histograms.at("own_ns").count(), 1u);
  EXPECT_EQ(reg.histogram("own_ns").count(), 0u);  // drained

  reg.counter("requests") += 3;
  auto second = reg.take_interval();
  EXPECT_EQ(second.counter_deltas.at("requests"), 3u);
  EXPECT_EQ(second.histograms.at("own_ns").count(), 0u);
}

// ---------------------------------------------------------------------------
// Stats hygiene
// ---------------------------------------------------------------------------

TEST(StatsHygiene, HistogramMergeEmptyOperandPreservesMinMax) {
  LatencyHistogram h;
  h.record(1000);
  h.record(9000);
  const LatencyHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 9000);

  LatencyHistogram into;
  into.merge(h);  // merge INTO empty keeps the operand's extremes too
  EXPECT_EQ(into.min(), 1000);
  EXPECT_EQ(into.max(), 9000);
}

TEST(StatsHygiene, OnlineStatsMergeEmptyOperandPreservesMinMax) {
  OnlineStats s;
  s.add(2.0);
  s.add(8.0);
  const OnlineStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(StatsHygiene, PercentileClampsQ) {
  LatencyHistogram h;
  h.record(1000);
  h.record(2000);
  h.record(4000);
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
  EXPECT_EQ(LatencyHistogram{}.percentile(0.5), 0);
}

TEST(StatsHygiene, HistogramSnapshotAndReset) {
  LatencyHistogram h;
  h.record(1000);
  h.record(3000);
  const LatencyHistogram snap = h.snapshot_and_reset();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_EQ(snap.min(), 1000);
  EXPECT_EQ(snap.max(), 3000);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  h.record(500);  // reset instance keeps working
  EXPECT_EQ(h.min(), 500);
}

TEST(StatsHygiene, OnlineStatsSnapshotAndReset) {
  OnlineStats s;
  s.add(1.0);
  s.add(2.0);
  const OnlineStats snap = s.snapshot_and_reset();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.total(), 3.0);
  EXPECT_EQ(s.count(), 0u);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
}

// ---------------------------------------------------------------------------
// /metrics and /trace endpoints
// ---------------------------------------------------------------------------

// Bare node that fires one HTTP request and keeps the parsed response.
class RawClient : public net::MessageHandler {
 public:
  void on_message(const net::Message& msg) override {
    auto parsed = http::parse_response(msg.payload);
    if (!parsed.ok()) return;
    last_status = parsed.value().status;
    body = std::string(parsed.value().body.begin(),
                       parsed.value().body.end());
    if (const auto ct = parsed.value().headers.get("Content-Type")) {
      content_type = *ct;
    }
  }
  int last_status = 0;
  std::string body;
  std::string content_type;
};

class MetricsEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = &scenario_.add_server("s", 1);
    app::AppConfig cfg;
    cfg.name = "obs";
    cfg.acl = make_acl({{"alice", Privilege::steer}});
    cfg.step_time = util::milliseconds(1);
    cfg.update_every = 5;
    cfg.interact_every = 0;
    app_ = &scenario_.add_app<app::SyntheticApp>(*server_, cfg,
                                                 app::SyntheticSpec{});
    ASSERT_TRUE(scenario_.run_until([&] { return app_->registered(); }));
  }

  std::string get(const std::string& path, RawClient& raw) {
    const net::NodeId raw_node =
        scenario_.net().add_node("raw" + std::to_string(raw_seq_++), &raw);
    http::HttpRequest req;
    req.method = http::Method::get;
    req.path = path;
    raw.last_status = 0;
    scenario_.net().send(raw_node, server_->node(), net::Channel::http,
                         http::serialize(req));
    EXPECT_TRUE(
        scenario_.net().run_until([&] { return raw.last_status != 0; }));
    return raw.body;
  }

  workload::Scenario scenario_;
  core::DiscoverServer* server_ = nullptr;
  app::SyntheticApp* app_ = nullptr;
  int raw_seq_ = 0;
};

TEST_F(MetricsEndpointTest, ServesPrometheusTextAndJson) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);
  ASSERT_TRUE(
      workload::sync_select(scenario_.net(), alice, app_->app_id()).value().ok);

  RawClient text;
  const std::string prom = get(core::kPathMetrics, text);
  EXPECT_EQ(text.last_status, 200);
  EXPECT_EQ(text.content_type, "text/plain");
  // ServerStats fields registered by reference surface under their names.
  EXPECT_NE(prom.find("# TYPE logins_ok counter\nlogins_ok 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE selects_ok counter\nselects_ok 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE apps gauge\napps 1\n"), std::string::npos);
  // The container's own service histogram rides along as a summary.
  EXPECT_NE(prom.find("# TYPE http_service_ns summary\n"), std::string::npos);

  RawClient json;
  const std::string body =
      get(std::string(core::kPathMetrics) + "?format=json", json);
  EXPECT_EQ(json.last_status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(body.find("\"logins_ok\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
}

TEST_F(MetricsEndpointTest, TraceEndpointServesRingWithoutSelfPollution) {
  auto& alice = scenario_.add_client("alice", *server_);
  ASSERT_TRUE(workload::sync_login(scenario_.net(), alice).value().ok);

  RawClient first;
  (void)get(core::kPathTrace, first);
  EXPECT_EQ(first.last_status, 200);
  // The login above was traced (default sample_every traces the first root).
  EXPECT_NE(first.body.find("http:/discover/master"), std::string::npos);
  EXPECT_EQ(first.body.find("http:/discover/trace"), std::string::npos);

  // Scraping is untraced: a second scrape sees no span for the first.
  RawClient second;
  (void)get(core::kPathTrace, second);
  EXPECT_EQ(second.body.find("http:/discover/trace"), std::string::npos);
  EXPECT_EQ(second.body.find("http:/discover/metrics"), std::string::npos);

  RawClient json;
  (void)get(std::string(core::kPathTrace) + "?format=json", json);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"spans\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Monitoring push: failures counted, reports resume after heal
// ---------------------------------------------------------------------------

TEST(MonitoringFailure, DeadServiceCountsFailuresAndRecovers) {
  workload::ScenarioConfig cfg;
  cfg.server_template.report_to_monitoring = true;
  cfg.server_template.monitoring_period = util::milliseconds(50);
  cfg.server_template.orb_call_timeout = util::milliseconds(200);
  workload::Scenario scenario(cfg);

  core::ServiceHost host(scenario.net());
  const net::NodeId mon_node =
      scenario.net().add_node("monitoring", &host, net::DomainId{0});
  host.attach(mon_node);
  host.set_registry(scenario.registry().trader_ref());
  auto monitoring =
      std::make_shared<core::MonitoringService>(scenario.net().clock());
  host.publish(core::kMonitoringServiceType, monitoring,
               {{"name", "monitor-1"}});

  auto& s1 = scenario.add_server("alpha", 1);
  ASSERT_TRUE(scenario.run_until(
      [&] { return s1.stats().monitoring_reports >= 1; }, util::seconds(10)));
  EXPECT_EQ(s1.stats().monitoring_failures, 0u);

  // Cut the service off: pushes time out, the failure counter climbs, and
  // the server forgets the ref to re-discover (§3 runtime availability).
  scenario.net().partition(s1.node(), mon_node);
  ASSERT_TRUE(scenario.run_until(
      [&] { return s1.stats().monitoring_failures >= 2; }, util::seconds(30)));

  const std::uint64_t reports = s1.stats().monitoring_reports;
  scenario.net().heal(s1.node(), mon_node);
  ASSERT_TRUE(scenario.run_until(
      [&] { return s1.stats().monitoring_reports > reports; },
      util::seconds(30)));
}

}  // namespace
}  // namespace discover
